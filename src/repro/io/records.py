"""Run records: CSV event logs and JSON run metadata.

The paper's Nature Agent "handles all file I/O to record the global
variables across generations"; these writers are that records-keeper.
:func:`write_event_csv` dumps a generation-event log,
:func:`write_run_metadata` the run's configuration and summary, and
:func:`config_to_dict` / :func:`config_from_dict` round-trip a
:class:`~repro.config.SimulationConfig` through plain JSON types.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping

from repro.config import SimulationConfig
from repro.errors import CheckpointError
from repro.game.noise import NoiseModel
from repro.game.payoff import PayoffMatrix
from repro.population.observers import GenerationRecord

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "write_event_csv",
    "read_event_csv",
    "write_run_metadata",
    "read_run_metadata",
]


def config_to_dict(config: SimulationConfig) -> dict:
    """Flatten a config into JSON-safe primitives."""
    return {
        "memory": config.memory,
        "n_ssets": config.n_ssets,
        "generations": config.generations,
        "agents_per_sset": config.agents_per_sset,
        "rounds": config.rounds,
        "pc_rate": config.pc_rate,
        "mutation_rate": config.mutation_rate,
        "mutation_distribution": config.mutation_distribution,
        "beta": config.beta,
        "payoff": list(config.payoff.as_fRSTP()),
        "noise_rate": config.noise.rate,
        "strategy_kind": config.strategy_kind,
        "pc_rule": config.pc_rule,
        "include_self_play": config.include_self_play,
        "use_fitness_cache": config.use_fitness_cache,
        "fitness_mode": config.fitness_mode,
        "seed": config.seed,
        "engine": config.engine,
        "engine_jit": config.engine_jit,
    }


def config_from_dict(data: Mapping) -> SimulationConfig:
    """Inverse of :func:`config_to_dict`."""
    try:
        r, s, t, p = data["payoff"]
        return SimulationConfig(
            memory=int(data["memory"]),
            n_ssets=int(data["n_ssets"]),
            generations=int(data["generations"]),
            agents_per_sset=(
                None if data.get("agents_per_sset") is None else int(data["agents_per_sset"])
            ),
            rounds=int(data["rounds"]),
            pc_rate=float(data["pc_rate"]),
            mutation_rate=float(data["mutation_rate"]),
            mutation_distribution=data.get("mutation_distribution", "uniform"),
            beta=float(data["beta"]),
            payoff=PayoffMatrix(reward=r, sucker=s, temptation=t, punishment=p),
            noise=NoiseModel(float(data.get("noise_rate", 0.0))),
            strategy_kind=data["strategy_kind"],
            pc_rule=data["pc_rule"],
            include_self_play=bool(data["include_self_play"]),
            use_fitness_cache=bool(data["use_fitness_cache"]),
            fitness_mode=data.get("fitness_mode", "auto"),
            seed=int(data["seed"]),
            engine=data.get("engine", "auto"),
            engine_jit=data.get("engine_jit", "auto"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed config record: {exc}") from exc


_EVENT_FIELDS = [
    "generation",
    "pc_teacher",
    "pc_learner",
    "pi_teacher",
    "pi_learner",
    "adopted",
    "mutation_sset",
    "n_unique",
]


def write_event_csv(path: str | Path, records: Iterable[GenerationRecord]) -> int:
    """Write generation records to CSV; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_EVENT_FIELDS)
        writer.writeheader()
        for rec in records:
            row = {
                "generation": rec.generation,
                "pc_teacher": rec.pc.teacher if rec.pc else "",
                "pc_learner": rec.pc.learner if rec.pc else "",
                "pi_teacher": rec.pc.pi_teacher if rec.pc else "",
                "pi_learner": rec.pc.pi_learner if rec.pc else "",
                "adopted": int(rec.pc.adopted) if rec.pc else "",
                "mutation_sset": rec.mutation.sset if rec.mutation else "",
                "n_unique": rec.n_unique,
            }
            writer.writerow(row)
            count += 1
    return count


def read_event_csv(path: str | Path) -> list[dict]:
    """Read an event CSV back into dicts (strings preserved as written)."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"event log not found: {path}")
    with path.open(newline="") as fh:
        return list(csv.DictReader(fh))


def write_run_metadata(path: str | Path, config: SimulationConfig, summary: Mapping) -> None:
    """Write run metadata (config + free-form summary) as JSON."""
    payload = {"config": config_to_dict(config), "summary": dict(summary)}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def read_run_metadata(path: str | Path) -> tuple[SimulationConfig, dict]:
    """Read metadata JSON back into ``(config, summary)``."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"metadata file not found: {path}")
    try:
        payload = json.loads(path.read_text())
        return config_from_dict(payload["config"]), dict(payload["summary"])
    except (json.JSONDecodeError, KeyError) as exc:
        raise CheckpointError(f"malformed metadata file {path}: {exc}") from exc
