"""Checkpoint and resume for long evolution runs.

The paper's science runs span 10^7 generations; being able to stop and
resume *bit-exactly* matters.  A checkpoint captures the configuration, the
population matrix, the generation counter, and — the subtle part — the
position of every random stream the run has consumed, so a resumed driver
continues the exact trajectory the uninterrupted run would have produced
(the tests assert this).

Format: a single ``.npz`` file holding the strategy matrix plus a JSON blob
for everything else (stream states are PCG64 state dicts, which are plain
integers).  No pickle — checkpoints are safe to share.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import SimulationConfig
from repro.errors import CheckpointError
from repro.io.records import config_from_dict, config_to_dict
from repro.population.dynamics import EvolutionDriver
from repro.population.population import Population

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_VERSION",
    "ParallelCheckpoint",
    "save_parallel_checkpoint",
    "load_parallel_checkpoint",
    "latest_parallel_checkpoint",
    "PARALLEL_CHECKPOINT_VERSION",
]

CHECKPOINT_VERSION = 1

PARALLEL_CHECKPOINT_VERSION = 1

_PARALLEL_CKPT_RE = re.compile(r"^ckpt_(\d{8})\.npz$")


def _stream_states(driver: EvolutionDriver) -> dict:
    """Serialise the positions of all streams the driver has touched."""
    out = {}
    for key, gen in driver.streams._cache.items():
        state = gen.bit_generator.state
        out[json.dumps([repr(k) for k in key])] = {
            "bit_generator": state["bit_generator"],
            "state": state["state"]["state"],
            "inc": state["state"]["inc"],
            "has_uint32": state["has_uint32"],
            "uinteger": state["uinteger"],
        }
    return out


def _restore_stream_states(driver: EvolutionDriver, states: dict) -> None:
    reverse = {json.dumps([repr(k) for k in key]): key for key in _expected_keys(driver, states)}
    for encoded, st in states.items():
        key = reverse.get(encoded)
        if key is None:
            raise CheckpointError(f"checkpoint stream key {encoded} cannot be re-derived")
        gen = driver.streams.stream(*key)
        gen.bit_generator.state = {
            "bit_generator": st["bit_generator"],
            "state": {"state": int(st["state"]), "inc": int(st["inc"])},
            "has_uint32": int(st["has_uint32"]),
            "uinteger": int(st["uinteger"]),
        }


def _expected_keys(driver: EvolutionDriver, states: dict) -> list[tuple]:
    """Reconstruct stream keys from their encoded forms.

    Keys used by the serial driver are tuples of strings/ints; the encoding
    stores ``repr`` of each component, which we parse back with a literal
    eval restricted to those types.
    """
    import ast

    keys = []
    for encoded in states:
        parts = json.loads(encoded)
        key = tuple(ast.literal_eval(p) for p in parts)
        keys.append(key)
    return keys


def save_checkpoint(driver: EvolutionDriver, path: str | Path) -> None:
    """Write the driver's full resumable state to ``path`` (.npz)."""
    path = Path(path)
    meta = {
        "version": CHECKPOINT_VERSION,
        "config": config_to_dict(driver.config),
        "generation": driver.generation,
        "streams": _stream_states(driver),
        "nature": {
            "n_pc_events": driver.nature.n_pc_events,
            "n_adoptions": driver.nature.n_adoptions,
            "n_mutations": driver.nature.n_mutations,
        },
    }
    np.savez_compressed(
        path,
        matrix=driver.population.matrix(),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )


def load_checkpoint(path: str | Path) -> EvolutionDriver:
    """Rebuild a driver from a checkpoint; it resumes the exact trajectory."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        with np.load(path) as data:
            matrix = data["matrix"]
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {meta.get('version')} unsupported"
            f" (expected {CHECKPOINT_VERSION})"
        )
    config = config_from_dict(meta["config"])
    population = Population(config, matrix)
    driver = EvolutionDriver(config, population=population)
    driver.generation = int(meta["generation"])
    _restore_stream_states(driver, meta["streams"])
    nature = meta.get("nature", {})
    driver.nature.n_pc_events = int(nature.get("n_pc_events", 0))
    driver.nature.n_adoptions = int(nature.get("n_adoptions", 0))
    driver.nature.n_mutations = int(nature.get("n_mutations", 0))
    return driver


# -- parallel (fault-tolerant) checkpoints --------------------------------------------


@dataclass(frozen=True)
class ParallelCheckpoint:
    """Resumable state of a :class:`~repro.parallel.runner.ParallelSimulation`.

    Because every rank's population replica is identical and all worker
    randomness is keyed by ``(generation, sset)``, the only cursor state a
    parallel run carries is the Nature Agent's: its sequential
    ``("nature",)`` PCG64 stream position and its event counters.  A resumed
    run therefore continues the exact trajectory from ``generation + 1`` at
    *any* rank count.
    """

    config: SimulationConfig
    generation: int
    matrix: np.ndarray
    nature_rng_state: dict
    n_pc_events: int
    n_adoptions: int
    n_mutations: int
    failed_ranks: tuple[int, ...] = ()


def _rng_state_to_json(state: dict) -> dict:
    return {
        "bit_generator": state["bit_generator"],
        "state": str(state["state"]["state"]),
        "inc": str(state["state"]["inc"]),
        "has_uint32": int(state["has_uint32"]),
        "uinteger": int(state["uinteger"]),
    }


def _rng_state_from_json(data: dict) -> dict:
    return {
        "bit_generator": data["bit_generator"],
        "state": {"state": int(data["state"]), "inc": int(data["inc"])},
        "has_uint32": int(data["has_uint32"]),
        "uinteger": int(data["uinteger"]),
    }


def save_parallel_checkpoint(state: ParallelCheckpoint, path: str | Path) -> Path:
    """Write a parallel run's resumable state to ``path`` (.npz); returns it.

    When ``path`` is a directory, the file is named ``ckpt_<generation>.npz``
    inside it, which is the layout :func:`latest_parallel_checkpoint` scans.
    """
    path = Path(path)
    if path.is_dir() or path.suffix != ".npz":
        path.mkdir(parents=True, exist_ok=True)
        path = path / f"ckpt_{state.generation:08d}.npz"
    meta = {
        "version": PARALLEL_CHECKPOINT_VERSION,
        "kind": "parallel",
        "config": config_to_dict(state.config),
        "generation": int(state.generation),
        "nature_rng": _rng_state_to_json(state.nature_rng_state),
        "nature": {
            "n_pc_events": int(state.n_pc_events),
            "n_adoptions": int(state.n_adoptions),
            "n_mutations": int(state.n_mutations),
        },
        "failed_ranks": [int(r) for r in state.failed_ranks],
    }
    np.savez_compressed(
        path,
        matrix=state.matrix,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    return path


def load_parallel_checkpoint(path: str | Path) -> ParallelCheckpoint:
    """Read back a :func:`save_parallel_checkpoint` file."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        with np.load(path) as data:
            matrix = data["matrix"]
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if meta.get("kind") != "parallel":
        raise CheckpointError(f"{path} is not a parallel checkpoint (kind={meta.get('kind')!r})")
    if meta.get("version") != PARALLEL_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"parallel checkpoint version {meta.get('version')} unsupported"
            f" (expected {PARALLEL_CHECKPOINT_VERSION})"
        )
    nature = meta.get("nature", {})
    return ParallelCheckpoint(
        config=config_from_dict(meta["config"]),
        generation=int(meta["generation"]),
        matrix=matrix,
        nature_rng_state=_rng_state_from_json(meta["nature_rng"]),
        n_pc_events=int(nature.get("n_pc_events", 0)),
        n_adoptions=int(nature.get("n_adoptions", 0)),
        n_mutations=int(nature.get("n_mutations", 0)),
        failed_ranks=tuple(int(r) for r in meta.get("failed_ranks", ())),
    )


def latest_parallel_checkpoint(directory: str | Path) -> Path | None:
    """The highest-generation ``ckpt_*.npz`` in ``directory`` (None if none)."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best: tuple[int, Path] | None = None
    for entry in directory.iterdir():
        match = _PARALLEL_CKPT_RE.match(entry.name)
        if match is not None:
            gen = int(match.group(1))
            if best is None or gen > best[0]:
                best = (gen, entry)
    return None if best is None else best[1]
