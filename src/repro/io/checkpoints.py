"""Checkpoint and resume for long evolution runs.

The paper's science runs span 10^7 generations; being able to stop and
resume *bit-exactly* matters.  A checkpoint captures the configuration, the
population matrix, the generation counter, and — the subtle part — the
position of every random stream the run has consumed, so a resumed driver
continues the exact trajectory the uninterrupted run would have produced
(the tests assert this).

Format: a single ``.npz`` file holding the strategy matrix plus a JSON blob
for everything else (stream states are PCG64 state dicts, which are plain
integers).  No pickle — checkpoints are safe to share.

Crash consistency
-----------------
Checkpoints are written for the express purpose of surviving a crash, so
the write itself must survive one too.  Both writers stage the file under a
temporary name in the destination directory, flush and ``fsync`` it, then
``os.replace`` it into place — on POSIX filesystems the final path either
holds the complete old file or the complete new one, never a torn hybrid.
Each file also embeds a content digest (over the matrix bytes and the
metadata) that :func:`load_checkpoint`/:func:`load_parallel_checkpoint`
verify, so silent corruption raises :class:`~repro.errors.CheckpointError`
naming the file instead of resuming from garbage.  When a directory may
still hold damaged files from pre-atomic writers (or torn by hardware),
:func:`latest_valid_parallel_checkpoint` scans back to the newest file that
actually loads.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import SimulationConfig
from repro.errors import CheckpointError
from repro.io.records import config_from_dict, config_to_dict
from repro.population.dynamics import EvolutionDriver
from repro.population.population import Population

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_VERSION",
    "ParallelCheckpoint",
    "save_parallel_checkpoint",
    "load_parallel_checkpoint",
    "latest_parallel_checkpoint",
    "latest_valid_parallel_checkpoint",
    "write_torn_parallel_checkpoint",
    "PARALLEL_CHECKPOINT_VERSION",
]

#: Version 2 added the embedded content digest; version-1 files (no digest)
#: still load for backward compatibility.
CHECKPOINT_VERSION = 2

PARALLEL_CHECKPOINT_VERSION = 2

_COMPATIBLE_VERSIONS = (1, 2)

_PARALLEL_CKPT_RE = re.compile(r"^ckpt_(\d{8})\.npz$")


def _content_digest(matrix: np.ndarray, meta: dict) -> str:
    """Digest over the matrix bytes and the metadata (minus the digest itself).

    The metadata is hashed in canonical form (sorted keys) so the digest is
    independent of dict ordering; the matrix contributes dtype, shape and
    raw bytes so a single flipped element is caught.
    """
    meta = {k: v for k, v in meta.items() if k != "digest"}
    h = hashlib.blake2b(digest_size=16)
    h.update(str(matrix.dtype).encode())
    h.update(repr(tuple(matrix.shape)).encode())
    h.update(np.ascontiguousarray(matrix).tobytes())
    h.update(json.dumps(meta, sort_keys=True).encode())
    return h.hexdigest()


def _savez_payload(matrix: np.ndarray, meta: dict) -> dict[str, np.ndarray]:
    return {
        "matrix": matrix,
        "meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    }


def _atomic_savez(path: Path, matrix: np.ndarray, meta: dict) -> None:
    """Write the checkpoint arrays to ``path`` via temp file + atomic rename.

    The temp file lives in the destination directory (``os.replace`` must
    not cross filesystems) and is fsynced before the rename, so after a
    crash the final path holds either the previous complete checkpoint or
    the new one — never partial bytes.
    """
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **_savez_payload(matrix, meta))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    # Best-effort directory sync so the rename itself is durable.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass


def _read_npz(path: Path) -> tuple[np.ndarray, dict]:
    if not path.exists():
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        with np.load(path) as data:
            matrix = data["matrix"]
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
    except (OSError, ValueError, KeyError, json.JSONDecodeError, zipfile.BadZipFile) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    return matrix, meta


def _verify_digest(path: Path, matrix: np.ndarray, meta: dict) -> None:
    """Check the embedded content digest (required from version 2 on)."""
    if int(meta.get("version", 0)) < 2:
        return  # version-1 files predate the digest
    stored = meta.get("digest")
    if stored is None:
        raise CheckpointError(f"checkpoint {path} (version 2) is missing its content digest")
    actual = _content_digest(matrix, meta)
    if stored != actual:
        raise CheckpointError(
            f"checkpoint {path} failed its content check"
            f" (stored digest {stored}, computed {actual}) — the file is corrupt"
        )


def _check_version(path: Path, meta: dict, expected: int) -> None:
    if meta.get("version") not in _COMPATIBLE_VERSIONS:
        raise CheckpointError(
            f"checkpoint {path} version {meta.get('version')} unsupported"
            f" (expected one of {_COMPATIBLE_VERSIONS}, current {expected})"
        )


def _stream_states(driver: EvolutionDriver) -> dict:
    """Serialise the positions of all streams the driver has touched."""
    out = {}
    for key, gen in driver.streams._cache.items():
        state = gen.bit_generator.state
        out[json.dumps([repr(k) for k in key])] = {
            "bit_generator": state["bit_generator"],
            "state": state["state"]["state"],
            "inc": state["state"]["inc"],
            "has_uint32": state["has_uint32"],
            "uinteger": state["uinteger"],
        }
    return out


def _restore_stream_states(driver: EvolutionDriver, states: dict) -> None:
    reverse = {json.dumps([repr(k) for k in key]): key for key in _expected_keys(driver, states)}
    for encoded, st in states.items():
        key = reverse.get(encoded)
        if key is None:
            raise CheckpointError(f"checkpoint stream key {encoded} cannot be re-derived")
        gen = driver.streams.stream(*key)
        gen.bit_generator.state = {
            "bit_generator": st["bit_generator"],
            "state": {"state": int(st["state"]), "inc": int(st["inc"])},
            "has_uint32": int(st["has_uint32"]),
            "uinteger": int(st["uinteger"]),
        }


def _expected_keys(driver: EvolutionDriver, states: dict) -> list[tuple]:
    """Reconstruct stream keys from their encoded forms.

    Keys used by the serial driver are tuples of strings/ints; the encoding
    stores ``repr`` of each component, which we parse back with a literal
    eval restricted to those types.
    """
    import ast

    keys = []
    for encoded in states:
        parts = json.loads(encoded)
        key = tuple(ast.literal_eval(p) for p in parts)
        keys.append(key)
    return keys


def save_checkpoint(driver: EvolutionDriver, path: str | Path) -> None:
    """Write the driver's full resumable state to ``path`` (.npz).

    The write is crash-consistent (temp file + fsync + atomic rename) and
    the file embeds a content digest verified by :func:`load_checkpoint`.
    """
    path = Path(path)
    matrix = driver.population.matrix()
    meta = {
        "version": CHECKPOINT_VERSION,
        "config": config_to_dict(driver.config),
        "generation": driver.generation,
        "streams": _stream_states(driver),
        "nature": {
            "n_pc_events": driver.nature.n_pc_events,
            "n_adoptions": driver.nature.n_adoptions,
            "n_mutations": driver.nature.n_mutations,
        },
    }
    meta["digest"] = _content_digest(matrix, meta)
    _atomic_savez(path, matrix, meta)


def load_checkpoint(path: str | Path) -> EvolutionDriver:
    """Rebuild a driver from a checkpoint; it resumes the exact trajectory."""
    path = Path(path)
    matrix, meta = _read_npz(path)
    _check_version(path, meta, CHECKPOINT_VERSION)
    _verify_digest(path, matrix, meta)
    config = config_from_dict(meta["config"])
    population = Population(config, matrix)
    driver = EvolutionDriver(config, population=population)
    driver.generation = int(meta["generation"])
    _restore_stream_states(driver, meta["streams"])
    nature = meta.get("nature", {})
    driver.nature.n_pc_events = int(nature.get("n_pc_events", 0))
    driver.nature.n_adoptions = int(nature.get("n_adoptions", 0))
    driver.nature.n_mutations = int(nature.get("n_mutations", 0))
    return driver


# -- parallel (fault-tolerant) checkpoints --------------------------------------------


@dataclass(frozen=True)
class ParallelCheckpoint:
    """Resumable state of a :class:`~repro.parallel.runner.ParallelSimulation`.

    Because every rank's population replica is identical and all worker
    randomness is keyed by ``(generation, sset)``, the only cursor state a
    parallel run carries is the Nature Agent's: its sequential
    ``("nature",)`` PCG64 stream position and its event counters.  A resumed
    run therefore continues the exact trajectory from ``generation + 1`` at
    *any* rank count.
    """

    config: SimulationConfig
    generation: int
    matrix: np.ndarray
    nature_rng_state: dict
    n_pc_events: int
    n_adoptions: int
    n_mutations: int
    failed_ranks: tuple[int, ...] = ()


def _rng_state_to_json(state: dict) -> dict:
    return {
        "bit_generator": state["bit_generator"],
        "state": str(state["state"]["state"]),
        "inc": str(state["state"]["inc"]),
        "has_uint32": int(state["has_uint32"]),
        "uinteger": int(state["uinteger"]),
    }


def _rng_state_from_json(data: dict) -> dict:
    return {
        "bit_generator": data["bit_generator"],
        "state": {"state": int(data["state"]), "inc": int(data["inc"])},
        "has_uint32": int(data["has_uint32"]),
        "uinteger": int(data["uinteger"]),
    }


def _parallel_ckpt_path(state: ParallelCheckpoint, path: str | Path) -> Path:
    path = Path(path)
    if path.is_dir() or path.suffix != ".npz":
        path.mkdir(parents=True, exist_ok=True)
        path = path / f"ckpt_{state.generation:08d}.npz"
    return path


def _parallel_ckpt_meta(state: ParallelCheckpoint) -> dict:
    meta = {
        "version": PARALLEL_CHECKPOINT_VERSION,
        "kind": "parallel",
        "config": config_to_dict(state.config),
        "generation": int(state.generation),
        "nature_rng": _rng_state_to_json(state.nature_rng_state),
        "nature": {
            "n_pc_events": int(state.n_pc_events),
            "n_adoptions": int(state.n_adoptions),
            "n_mutations": int(state.n_mutations),
        },
        "failed_ranks": [int(r) for r in state.failed_ranks],
    }
    meta["digest"] = _content_digest(state.matrix, meta)
    return meta


def save_parallel_checkpoint(state: ParallelCheckpoint, path: str | Path) -> Path:
    """Write a parallel run's resumable state to ``path`` (.npz); returns it.

    When ``path`` is a directory, the file is named ``ckpt_<generation>.npz``
    inside it, which is the layout :func:`latest_parallel_checkpoint` scans.
    The write is crash-consistent (temp file + fsync + atomic rename) and
    the file embeds a content digest verified on load.
    """
    path = _parallel_ckpt_path(state, path)
    _atomic_savez(path, state.matrix, _parallel_ckpt_meta(state))
    return path


def write_torn_parallel_checkpoint(
    state: ParallelCheckpoint, path: str | Path, fraction: float = 0.5
) -> Path:
    """Deliberately leave a *torn* checkpoint file at the final path.

    Chaos tooling: this reproduces what a pre-atomic writer left behind when
    killed mid-write — the leading ``fraction`` of a valid ``.npz`` stream,
    directly at ``ckpt_<generation>.npz``.  Used by the
    ``kill_during_checkpoint`` fault and by recovery tests;
    :func:`latest_valid_parallel_checkpoint` must skip such files.
    """
    path = _parallel_ckpt_path(state, path)
    buf = io.BytesIO()
    np.savez_compressed(buf, **_savez_payload(state.matrix, _parallel_ckpt_meta(state)))
    blob = buf.getvalue()
    cut = max(1, min(len(blob) - 1, int(len(blob) * fraction)))
    with open(path, "wb") as fh:
        fh.write(blob[:cut])
        fh.flush()
        os.fsync(fh.fileno())
    return path


def load_parallel_checkpoint(path: str | Path) -> ParallelCheckpoint:
    """Read back a :func:`save_parallel_checkpoint` file."""
    path = Path(path)
    matrix, meta = _read_npz(path)
    if meta.get("kind") != "parallel":
        raise CheckpointError(f"{path} is not a parallel checkpoint (kind={meta.get('kind')!r})")
    _check_version(path, meta, PARALLEL_CHECKPOINT_VERSION)
    _verify_digest(path, matrix, meta)
    nature = meta.get("nature", {})
    return ParallelCheckpoint(
        config=config_from_dict(meta["config"]),
        generation=int(meta["generation"]),
        matrix=matrix,
        nature_rng_state=_rng_state_from_json(meta["nature_rng"]),
        n_pc_events=int(nature.get("n_pc_events", 0)),
        n_adoptions=int(nature.get("n_adoptions", 0)),
        n_mutations=int(nature.get("n_mutations", 0)),
        failed_ranks=tuple(int(r) for r in meta.get("failed_ranks", ())),
    )


def _ranked_parallel_checkpoints(directory: str | Path) -> list[tuple[int, Path]]:
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _PARALLEL_CKPT_RE.match(entry.name)
        if match is not None:
            found.append((int(match.group(1)), entry))
    found.sort(reverse=True)
    return found


def latest_parallel_checkpoint(directory: str | Path) -> Path | None:
    """The highest-generation ``ckpt_*.npz`` in ``directory`` (None if none).

    Purely name-based — the file is not validated.  Recovery paths should
    prefer :func:`latest_valid_parallel_checkpoint`, which skips torn or
    corrupt files.
    """
    ranked = _ranked_parallel_checkpoints(directory)
    return ranked[0][1] if ranked else None


def latest_valid_parallel_checkpoint(directory: str | Path) -> Path | None:
    """The newest ``ckpt_*.npz`` in ``directory`` that actually loads.

    Scans highest generation first and returns the first file that passes
    :func:`load_parallel_checkpoint` (format, version, and content digest),
    stepping past files torn by a mid-write kill or corrupted on disk.
    Returns ``None`` when no checkpoint in the directory is usable.
    """
    for _, entry in _ranked_parallel_checkpoints(directory):
        try:
            load_parallel_checkpoint(entry)
        except CheckpointError:
            continue
        return entry
    return None
