"""The run store: evolve under a key, fetch or resume by key later.

A :class:`RunStore` is the durable side of the run service — a key-value
store over the filesystem where the key is ``tenant/run_id`` and the value
is everything a run is: its declarative spec, its crash-consistent
checkpoints, its streamed event log, and (once finished) its result with
the final strategy matrix.  The layout under ``root``::

    <root>/<tenant>/<run_id>/
        spec.json          # RunSpec.to_dict(), written once at admission
        status.json        # queue-owned lifecycle record (atomic replace)
        outcome.json       # worker-owned completion record (atomic replace)
        events.jsonl       # streamed progress/restart events (append-only)
        result.npz         # final matrix + summary, digest-verified
        checkpoints/       # ckpt_*.npz (repro.io.checkpoints format)

Everything is either atomically replaced (JSON records, the result — the
same temp-file + fsync + ``os.replace`` discipline as
:mod:`repro.io.checkpoints`) or append-only (the event log), so a store
shared between a scheduler process and SIGKILL-able worker processes never
holds a torn record at a final path.  Results embed a content digest
verified on load; a run retrieved by key years later either equals the
live result bit for bit or raises :class:`~repro.errors.RunStoreError`.

Keys are validated (a conservative ``[A-Za-z0-9._-]`` charset) so a tenant
name can never traverse out of the root.
"""

from __future__ import annotations

import json
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import RunStoreError
from repro.io.checkpoints import (
    _atomic_savez,
    _content_digest,
    _read_npz,
    latest_valid_parallel_checkpoint,
)

__all__ = ["RunKey", "StoredResult", "RunStore", "RESULT_VERSION"]

RESULT_VERSION = 1

#: Conservative key charset: no separators, no dots-only names, no traversal.
_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def _check_key_part(part: str, what: str) -> str:
    if not isinstance(part, str) or not _KEY_RE.match(part):
        raise RunStoreError(
            f"invalid {what} {part!r}: need 1-128 chars of [A-Za-z0-9._-],"
            " starting with an alphanumeric"
        )
    return part


@dataclass(frozen=True)
class RunKey:
    """The address of one run: ``tenant/run_id``."""

    tenant: str
    run_id: str

    def __post_init__(self) -> None:
        _check_key_part(self.tenant, "tenant")
        _check_key_part(self.run_id, "run_id")

    def __str__(self) -> str:
        return f"{self.tenant}/{self.run_id}"


@dataclass(frozen=True)
class StoredResult:
    """A result fetched back from the store by key.

    Attributes
    ----------
    matrix:
        The run's final (n_ssets, n_states) strategy matrix.
    generation:
        Generations completed.
    attempts:
        Supervisor launches the run took (1 = no restart).
    n_pc_events, n_adoptions, n_mutations:
        The Nature Agent's counters.
    meta:
        The full stored metadata record (digest, version, extras).
    """

    matrix: np.ndarray
    generation: int
    attempts: int
    n_pc_events: int
    n_adoptions: int
    n_mutations: int
    meta: dict


def _atomic_write_text(path: Path, text: str) -> None:
    """Same crash-consistency discipline as the checkpoint writer.

    The temp name carries pid *and* thread id: concurrent writers of the
    same record (two queues racing on the lease file, say) must never
    share a temp path, or one replaces the other's already-moved file.
    """
    tmp = path.with_name(
        f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
    )
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _append_line(path: Path, line: str, *, durable: bool = False) -> None:
    """Append one newline-terminated record; ``durable`` fsyncs it to disk.

    One ``write`` call per line keeps the append atomic enough for JSONL
    (readers tolerate a torn trailing line either way); ``durable`` is for
    records that must survive a power loss, not just a process death —
    terminal and restart events, journal transitions.

    A file whose last byte is not a newline holds a torn tail from a
    writer that died mid-append; gluing the next record onto it would
    corrupt that record too, so the torn prefix is first sealed onto its
    own line (readers skip unparseable lines).
    """
    with open(path, "ab") as fh:
        prefix = b""
        if fh.tell() > 0:
            with open(path, "rb") as check:
                check.seek(-1, os.SEEK_END)
                if check.read(1) != b"\n":
                    prefix = b"\n"
        fh.write(prefix + line.encode("utf-8") + b"\n")
        fh.flush()
        if durable:
            os.fsync(fh.fileno())


class RunStore:
    """Filesystem-backed store of runs, keyed ``tenant/run_id``.

    Safe for concurrent use by one scheduler and many worker processes:
    every record is atomically replaced or append-only, and readers verify
    digests rather than trusting paths.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- write primitives (overridable; the fault layer hooks these) ---------

    def _write_text(self, path: Path, text: str) -> None:
        """Atomically replace ``path`` with ``text`` (temp + fsync + rename)."""
        _atomic_write_text(path, text)

    def _append_line(self, path: Path, line: str, *, durable: bool = False) -> None:
        """Append one record line to ``path`` (fsynced when ``durable``)."""
        _append_line(path, line, durable=durable)

    # -- paths ---------------------------------------------------------------

    def key(self, tenant: str, run_id: str) -> RunKey:
        """Validate and build the :class:`RunKey` for ``tenant/run_id``."""
        return RunKey(tenant, run_id)

    def run_dir(self, key: RunKey) -> Path:
        """The run's directory (may not exist yet)."""
        return self.root / key.tenant / key.run_id

    def checkpoint_dir(self, key: RunKey) -> Path:
        """Where the run's ``ckpt_*.npz`` files live."""
        return self.run_dir(key) / "checkpoints"

    def events_path(self, key: RunKey) -> Path:
        """The run's append-only JSONL event log."""
        return self.run_dir(key) / "events.jsonl"

    def exists(self, key: RunKey) -> bool:
        """Whether the run has been created (its spec is on disk)."""
        return (self.run_dir(key) / "spec.json").exists()

    # -- admission -----------------------------------------------------------

    def create_run(self, key: RunKey, spec) -> Path:
        """Admit a run: persist its spec under the key (exactly once).

        Re-creating an existing key raises :class:`~repro.errors.RunStoreError`
        — a key names one run forever; resubmission *resumes* it instead
        (the checkpoints are right there).
        """
        run_dir = self.run_dir(key)
        if self.exists(key):
            raise RunStoreError(f"run {key} already exists; keys are write-once")
        run_dir.mkdir(parents=True, exist_ok=True)
        self.checkpoint_dir(key).mkdir(exist_ok=True)
        try:
            self._write_text(
                run_dir / "spec.json", json.dumps(spec.to_dict(), indent=2, sort_keys=True)
            )
        except OSError as exc:
            raise RunStoreError(f"cannot persist spec for run {key}: {exc}") from exc
        return run_dir

    def load_spec(self, key: RunKey):
        """Read back the run's spec (any kind — evolution or spatial)."""
        from repro.parallel.spec import spec_from_dict  # deferred: io must not need parallel

        path = self.run_dir(key) / "spec.json"
        if not path.exists():
            raise RunStoreError(f"no run {key} in this store (missing {path})")
        try:
            return spec_from_dict(json.loads(path.read_text(encoding="utf-8")))
        except (json.JSONDecodeError, OSError) as exc:
            raise RunStoreError(f"unreadable spec for run {key}: {exc}") from exc

    # -- lifecycle records ---------------------------------------------------

    def write_status(self, key: RunKey, status: dict) -> None:
        """Atomically replace the queue-owned ``status.json``."""
        try:
            self.run_dir(key).mkdir(parents=True, exist_ok=True)
            self._write_text(self.run_dir(key) / "status.json", json.dumps(status, indent=2))
        except OSError as exc:
            raise RunStoreError(f"cannot write status for run {key}: {exc}") from exc

    def read_status(self, key: RunKey) -> dict | None:
        """The last written status record, or ``None`` (absent or torn)."""
        return self._read_json_record(key, "status.json")

    def write_outcome(self, key: RunKey, outcome: dict) -> None:
        """Atomically replace the worker-owned ``outcome.json``."""
        try:
            self._write_text(self.run_dir(key) / "outcome.json", json.dumps(outcome, indent=2))
        except OSError as exc:
            raise RunStoreError(f"cannot write outcome for run {key}: {exc}") from exc

    def read_outcome(self, key: RunKey) -> dict | None:
        """The worker's completion record, or ``None`` (did not finish)."""
        return self._read_json_record(key, "outcome.json")

    def _read_json_record(self, key: RunKey, name: str) -> dict | None:
        """One JSON lifecycle record; ``None`` when absent or torn.

        A record that fails to *parse* is treated as absent (a torn write by
        a pre-atomic writer, recoverable by fsck); an ``OSError`` on a file
        that exists (EIO, a permissions regression) is a store fault and
        surfaces as :class:`~repro.errors.RunStoreError` naming the run.
        """
        path = self.run_dir(key) / name
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            return None
        except OSError as exc:
            raise RunStoreError(f"cannot read {name} for run {key}: {exc}") from exc

    def append_event(self, key: RunKey, event: dict, *, durable: bool = False) -> None:
        """Append one record to the run's event log (flushed immediately).

        ``durable=True`` additionally fsyncs the append — the discipline for
        terminal and restart events, which must survive a power loss, not
        just a process death.  IO failures (ENOSPC, EIO) surface as
        :class:`~repro.errors.RunStoreError` naming the run.
        """
        try:
            self.run_dir(key).mkdir(parents=True, exist_ok=True)
            self._append_line(self.events_path(key), json.dumps(event), durable=durable)
        except OSError as exc:
            raise RunStoreError(f"cannot append to event log for run {key}: {exc}") from exc

    def read_events(self, key: RunKey) -> list[dict]:
        """Every parseable event logged so far, oldest first."""
        from repro.obs.stream import read_events

        return read_events(self.events_path(key))

    # -- results -------------------------------------------------------------

    def save_result(self, key: RunKey, result, *, attempts: int = 1) -> Path:
        """Persist a finished run's result under the key (digest-embedded).

        ``result`` is a :class:`~repro.parallel.runner.ParallelRunResult`
        (or any object with the same ``matrix``/counter attributes);
        ``attempts`` comes from the supervisor.  The write is atomic.
        """
        path = self.run_dir(key) / "result.npz"
        matrix = np.asarray(result.matrix)
        meta = {
            "version": RESULT_VERSION,
            "kind": "result",
            "tenant": key.tenant,
            "run_id": key.run_id,
            "generation": int(result.generation),
            "attempts": int(attempts),
            "n_pc_events": int(result.n_pc_events),
            "n_adoptions": int(result.n_adoptions),
            "n_mutations": int(result.n_mutations),
        }
        meta["digest"] = _content_digest(matrix, meta)
        _atomic_savez(path, matrix, meta)
        return path

    def has_result(self, key: RunKey) -> bool:
        """Whether a result has been stored for the key."""
        return (self.run_dir(key) / "result.npz").exists()

    def load_result(self, key: RunKey) -> StoredResult:
        """Fetch a result by key, verifying its content digest."""
        path = self.run_dir(key) / "result.npz"
        try:
            matrix, meta = _read_npz(path)
        except Exception as exc:  # CheckpointError or worse
            raise RunStoreError(f"no readable result for run {key}: {exc}") from exc
        if meta.get("kind") != "result":
            raise RunStoreError(f"{path} is not a result record (kind={meta.get('kind')!r})")
        stored = meta.get("digest")
        if stored is None or stored != _content_digest(matrix, meta):
            raise RunStoreError(f"result for run {key} failed its content check")
        return StoredResult(
            matrix=matrix,
            generation=int(meta["generation"]),
            attempts=int(meta.get("attempts", 1)),
            n_pc_events=int(meta.get("n_pc_events", 0)),
            n_adoptions=int(meta.get("n_adoptions", 0)),
            n_mutations=int(meta.get("n_mutations", 0)),
            meta=meta,
        )

    # -- resumption & listing ------------------------------------------------

    def latest_checkpoint(self, key: RunKey) -> Path | None:
        """The newest *valid* checkpoint of the run (torn files skipped)."""
        return latest_valid_parallel_checkpoint(self.checkpoint_dir(key))

    def list_tenants(self) -> list[str]:
        """Tenants with at least one run, sorted."""
        return sorted(
            p.name for p in self.root.iterdir() if p.is_dir() and not p.name.startswith(".")
        )

    def list_runs(self, tenant: str) -> list[str]:
        """Run ids stored under ``tenant``, sorted."""
        tenant_dir = self.root / _check_key_part(tenant, "tenant")
        if not tenant_dir.is_dir():
            return []
        return sorted(
            p.name for p in tenant_dir.iterdir() if (p / "spec.json").exists()
        )

    def iter_keys(self) -> Iterator[RunKey]:
        """Every run key in the store, tenant-major order."""
        for tenant in self.list_tenants():
            for run_id in self.list_runs(tenant):
                yield RunKey(tenant, run_id)
