"""Seeded IO fault injection for the run store.

Chaos testing for *storage*, in the same spirit as the runtime's
:class:`~repro.mpi.faults.FaultPlan`: every failure decision is a pure
function of ``(seed, operation, index)``, so a test that tears the third
status write today tears exactly the third status write on every rerun —
failure schedules are part of the experiment definition, not luck.

:class:`FaultyRunStore` is a drop-in :class:`~repro.io.runstore.RunStore`
whose two write primitives — atomic-replace (:meth:`RunStore._write_text`)
and append (:meth:`RunStore._append_line`) — consult a
:class:`StoreFaultPlan` before touching the disk.  Because the injection
sits *under* the public methods, every failure exercises the store's real
error path: the ``OSError`` is raised where the filesystem would raise it
and surfaces to callers as the same :class:`~repro.errors.RunStoreError`
(naming the run) that a genuine disk fault would produce.

Three failure modes, chosen to cover the crash shapes ``repro-store fsck``
(:mod:`repro.service.fsck`) must classify and repair:

* ``enospc`` — the write fails up front (``ENOSPC``); nothing lands on
  disk.  The cheap fault: state is simply missing.
* ``torn_append`` — an append writes only a prefix of its record and then
  fails (``EIO``), leaving a torn trailing line in a JSONL file — exactly
  what a power loss mid-append leaves.  Readers must skip it
  (:func:`repro.obs.stream.read_events` does); fsck truncates it.
* ``kill_during_replace`` — an atomic replace dies *between* writing the
  fsynced temp file and the ``os.replace``: the final path keeps its old
  content and a ``.{name}.tmp-{pid}`` orphan is left beside it — the
  debris a SIGKILL at the worst instant leaves.  fsck sweeps the debris.
"""

from __future__ import annotations

import errno
import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.io.runstore import RunStore

__all__ = ["StoreFaultPlan", "FaultyRunStore"]


def _decide(seed: int, op: str, index: int, probability: float) -> bool:
    """The deterministic coin: hash ``(seed, op, index)`` to [0, 1)."""
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    digest = hashlib.blake2b(
        f"{seed}:{op}:{index}".encode(), digest_size=8
    ).digest()
    fraction = int.from_bytes(digest, "big") / 2**64
    return fraction < probability


@dataclass(frozen=True)
class StoreFaultPlan:
    """A deterministic schedule of store IO failures.

    Attributes
    ----------
    seed:
        Seeds every decision; two stores built from the same plan fail at
        exactly the same operations.
    enospc_p:
        Probability any write primitive fails up front with ``ENOSPC``.
    torn_append_p:
        Probability an append writes a torn prefix and fails with ``EIO``.
    kill_during_replace_p:
        Probability an atomic replace dies after its temp write, leaving
        ``.tmp-*`` debris and the old final-path content.
    """

    seed: int = 0
    enospc_p: float = 0.0
    torn_append_p: float = 0.0
    kill_during_replace_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("enospc_p", "torn_append_p", "kill_during_replace_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be a probability in [0, 1], got {p}")

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "enospc_p": self.enospc_p,
            "torn_append_p": self.torn_append_p,
            "kill_during_replace_p": self.kill_during_replace_p,
        }


@dataclass
class _FaultLog:
    """What the fault layer actually did (for test assertions)."""

    writes: int = 0
    appends: int = 0
    injected: list[tuple[str, str]] = field(default_factory=list)  # (mode, path name)


class FaultyRunStore(RunStore):
    """A :class:`~repro.io.runstore.RunStore` with scheduled IO failures.

    Only the write *primitives* are overridden, so every injected failure
    flows through the store's genuine wrapping and recovery paths.  The
    per-primitive operation counters advance whether or not a fault fires,
    keeping the schedule independent of which faults precede it.
    """

    def __init__(self, root: str | Path, plan: StoreFaultPlan) -> None:
        super().__init__(root)
        self.plan = plan
        self.log = _FaultLog()

    # -- primitives -----------------------------------------------------------

    def _write_text(self, path: Path, text: str) -> None:
        index = self.log.writes
        self.log.writes += 1
        if _decide(self.plan.seed, "write.enospc", index, self.plan.enospc_p):
            self.log.injected.append(("enospc", path.name))
            raise OSError(errno.ENOSPC, "no space left on device (injected)", str(path))
        if _decide(
            self.plan.seed, "write.kill", index, self.plan.kill_during_replace_p
        ):
            # Die "between" the fsynced temp write and os.replace: the temp
            # file stays as debris, the final path keeps its old content.
            tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            self.log.injected.append(("kill_during_replace", path.name))
            raise OSError(
                errno.EIO, "writer killed during atomic replace (injected)", str(path)
            )
        super()._write_text(path, text)

    def _append_line(self, path: Path, line: str, *, durable: bool = False) -> None:
        index = self.log.appends
        self.log.appends += 1
        if _decide(self.plan.seed, "append.enospc", index, self.plan.enospc_p):
            self.log.injected.append(("enospc", path.name))
            raise OSError(errno.ENOSPC, "no space left on device (injected)", str(path))
        if _decide(self.plan.seed, "append.torn", index, self.plan.torn_append_p):
            # A power loss mid-append: a prefix of the record, no newline.
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(line[: max(1, len(line) // 2)])
                fh.flush()
            self.log.injected.append(("torn_append", path.name))
            raise OSError(errno.EIO, "append torn mid-record (injected)", str(path))
        super()._append_line(path, line, durable=durable)
