"""Run records and checkpointing.

* :mod:`repro.io.records` — CSV event logs and JSON run metadata.
* :mod:`repro.io.checkpoints` — bit-exact save/resume of evolution runs.
"""

from repro.io.checkpoints import CHECKPOINT_VERSION, load_checkpoint, save_checkpoint
from repro.io.records import (
    config_from_dict,
    config_to_dict,
    read_event_csv,
    read_run_metadata,
    write_event_csv,
    write_run_metadata,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "load_checkpoint",
    "save_checkpoint",
    "config_from_dict",
    "config_to_dict",
    "read_event_csv",
    "read_run_metadata",
    "write_event_csv",
    "write_run_metadata",
]
