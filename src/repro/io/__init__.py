"""Run records, checkpointing and the keyed run store.

* :mod:`repro.io.records` — CSV event logs and JSON run metadata.
* :mod:`repro.io.checkpoints` — bit-exact save/resume of evolution runs.
* :mod:`repro.io.runstore` — tenant/run-keyed store of specs, checkpoints,
  event logs and digest-verified results (the run service's durable layer).
"""

from repro.io.checkpoints import CHECKPOINT_VERSION, load_checkpoint, save_checkpoint
from repro.io.records import (
    config_from_dict,
    config_to_dict,
    read_event_csv,
    read_run_metadata,
    write_event_csv,
    write_run_metadata,
)
from repro.io.runstore import RunKey, RunStore, StoredResult

__all__ = [
    "CHECKPOINT_VERSION",
    "load_checkpoint",
    "save_checkpoint",
    "RunKey",
    "RunStore",
    "StoredResult",
    "config_from_dict",
    "config_to_dict",
    "read_event_csv",
    "read_run_metadata",
    "write_event_csv",
    "write_run_metadata",
]
