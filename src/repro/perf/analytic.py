"""Closed-form performance model of the parallel algorithm.

Prices one generation of the paper's algorithm on a given machine and rank
count:

* **compute** — the busiest rank's share of the directed games, each costing
  :meth:`repro.perf.cost_model.CostModel.seconds_per_game`;
* **population-dynamics communication** — per-generation synchronisation on
  the collective tree, the PC-rate-weighted pair announcement + two torus
  fitness returns + adoption update, and the mutation-rate-weighted strategy
  broadcast;
* **overhead** — the fixed per-generation bookkeeping floor.

Everything is divided by the partition's mapping efficiency (non-power-of-
two penalty, §VI-D).  The model is validated two ways: against the
discrete-event simulator (:mod:`repro.perf.des`) at modest rank counts and
against real threaded virtual-MPI executions via measured-cost calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PerfModelError
from repro.machine.bluegene import MachineSpec
from repro.perf.cost_model import CostModel
from repro.perf.workload import WorkloadSpec

__all__ = ["GenerationBreakdown", "Prediction", "AnalyticModel"]


@dataclass(frozen=True)
class GenerationBreakdown:
    """Seconds spent per generation, by component (already penalty-scaled).

    Attributes
    ----------
    compute:
        Game play on the busiest rank.
    pc_comm:
        Expected pairwise-comparison traffic (announce, fitness returns,
        adoption update).
    mutation_comm:
        Expected mutation strategy broadcast.
    sync:
        Per-generation collective synchronisation.
    overhead:
        Fixed bookkeeping floor.
    """

    compute: float
    pc_comm: float
    mutation_comm: float
    sync: float
    overhead: float

    @property
    def comm(self) -> float:
        """All communication components."""
        return self.pc_comm + self.mutation_comm + self.sync

    @property
    def total(self) -> float:
        """Generation makespan."""
        return self.compute + self.comm + self.overhead


@dataclass(frozen=True)
class Prediction:
    """Model output for one (workload, rank count) point."""

    n_ranks: int
    generation: GenerationBreakdown
    total_seconds: float
    games_per_rank: int
    mapping_efficiency: float


class AnalyticModel:
    """Performance model of the paper's algorithm on a machine.

    Parameters
    ----------
    machine:
        Machine spec (networks, nodes, partitions).
    costs:
        Cost model (calibrated or paper-fitted constants).
    engine:
        ``"lookup"`` for the paper's linear state search (what its runtimes
        reflect), ``"incremental"`` for our O(1) state tracker — switching
        between the two is the state-identification ablation.
    """

    def __init__(self, machine: MachineSpec, costs: CostModel, engine: str = "lookup") -> None:
        if engine not in ("lookup", "incremental"):
            raise PerfModelError(f"engine must be 'lookup' or 'incremental', got {engine!r}")
        self.machine = machine
        self.costs = costs
        self.engine = engine

    # -- single point -----------------------------------------------------------

    def effective_games_per_rank(self, workload: WorkloadSpec, n_ranks: int) -> float:
        """Busiest rank's games per generation, including the replicated share."""
        if n_ranks < 2:
            raise PerfModelError("need at least 2 ranks (Nature Agent + 1 worker)")
        total_games = workload.total_games_per_generation
        games_per_rank = math.ceil(total_games / (n_ranks - 1))
        return games_per_rank + self.costs.replicated_work_fraction * total_games

    def compute_seconds(self, workload: WorkloadSpec, n_ranks: int) -> float:
        """Per-generation game-play time on the busiest rank.

        Subclasses override this to model different execution engines (see
        :mod:`repro.perf.heterogeneous` for the GPU-offload variant).
        """
        game_cost = self.costs.seconds_per_game(
            workload.memory, workload.rounds, engine=self.engine
        )
        return (
            self.effective_games_per_rank(workload, n_ranks)
            * game_cost
            / self.machine.node.compute_speed
        )

    def generation_breakdown(self, workload: WorkloadSpec, n_ranks: int) -> GenerationBreakdown:
        """Per-generation cost components at ``n_ranks`` ranks."""
        if n_ranks < 2:
            raise PerfModelError("need at least 2 ranks (Nature Agent + 1 worker)")
        machine = self.machine
        part = machine.partition(n_ranks)
        n_nodes = part.n_nodes
        tree = machine.tree
        torus = machine.torus(n_ranks)

        compute = self.compute_seconds(workload, n_ranks)

        strategy_msg = workload.strategy_nbytes + 16  # table + SSet id/header
        # PC event: pair announcement down the tree, two fitness returns over
        # the torus (average distance to the Nature rank), adoption update.
        fitness_return = 2 * torus.average_message_time(0, 8)
        pc_once = (
            tree.bcast_time(n_nodes, 16)
            + fitness_return
            + workload.adoption_probability * tree.bcast_time(n_nodes, strategy_msg)
        )
        pc_comm = workload.pc_rate * pc_once
        mutation_comm = workload.mutation_rate * tree.bcast_time(n_nodes, strategy_msg)
        sync = tree.allreduce_time(n_nodes, 8)
        overhead = self.costs.per_generation_overhead / machine.node.compute_speed

        penalty = part.mapping_efficiency
        return GenerationBreakdown(
            compute=compute / penalty,
            pc_comm=pc_comm / penalty,
            mutation_comm=mutation_comm / penalty,
            sync=sync / penalty,
            overhead=overhead / penalty,
        )

    def predict(self, workload: WorkloadSpec, n_ranks: int) -> Prediction:
        """Full-run prediction at ``n_ranks`` ranks."""
        gen = self.generation_breakdown(workload, n_ranks)
        part = self.machine.partition(n_ranks)
        workers = n_ranks - 1
        return Prediction(
            n_ranks=n_ranks,
            generation=gen,
            total_seconds=workload.generations * gen.total,
            games_per_rank=math.ceil(workload.total_games_per_generation / workers),
            mapping_efficiency=part.mapping_efficiency,
        )

    # -- sweeps --------------------------------------------------------------------

    def sweep(self, workload: WorkloadSpec, rank_counts: list[int]) -> list[Prediction]:
        """Predictions across a list of rank counts (one workload)."""
        return [self.predict(workload, p) for p in rank_counts]

    def __repr__(self) -> str:
        return (
            f"AnalyticModel(machine={self.machine.name}, costs={self.costs.label},"
            f" engine={self.engine})"
        )
