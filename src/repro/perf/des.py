"""A small discrete-event simulation engine.

Generic core used by :mod:`repro.perf.simulator` to replay the parallel
algorithm's per-generation timeline rank by rank: events are ``(time,
callback)`` pairs on a heap; callbacks may schedule further events.  Ties
break by insertion order, so runs are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import PerfModelError

__all__ = ["Simulator"]


class Simulator:
    """Deterministic event-driven simulator with a virtual clock."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds after the current virtual time."""
        if delay < 0:
            raise PerfModelError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual ``time`` (>= now)."""
        if time < self.now:
            raise PerfModelError(f"cannot schedule into the past (t={time} < now={self.now})")
        heapq.heappush(self._queue, (time, next(self._seq), callback))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in time order; returns the final virtual time.

        Stops when the queue drains, when the next event would pass
        ``until``, or after ``max_events`` events (guard against runaway
        models).
        """
        while self._queue:
            if max_events is not None and self.events_processed >= max_events:
                raise PerfModelError(f"exceeded max_events={max_events}")
            t, _seq, callback = self._queue[0]
            if until is not None and t > until:
                break
            heapq.heappop(self._queue)
            self.now = t
            self.events_processed += 1
            callback()
        return self.now

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._queue)
