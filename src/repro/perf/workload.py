"""Workload descriptions for the performance model.

A :class:`WorkloadSpec` is the performance model's view of one simulation:
how many SSets, how many games each plays per generation, at what memory
depth, for how many generations — plus the population-dynamics rates that
set the communication volume.  Class methods build the exact workloads of
the paper's studies (Tables VI and VII, Figures 3-7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import PerfModelError
from repro.game.states import MAX_MEMORY, StateSpace

__all__ = ["WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One simulation, as the performance model sees it.

    Parameters
    ----------
    n_ssets:
        Strategy Sets in the population.
    games_per_sset:
        Directed games each SSet's agents play per generation.  The paper's
        §V-C default (one agent per opponent SSet) makes this
        ``n_ssets - 1``; the large-scale weak-scaling runs hold it fixed.
    memory:
        Strategy memory depth (1..6).
    rounds:
        IPD rounds per game (200 in the paper).
    generations:
        Generations simulated.
    pc_rate, mutation_rate:
        Population-dynamics event rates (communication volume drivers).
    adoption_probability:
        Expected probability that a PC event actually changes a strategy
        (sets how often the post-PC update broadcast carries a table).
    """

    n_ssets: int
    games_per_sset: int
    memory: int
    rounds: int = 200
    generations: int = 1000
    pc_rate: float = 0.01
    mutation_rate: float = 0.05
    adoption_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.n_ssets < 1:
            raise PerfModelError(f"n_ssets must be >= 1, got {self.n_ssets}")
        if self.games_per_sset < 0:
            raise PerfModelError(f"games_per_sset must be >= 0, got {self.games_per_sset}")
        if not 1 <= self.memory <= MAX_MEMORY:
            raise PerfModelError(f"memory must be in [1, {MAX_MEMORY}], got {self.memory}")
        if self.rounds < 1 or self.generations < 1:
            raise PerfModelError("rounds and generations must be positive")
        for name in ("pc_rate", "mutation_rate", "adoption_probability"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise PerfModelError(f"{name} must lie in [0, 1], got {v}")

    # -- derived -------------------------------------------------------------

    @property
    def total_games_per_generation(self) -> int:
        """Directed games across the population per generation."""
        return self.n_ssets * self.games_per_sset

    @property
    def strategy_nbytes(self) -> int:
        """Wire size of one strategy table (one byte per state, as in C)."""
        return StateSpace(self.memory).n_states

    @property
    def total_agents(self) -> int:
        """Population size under the paper's agents-per-SSet = SSets rule."""
        return self.n_ssets * self.n_ssets

    def scaled_ssets(self, factor: int) -> "WorkloadSpec":
        """A copy with ``factor`` x the SSets and games/SSet ∝ SSets (strong-scaling family)."""
        n = self.n_ssets * factor
        return replace(self, n_ssets=n, games_per_sset=n - 1)

    # -- the paper's workloads -----------------------------------------------------

    @classmethod
    def paper_memory_study(cls, memory: int) -> "WorkloadSpec":
        """Table VI / Figures 3-4: 1,024 SSets, 1,000 generations, PC 0.01."""
        return cls(
            n_ssets=1024,
            games_per_sset=1023,
            memory=memory,
            rounds=200,
            generations=1000,
            pc_rate=0.01,
            mutation_rate=0.05,
        )

    @classmethod
    def paper_population_study(cls, n_ssets: int) -> "WorkloadSpec":
        """Table VII / Figure 5: SSet count swept 1,024..32,768, memory-one.

        Games grow with the square of the SSet count ("the agents belonging
        to each SSet must model the interaction with all strategies assigned
        to all other SSets").
        """
        return cls(
            n_ssets=n_ssets,
            games_per_sset=n_ssets - 1,
            memory=1,
            rounds=200,
            generations=1000,
            pc_rate=0.01,
            mutation_rate=0.05,
        )

    @classmethod
    def paper_weak_scaling(cls, n_ranks: int, ssets_per_rank: int = 4096) -> "WorkloadSpec":
        """Figure 6: 4,096 SSets per processor, constant work per rank.

        The paper's flat weak-scaling curve implies constant per-rank game
        work, so each SSet plays a fixed number of games per generation
        (one per agent, with a constant agent count per SSet) rather than
        one per opponent; see EXPERIMENTS.md for the discussion.
        """
        return cls(
            n_ssets=n_ranks * ssets_per_rank,
            games_per_sset=10,
            memory=6,
            rounds=200,
            generations=100,
            pc_rate=0.01,
            mutation_rate=0.05,
        )

    @classmethod
    def paper_strong_scaling_large(cls) -> "WorkloadSpec":
        """Figure 7: fixed large problem for 1,024..262,144 processors.

        The paper does not state Fig. 7's exact problem size; it attributes
        the 262,144-processor efficiency drop to "the low ratio of SSets to
        processors".  We use 262,144 SSets (exactly one SSet per rank at the
        full machine) with 10 games per SSet per generation, which puts the
        per-rank-work to per-generation-overhead ratio where the published
        curve sits: 99% efficiency through 16,384 ranks, 82% at 262,144.
        """
        return cls(
            n_ssets=262144,
            games_per_sset=10,
            memory=6,
            rounds=200,
            generations=100,
            pc_rate=0.01,
            mutation_rate=0.05,
        )
