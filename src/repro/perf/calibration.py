"""Calibrate the cost model from measured engine timings.

The honest way to parameterise the performance model on *this* machine:
time the actual IPD engines — the scalar incremental engine and the
paper-faithful linear-search engine — across memory depths, and fit the
:class:`~repro.perf.cost_model.CostModel` constants from those samples.
The resulting model carries the label ``"measured-python"`` and drives the
self-measured variants of the scaling benches (the paper-fitted presets in
:mod:`repro.perf.cost_model` drive the Blue-Gene-scale reproductions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import SimulationConfig
from repro.errors import CalibrationError
from repro.game.lookup_engine import build_states_table, play_ipd_lookup
from repro.game.states import StateSpace
from repro.game.strategy import Strategy
from repro.game.vector_engine import VectorEngine
from repro.perf.cost_model import CostModel

__all__ = ["CalibrationReport", "calibrate", "time_engine_round", "time_lookup_round"]


@dataclass(frozen=True)
class CalibrationReport:
    """Raw samples behind a calibrated cost model.

    Attributes
    ----------
    incremental_round:
        memory -> measured seconds per round per game, incremental engine.
    lookup_round:
        memory -> measured seconds per round per game, linear-search engine.
    model:
        The fitted cost model.
    """

    incremental_round: dict[int, float] = field(default_factory=dict)
    lookup_round: dict[int, float] = field(default_factory=dict)
    model: CostModel | None = None


def time_engine_round(memory: int, rounds: int = 200, batch: int = 64, seed: int = 0) -> float:
    """Seconds per round per game of the vectorised incremental engine."""
    space = StateSpace(memory)
    rng = np.random.default_rng(seed)
    mat = rng.integers(0, 2, size=(batch, space.n_states), dtype=np.uint8)
    engine = VectorEngine(space, rounds=rounds)
    ia = rng.integers(0, batch, size=batch).astype(np.intp)
    ib = rng.integers(0, batch, size=batch).astype(np.intp)
    engine.play(mat, ia, ib)  # warm-up
    start = time.perf_counter()
    engine.play(mat, ia, ib)
    elapsed = time.perf_counter() - start
    return elapsed / (batch * rounds)


def time_lookup_round(memory: int, rounds: int = 50, games: int = 4, seed: int = 0) -> float:
    """Seconds per round per game of the paper-faithful linear-search engine."""
    space = StateSpace(memory)
    rng = np.random.default_rng(seed)
    table = build_states_table(space)
    pairs = [
        (Strategy.random_pure(space, rng), Strategy.random_pure(space, rng))
        for _ in range(games)
    ]
    play_ipd_lookup(pairs[0][0], pairs[0][1], rounds=rounds, states_table=table)  # warm-up
    start = time.perf_counter()
    for a, b in pairs:
        play_ipd_lookup(a, b, rounds=rounds, states_table=table)
    elapsed = time.perf_counter() - start
    return elapsed / (games * rounds)


def _time_generation_overhead(seed: int = 0) -> float:
    """Per-generation bookkeeping cost of the driver with dynamics disabled."""
    from repro.population.dynamics import EvolutionDriver

    cfg = SimulationConfig(
        memory=1, n_ssets=8, generations=1, pc_rate=0.0, mutation_rate=0.0, seed=seed
    )
    driver = EvolutionDriver(cfg)
    driver.step()  # warm-up
    n = 200
    start = time.perf_counter()
    for _ in range(n):
        driver.step()
    return (time.perf_counter() - start) / n


def calibrate(
    memories: tuple[int, ...] = (1, 2, 3),
    lookup_memories: tuple[int, ...] = (1, 2, 3),
    rounds: int = 200,
    seed: int = 0,
) -> CalibrationReport:
    """Measure both engines and fit a :class:`CostModel`.

    Parameters
    ----------
    memories:
        Memory depths timed on the incremental engine.
    lookup_memories:
        Memory depths timed on the linear-search engine (its cost grows as
        ``4**memory`` per round, so keep these small).
    rounds:
        Rounds per timed game for the incremental engine.
    seed:
        Seed for the random strategies used as timing workloads.

    Raises
    ------
    CalibrationError
        If the timing samples are degenerate (non-positive).
    """
    inc: dict[int, float] = {}
    for mem in memories:
        inc[mem] = time_engine_round(mem, rounds=rounds, seed=seed)
    lookup: dict[int, float] = {}
    for mem in lookup_memories:
        lookup[mem] = time_lookup_round(mem, seed=seed)
    if any(v <= 0 for v in inc.values()) or any(v <= 0 for v in lookup.values()):
        raise CalibrationError(f"degenerate timing samples: inc={inc}, lookup={lookup}")

    round_base = float(np.mean(list(inc.values())))
    # Fit the per-candidate-state search cost from the lookup samples:
    # t_lookup(n) = round_base + 2 * 4**n * s  =>  s per sample, averaged.
    s_samples = [
        max(0.0, (t - round_base) / (2.0 * 4**mem)) for mem, t in lookup.items()
    ]
    search_cost = float(np.mean(s_samples)) if s_samples else 0.0
    if search_cost <= 0:
        raise CalibrationError(
            "lookup engine did not measure slower than the incremental engine;"
            f" samples inc={inc}, lookup={lookup}"
        )
    model = CostModel(
        round_base=round_base,
        state_search_per_state=search_cost,
        state_incremental=0.0,  # folded into round_base by the measurement
        per_game_overhead=0.0,
        per_generation_overhead=_time_generation_overhead(seed),
        label="measured-python",
    )
    return CalibrationReport(incremental_round=inc, lookup_round=lookup, model=model)
