"""Price real virtual-MPI traffic on a modelled machine.

The missing bridge between tier 1 (real execution, exact message counts)
and tier 3 (closed-form costs): take the
:class:`~repro.mpi.counters.CommCounters` of an actual run and charge every
operation to a :class:`~repro.machine.bluegene.MachineSpec`'s networks.
The result is "what this exact communication schedule would have cost on
Blue Gene" — used to sanity-check the analytic model's communication terms
against a run's true traffic instead of its expected rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PerfModelError
from repro.machine.bluegene import MachineSpec
from repro.mpi.counters import OpCount

__all__ = ["PricedTraffic", "price_counters"]


@dataclass(frozen=True)
class PricedTraffic:
    """Modelled communication cost of one run's real traffic.

    Attributes
    ----------
    collective_seconds:
        Cost of all tree collectives (bcast/reduce/gather/scatter legs at
        their logical payload sizes).
    point_to_point_seconds:
        Cost of the point-to-point messages *not* accounted to collectives,
        each charged the torus average distance.
    """

    collective_seconds: float
    point_to_point_seconds: float

    @property
    def total_seconds(self) -> float:
        """All communication."""
        return self.collective_seconds + self.point_to_point_seconds


def price_counters(
    counters: dict[str, OpCount], machine: MachineSpec, n_ranks: int
) -> PricedTraffic:
    """Charge a counter snapshot to ``machine``'s networks.

    Collectives are priced per call at their average payload; the residual
    point-to-point messages (total sends minus the messages the collectives
    account for) are priced as torus traffic at average distance.
    """
    if n_ranks < 1:
        raise PerfModelError(f"n_ranks must be >= 1, got {n_ranks}")
    part = machine.partition(n_ranks)
    n_nodes = part.n_nodes
    tree = machine.tree
    torus = machine.torus(n_ranks)

    collective = 0.0
    accounted_messages = 0
    for op, pricer, msgs_per_call in (
        ("bcast", tree.bcast_time, n_nodes - 1),
        ("reduce", tree.reduce_time, n_nodes - 1),
        ("gather", tree.reduce_time, n_nodes - 1),
        ("scatter", tree.bcast_time, n_nodes - 1),
    ):
        count = counters.get(op)
        if count is None or count.calls == 0:
            continue
        avg_payload = count.bytes / count.calls
        collective += count.calls * pricer(n_nodes, int(avg_payload))
        accounted_messages += count.calls * msgs_per_call

    sends = counters.get("send", OpCount())
    residual_msgs = max(0, sends.messages - accounted_messages)
    if sends.messages:
        avg_bytes = sends.bytes / sends.messages
        p2p = residual_msgs * torus.average_message_time(0, int(avg_bytes))
    else:
        p2p = 0.0
    return PricedTraffic(collective_seconds=collective, point_to_point_seconds=p2p)
