"""Strong- and weak-scaling series built on the analytic model.

The paper reports *parallel efficiency*: "the percent of ideal speedup
achieved for each processor count" (§VI-B-1).  With baseline rank count
``P0`` and runtime ``T0``:

* strong scaling — same problem at every ``P``; speedup ``T0 / T(P)``,
  efficiency ``speedup / (P / P0)``;
* weak scaling — work per rank constant; efficiency ``T0 / T(P)`` (flat
  runtime = 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import PerfModelError
from repro.perf.analytic import AnalyticModel, Prediction
from repro.perf.workload import WorkloadSpec

__all__ = ["ScalingPoint", "strong_scaling", "weak_scaling", "efficiency_series"]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling study."""

    n_ranks: int
    seconds: float
    speedup: float
    efficiency: float
    prediction: Prediction


def strong_scaling(
    model: AnalyticModel, workload: WorkloadSpec, rank_counts: Sequence[int]
) -> list[ScalingPoint]:
    """Fixed problem, growing rank counts; baseline is the smallest count."""
    ranks = sorted(set(int(p) for p in rank_counts))
    if not ranks:
        raise PerfModelError("rank_counts must be non-empty")
    base_p = ranks[0]
    base = model.predict(workload, base_p)
    points = []
    for p in ranks:
        pred = model.predict(workload, p)
        speedup = base.total_seconds / pred.total_seconds
        efficiency = speedup / (p / base_p)
        points.append(
            ScalingPoint(
                n_ranks=p,
                seconds=pred.total_seconds,
                speedup=speedup,
                efficiency=efficiency,
                prediction=pred,
            )
        )
    return points


def weak_scaling(
    model: AnalyticModel,
    workload_for_ranks: Callable[[int], WorkloadSpec],
    rank_counts: Sequence[int],
) -> list[ScalingPoint]:
    """Work per rank constant: the workload grows with the rank count.

    ``workload_for_ranks(P)`` must return the P-rank problem (e.g.
    :meth:`WorkloadSpec.paper_weak_scaling`).  Efficiency is
    ``T(base) / T(P)`` — 1.0 when the runtime stays flat.
    """
    ranks = sorted(set(int(p) for p in rank_counts))
    if not ranks:
        raise PerfModelError("rank_counts must be non-empty")
    base = model.predict(workload_for_ranks(ranks[0]), ranks[0])
    points = []
    for p in ranks:
        pred = model.predict(workload_for_ranks(p), p)
        efficiency = base.total_seconds / pred.total_seconds
        points.append(
            ScalingPoint(
                n_ranks=p,
                seconds=pred.total_seconds,
                speedup=efficiency * (p / ranks[0]),
                efficiency=efficiency,
                prediction=pred,
            )
        )
    return points


def efficiency_series(points: Sequence[ScalingPoint]) -> list[tuple[int, float]]:
    """Compact (ranks, efficiency) pairs for printing/plotting."""
    return [(pt.n_ranks, pt.efficiency) for pt in points]
