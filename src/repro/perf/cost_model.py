"""Cost model: what one unit of the algorithm's work costs in seconds.

The paper's per-generation work decomposes into (a) game play — dominated
by per-round state identification, whose cost depends on the memory depth
and on *how* the state is identified (the paper's linear search vs our
incremental update) — and (b) fixed per-rank bookkeeping.  A
:class:`CostModel` carries those constants; they come from one of

* :func:`repro.perf.calibration.calibrate` — measured on this machine's
  Python engines (honest self-measurement), or
* :func:`paper_bgl` / :func:`paper_bgp` — fitted to the paper's published
  Table VI/VII numbers, for regenerating the published curve shapes at
  Blue Gene scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PerfModelError
from repro.game.states import MAX_MEMORY

__all__ = ["CostModel", "paper_bgl", "paper_bgl_population", "paper_bgp"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs in seconds on the calibration platform.

    Parameters
    ----------
    round_base:
        Cost of one game round excluding state identification (table
        lookups, payoff accumulation, history update).
    state_search_per_state:
        Linear-search cost per candidate state per round; the paper-
        faithful ``find_state`` pays ``4**memory`` times this every round,
        for each of the two players.
    state_incremental:
        Cost of the O(1) incremental state update per round (both players).
    per_game_overhead:
        Fixed setup/teardown cost per game.
    per_generation_overhead:
        Fixed per-rank, per-generation cost (loop bookkeeping, the Nature
        Agent's record keeping and I/O).
    replicated_work_fraction:
        Fraction of the *total* per-generation game work that every rank
        repeats regardless of its share — the cost of iterating the full
        global SSet/strategy view that each node replicates (§V: "All
        nodes need to maintain an up to date view of the strategies
        assigned to all other SSets").  This is what caps the paper's
        measured strong scaling: fitting Table VI's 256- and
        2,048-processor columns gives a remarkably stable 6.6e-4 across
        memory depths two through six.
    per_memory_round_override:
        Optional measured per-round, per-game total cost keyed by memory
        depth.  When a memory depth is present here it *replaces* the
        formula — this is how the ``paper_bgl`` preset reproduces the
        lumpy measured profile of the paper's Table VI.
    """

    round_base: float
    state_search_per_state: float
    state_incremental: float
    per_game_overhead: float
    per_generation_overhead: float
    replicated_work_fraction: float = 0.0
    per_memory_round_override: dict[int, float] = field(default_factory=dict)
    label: str = "custom"

    def __post_init__(self) -> None:
        for name in (
            "round_base",
            "state_search_per_state",
            "state_incremental",
            "per_game_overhead",
            "per_generation_overhead",
            "replicated_work_fraction",
        ):
            value = getattr(self, name)
            if value < 0:
                raise PerfModelError(f"{name} must be non-negative, got {value}")
        for mem in self.per_memory_round_override:
            if not 1 <= mem <= MAX_MEMORY:
                raise PerfModelError(f"override memory {mem} out of range")

    def seconds_per_round(self, memory: int, engine: str = "lookup") -> float:
        """Cost of one round of one game at the given memory depth.

        ``engine="lookup"`` prices the paper's linear state search (two
        players, each scanning ``4**memory`` candidate states);
        ``engine="incremental"`` prices our O(1) update.  A per-memory
        override, when present, wins.
        """
        if not 1 <= memory <= MAX_MEMORY:
            raise PerfModelError(f"memory must be in [1, {MAX_MEMORY}], got {memory}")
        override = self.per_memory_round_override.get(memory)
        if override is not None:
            return override
        if engine == "lookup":
            return self.round_base + 2 * (4**memory) * self.state_search_per_state
        if engine == "incremental":
            return self.round_base + 2 * self.state_incremental
        raise PerfModelError(f"engine must be 'lookup' or 'incremental', got {engine!r}")

    def seconds_per_game(self, memory: int, rounds: int, engine: str = "lookup") -> float:
        """Cost of one full game."""
        if rounds <= 0:
            raise PerfModelError(f"rounds must be positive, got {rounds}")
        return self.per_game_overhead + rounds * self.seconds_per_round(memory, engine)


def paper_bgl() -> CostModel:
    """Constants fitted to the paper's Blue Gene/L Table VI (memory study).

    Fitting recipe (1,024 SSets, 1,000 generations, ~1,047,552 directed
    games per generation, 200 rounds per game): a least-squares fit of
    ``T(P) = a/P + b`` over the published 128/256/512/2,048 columns gives
    ``b/a ≈ 3.6e-4`` consistently across memory depths — every rank
    repeats ~0.036% of the total game work per generation.  (The
    1,024-processor column is excluded: it is anomalous in the original —
    systematically above the trend that brackets it, in the same column
    where Table VIII is visibly corrupted.)  The per-round costs then come
    from the 128-processor column with that replicated share added.
    """
    total_games = 1024 * 1023
    replicated = 3.6e-4
    eff_games_128 = total_games / 128 + replicated * total_games
    table6_col128 = {1: 26.5, 2: 2207, 3: 2401, 4: 3079, 5: 7903, 6: 8690}
    per_round = {m: t / (1000 * eff_games_128 * 200) for m, t in table6_col128.items()}
    return CostModel(
        round_base=per_round[1],
        state_search_per_state=per_round[1] / 8.0,
        state_incremental=per_round[1] / 2.0,
        per_game_overhead=0.0,
        per_generation_overhead=1.0e-4,
        replicated_work_fraction=replicated,
        per_memory_round_override=per_round,
        label="paper-bgl",
    )


def paper_bgl_population() -> CostModel:
    """Constants fitted to the paper's Table VII (population-size study).

    Table VII's memory-one runs are a different build/configuration from
    Table VI (its per-game cost works out ~2.4x cheaper), so it gets its
    own fit: the 256-processor, 1,024-SSet cell gives the per-round cost
    (5.61 s / 1,000 generations / 4,108 games/rank / 200 rounds) and the
    2,048-processor column gives the ~0.6 ms/generation overhead floor.
    With games growing as SSets², this fit then *predicts* the rest of the
    table — e.g. 32,768 SSets at 256 processors: modelled 5,770 s vs the
    published 5,785 s.
    """
    per_round_m1 = 5.61 / (1000 * 4108 * 200)
    return CostModel(
        round_base=per_round_m1,
        state_search_per_state=per_round_m1 / 8.0,
        state_incremental=per_round_m1 / 2.0,
        per_game_overhead=0.0,
        per_generation_overhead=6.0e-4,
        per_memory_round_override={1: per_round_m1},
        label="paper-bgl-population",
    )


def paper_bgp() -> CostModel:
    """Constants for the Blue Gene/P large-scale studies (Figures 6 and 7).

    BG/P cores are modestly faster than BG/L's; the per-generation overhead
    is fitted so the strong-scaling efficiency matches the published 99%
    at 16,384 and 82% at 262,144 processors (Fig. 7) for the memory-six
    workload — the overhead-to-compute ratio is what sets that curve.
    """
    base = paper_bgl()
    speedup = 850.0 / 700.0  # clock ratio, same core family
    per_round = {m: t / speedup for m, t in base.per_memory_round_override.items()}
    return CostModel(
        round_base=base.round_base / speedup,
        state_search_per_state=base.state_search_per_state / speedup,
        state_incremental=base.state_incremental / speedup,
        per_game_overhead=0.0,
        per_generation_overhead=1.0e-3,
        per_memory_round_override=per_round,
        label="paper-bgp",
    )
