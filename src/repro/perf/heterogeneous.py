"""Heterogeneous GPU-CPU model — the paper's second future-work item.

§VI-E: "We also plan to implement our method on heterogeneous GPU-CPU
clusters to exploit the fine-grained parallelism of agent simulations on
massively-parallel processors."  This module carries that plan out at the
modelling level: the game-play kernel (the embarrassingly parallel part)
offloads to an accelerator at a ``kernel_speedup``, paying a fixed
per-generation ``offload_overhead`` for launch + transfer of the strategy
batch, while the population dynamics (Nature Agent traffic, bookkeeping)
stays on the host.

The resulting Amdahl structure produces the interesting, testable shape:
at memory-one the kernel is so cheap that offload overhead makes the
hybrid *slower*; from memory-two up the accelerator wins, approaching
``kernel_speedup`` as the state-identification cost dominates.  The bench
``benchmarks/test_extension_heterogeneous.py`` locates the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PerfModelError
from repro.machine.bluegene import MachineSpec
from repro.perf.analytic import AnalyticModel
from repro.perf.cost_model import CostModel
from repro.perf.workload import WorkloadSpec

__all__ = ["AcceleratorSpec", "HeterogeneousModel", "hybrid_speedup_by_memory"]


@dataclass(frozen=True)
class AcceleratorSpec:
    """One accelerator attached to each node.

    Parameters
    ----------
    name:
        Label, e.g. ``"gpu-2012"``.
    kernel_speedup:
        Factor by which the game-play kernel runs faster than the host
        core (throughput ratio for the data-parallel round loop).
    offload_overhead:
        Fixed per-generation, per-rank cost of kernel launches and strategy
        batch transfers, seconds.
    """

    name: str
    kernel_speedup: float
    offload_overhead: float

    def __post_init__(self) -> None:
        if self.kernel_speedup <= 0:
            raise PerfModelError(f"kernel_speedup must be positive, got {self.kernel_speedup}")
        if self.offload_overhead < 0:
            raise PerfModelError(f"offload_overhead must be >= 0, got {self.offload_overhead}")


#: A circa-2012 accelerator: ~25x the PPC450 on the data-parallel kernel,
#: ~2 ms of launch/transfer overhead per generation.
GPU_2012 = AcceleratorSpec(name="gpu-2012", kernel_speedup=25.0, offload_overhead=2e-3)


class HeterogeneousModel(AnalyticModel):
    """Analytic model with the game kernel offloaded to an accelerator.

    Same interface as :class:`~repro.perf.analytic.AnalyticModel`; only the
    per-generation compute term changes::

        compute = games * game_cost / kernel_speedup + offload_overhead
    """

    def __init__(
        self,
        machine: MachineSpec,
        costs: CostModel,
        accelerator: AcceleratorSpec,
        engine: str = "lookup",
    ) -> None:
        super().__init__(machine, costs, engine=engine)
        self.accelerator = accelerator

    def compute_seconds(self, workload: WorkloadSpec, n_ranks: int) -> float:
        host_time = super().compute_seconds(workload, n_ranks)
        return host_time / self.accelerator.kernel_speedup + self.accelerator.offload_overhead

    def __repr__(self) -> str:
        return (
            f"HeterogeneousModel(machine={self.machine.name},"
            f" accelerator={self.accelerator.name},"
            f" speedup={self.accelerator.kernel_speedup:g}x)"
        )


def hybrid_speedup_by_memory(
    machine: MachineSpec,
    costs: CostModel,
    accelerator: AcceleratorSpec,
    n_ranks: int,
    memories: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
) -> list[tuple[int, float, float, float]]:
    """Per-memory comparison of host vs hybrid execution.

    Returns rows ``(memory, host_seconds, hybrid_seconds, speedup)`` for
    the Table VI workload at ``n_ranks`` ranks.
    """
    host = AnalyticModel(machine, costs)
    hybrid = HeterogeneousModel(machine, costs, accelerator)
    rows = []
    for memory in memories:
        workload = WorkloadSpec.paper_memory_study(memory)
        t_host = host.predict(workload, n_ranks).total_seconds
        t_hybrid = hybrid.predict(workload, n_ranks).total_seconds
        rows.append((memory, t_host, t_hybrid, t_host / t_hybrid))
    return rows
