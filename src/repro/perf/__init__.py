"""Performance model: cost model, calibration, analytic scaling, DES replay.

Three tiers, each validated against the one below:

1. **Real execution** — the virtual-MPI parallel runner
   (:mod:`repro.parallel`) actually runs at small rank counts.
2. **Timeline simulation** — :mod:`repro.perf.simulator` replays the
   algorithm's per-generation event structure at rank granularity.
3. **Analytic model** — :mod:`repro.perf.analytic` prices a generation in
   closed form, usable at the paper's full 262,144-processor scale.

Constants come from :mod:`repro.perf.calibration` (measured here) or the
paper-fitted presets in :mod:`repro.perf.cost_model`.
"""

from repro.perf.analytic import AnalyticModel, GenerationBreakdown, Prediction
from repro.perf.calibration import CalibrationReport, calibrate
from repro.perf.cost_model import CostModel, paper_bgl, paper_bgl_population, paper_bgp
from repro.perf.des import Simulator
from repro.perf.heterogeneous import (
    GPU_2012,
    AcceleratorSpec,
    HeterogeneousModel,
    hybrid_speedup_by_memory,
)
from repro.perf.pricing import PricedTraffic, price_counters
from repro.perf.scaling import ScalingPoint, efficiency_series, strong_scaling, weak_scaling
from repro.perf.simulator import GenerationTimelineSimulator, TimelineResult
from repro.perf.workload import WorkloadSpec

__all__ = [
    "AnalyticModel",
    "GenerationBreakdown",
    "Prediction",
    "CalibrationReport",
    "calibrate",
    "CostModel",
    "paper_bgl",
    "paper_bgl_population",
    "paper_bgp",
    "Simulator",
    "GPU_2012",
    "AcceleratorSpec",
    "HeterogeneousModel",
    "hybrid_speedup_by_memory",
    "PricedTraffic",
    "price_counters",
    "ScalingPoint",
    "efficiency_series",
    "strong_scaling",
    "weak_scaling",
    "GenerationTimelineSimulator",
    "TimelineResult",
    "WorkloadSpec",
]
