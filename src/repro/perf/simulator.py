"""Discrete-event replay of the parallel algorithm's generation timeline.

The analytic model (:mod:`repro.perf.analytic`) sums expected per-generation
costs; this simulator *plays them out*: per generation it schedules the
Nature Agent's decisions, the binomial/tree broadcast front reaching each
node at its own depth, every worker's compute burst (optionally jittered),
the torus fitness returns from the two selected SSet owners, and the
adoption/mutation update broadcasts.  The generation ends when the slowest
node is done — so stragglers, tree pipelining, and event randomness are
captured, which the closed form only approximates.

Used to validate the analytic model at mid-scale (the tests require the two
to agree within tolerance) and to study jitter sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PerfModelError
from repro.machine.bluegene import MachineSpec
from repro.perf.cost_model import CostModel
from repro.perf.des import Simulator
from repro.perf.workload import WorkloadSpec

__all__ = ["TimelineResult", "GenerationTimelineSimulator"]


@dataclass(frozen=True)
class TimelineResult:
    """Outcome of a timeline simulation.

    Attributes
    ----------
    makespan_seconds:
        Virtual time from start to the last node finishing the last
        generation.
    generations:
        Generations simulated.
    n_ranks:
        Ranks simulated.
    events:
        DES events processed.
    pc_events, mutations:
        Population-dynamics events that fired during the replay.
    """

    makespan_seconds: float
    generations: int
    n_ranks: int
    events: int
    pc_events: int
    mutations: int

    @property
    def seconds_per_generation(self) -> float:
        """Average generation makespan."""
        return self.makespan_seconds / self.generations


def _tree_depth_of_node(node: int) -> int:
    """Depth of ``node`` in the binomial broadcast tree rooted at 0."""
    return int(node).bit_count()


class GenerationTimelineSimulator:
    """Replays ``generations`` of the algorithm at rank granularity.

    Parameters
    ----------
    machine, costs, engine:
        As for :class:`repro.perf.analytic.AnalyticModel`.
    compute_jitter:
        Multiplicative lognormal-ish jitter on per-rank compute (sigma of a
        normal factor, clipped at ±3 sigma); 0 = deterministic.
    seed:
        Seed for event draws (PC/mutation firing and jitter).
    """

    def __init__(
        self,
        machine: MachineSpec,
        costs: CostModel,
        engine: str = "lookup",
        compute_jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if engine not in ("lookup", "incremental"):
            raise PerfModelError(f"engine must be 'lookup' or 'incremental', got {engine!r}")
        if compute_jitter < 0:
            raise PerfModelError(f"compute_jitter must be >= 0, got {compute_jitter}")
        self.machine = machine
        self.costs = costs
        self.engine = engine
        self.compute_jitter = compute_jitter
        self.seed = seed

    def run(self, workload: WorkloadSpec, n_ranks: int, generations: int | None = None) -> TimelineResult:
        """Simulate the timeline and return its makespan."""
        if n_ranks < 2:
            raise PerfModelError("need at least 2 ranks (Nature Agent + 1 worker)")
        gens = workload.generations if generations is None else int(generations)
        if gens < 1:
            raise PerfModelError(f"generations must be positive, got {gens}")

        machine = self.machine
        part = machine.partition(n_ranks)
        n_nodes = part.n_nodes
        tree = machine.tree
        torus = machine.torus(n_ranks)
        rng = np.random.default_rng(self.seed)

        workers = n_ranks - 1
        total_games = workload.total_games_per_generation
        games_per_rank = -(-total_games // workers)
        effective_games = games_per_rank + self.costs.replicated_work_fraction * total_games
        base_compute = (
            effective_games
            * self.costs.seconds_per_game(workload.memory, workload.rounds, engine=self.engine)
            / machine.node.compute_speed
        )
        overhead = self.costs.per_generation_overhead / machine.node.compute_speed
        strategy_msg = workload.strategy_nbytes + 16

        # Per-node broadcast arrival offsets: depth in the binomial tree
        # times the per-level cost for a given payload size.
        depths = np.array([_tree_depth_of_node(v) for v in range(n_nodes)], dtype=np.float64)

        def bcast_arrivals(nbytes: int) -> np.ndarray:
            if n_nodes == 1:
                return np.zeros(1)
            per_level = tree.level_latency + nbytes / tree.bandwidth
            return tree.software_overhead + depths * per_level

        sim = Simulator()
        state = {"generation": 0, "pc_events": 0, "mutations": 0, "end": 0.0}

        def start_generation() -> None:
            state["generation"] += 1
            t0 = sim.now
            # Phase 1: Nature announces the generation (sync down the tree).
            ready = t0 + bcast_arrivals(16)
            # Phase 2: every node computes its games (jittered per node).
            if self.compute_jitter:
                factors = 1.0 + np.clip(
                    rng.normal(0.0, self.compute_jitter, n_nodes),
                    -3 * self.compute_jitter,
                    3 * self.compute_jitter,
                )
            else:
                factors = np.ones(n_nodes)
            done = ready + base_compute * factors + overhead

            # Phase 3: population dynamics.
            pc_fires = rng.random() < workload.pc_rate
            end_time = float(done.max())
            if pc_fires:
                state["pc_events"] += 1
                owners = rng.integers(1, n_nodes, size=2) if n_nodes > 1 else np.zeros(2, int)
                arrive = max(
                    float(done[owners[0]]) + torus.average_message_time(int(owners[0]), 8),
                    float(done[owners[1]]) + torus.average_message_time(int(owners[1]), 8),
                )
                adopted = rng.random() < workload.adoption_probability
                if adopted:
                    update_done = arrive + float(bcast_arrivals(strategy_msg).max())
                else:
                    update_done = arrive + float(bcast_arrivals(16).max())
                end_time = max(end_time, update_done)
            if rng.random() < workload.mutation_rate:
                state["mutations"] += 1
                end_time = max(end_time, float(done.max()) + float(bcast_arrivals(strategy_msg).max()))
            # Final barrier up the tree before the next generation.
            end_time += tree.reduce_time(n_nodes, 8)
            # Mapping penalty stretches the whole generation.
            end_time = sim.now + (end_time - sim.now) / part.mapping_efficiency
            state["end"] = end_time

            if state["generation"] < gens:
                sim.schedule_at(end_time, start_generation)
            else:
                sim.schedule_at(end_time, lambda: None)

        sim.schedule(0.0, start_generation)
        sim.run()
        return TimelineResult(
            makespan_seconds=state["end"],
            generations=gens,
            n_ranks=n_ranks,
            events=sim.events_processed,
            pc_events=state["pc_events"],
            mutations=state["mutations"],
        )
