"""Vectorised tournament engine: many IPD games advanced in lock-step.

The paper's inner loop — every agent of every SSet playing a 200-round IPD
against its assigned opponent strategies — is embarrassingly parallel across
games.  On Blue Gene that parallelism maps to nodes; in NumPy it maps to
array lanes: this engine advances *all* games of a batch one round at a
time, so each of the 200 rounds costs a handful of fused array operations
instead of a Python-level loop per game.

Given a strategy *matrix* (one row per strategy) and two index vectors
``ia``, ``ib`` naming the players of each game, :meth:`VectorEngine.play`
returns both players' total fitness per game.  Results are identical to the
scalar reference engine (:mod:`repro.game.engine`); the tests assert
equality game-by-game for pure strategies and statistically for mixed ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import GameError
from repro.game.engine import DEFAULT_ROUNDS
from repro.game.noise import NO_NOISE, NoiseModel
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.states import StateSpace
from repro.obs.tracer import get_tracer

__all__ = ["VectorEngine", "BatchResult", "as_table_matrix", "engine_fingerprint"]


def engine_fingerprint(
    space: StateSpace, payoff: PayoffMatrix, rounds: int, noise: NoiseModel
) -> bytes:
    """Stable 16-byte identity of a set of game parameters.

    Two engines share a fingerprint exactly when a deterministic game
    between the same pure strategies yields the same payoffs under both:
    memory depth, payoff matrix, rounds and noise all participate.  Every
    engine class (:class:`VectorEngine`,
    :class:`~repro.game.batch_engine.BatchEngine`) derives its
    :meth:`~VectorEngine.fingerprint` from this one function, which is what
    lets a :class:`~repro.game.fitness_cache.FitnessCache` outlive an
    engine swap.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((space.memory, space.n_states, int(rounds))).encode())
    h.update(np.ascontiguousarray(payoff.table, dtype=np.float64).tobytes())
    h.update(repr(float(noise.rate)).encode())
    return h.digest()


@dataclass(frozen=True)
class BatchResult:
    """Per-game outcomes of one vectorised batch.

    Attributes
    ----------
    fitness_a, fitness_b:
        Total payoffs, one entry per game.
    rounds:
        Rounds played (same for every game in a batch).
    cooperations_a, cooperations_b:
        Per-game count of cooperative moves, when recording was requested;
        otherwise empty arrays.
    """

    fitness_a: np.ndarray
    fitness_b: np.ndarray
    rounds: int
    cooperations_a: np.ndarray
    cooperations_b: np.ndarray

    @property
    def n_games(self) -> int:
        """Number of games in the batch."""
        return int(self.fitness_a.size)

    def cooperation_rate(self) -> float:
        """Overall fraction of cooperative moves across the whole batch."""
        if self.cooperations_a.size == 0:
            raise GameError("cooperation was not recorded; pass record_cooperation=True")
        total_moves = 2 * self.n_games * self.rounds
        return float((self.cooperations_a.sum() + self.cooperations_b.sum()) / total_moves)


def as_table_matrix(space: StateSpace, tables: np.ndarray) -> np.ndarray:
    """Validate a strategy matrix: shape (n_strategies, n_states), 2-D.

    Integer 0/1 matrices describe pure strategies, float matrices in [0, 1]
    describe mixed ones (probability of defecting, as everywhere in this
    package).
    """
    arr = np.asarray(tables)
    if arr.ndim != 2 or arr.shape[1] != space.n_states:
        raise GameError(
            f"strategy matrix must be (n_strategies, {space.n_states}), got {arr.shape}"
        )
    if np.issubdtype(arr.dtype, np.integer) or arr.dtype == np.bool_:
        out = arr.astype(np.uint8, copy=False)
        if out.size and (out.max() > 1):
            raise GameError("pure strategy matrix entries must be 0 or 1")
        return out
    if np.issubdtype(arr.dtype, np.floating):
        if arr.size and (not np.all(np.isfinite(arr)) or arr.min() < 0 or arr.max() > 1):
            raise GameError("mixed strategy matrix entries must lie in [0, 1]")
        return arr.astype(np.float64, copy=False)
    raise GameError(f"unsupported strategy matrix dtype {arr.dtype}")


class VectorEngine:
    """Plays batches of IPD games over a shared strategy matrix.

    Parameters
    ----------
    space:
        Memory-*n* state space shared by all strategies.
    payoff:
        Payoff matrix (defaults to the paper's values).
    rounds:
        Rounds per game (the paper's 200).
    noise:
        Execution-error model applied to every move of every game.
    """

    def __init__(
        self,
        space: StateSpace,
        payoff: PayoffMatrix = PAPER_PAYOFFS,
        rounds: int = DEFAULT_ROUNDS,
        noise: NoiseModel = NO_NOISE,
    ) -> None:
        if rounds <= 0:
            raise GameError(f"rounds must be positive, got {rounds}")
        self.space = space
        self.payoff = payoff
        self.rounds = int(rounds)
        self.noise = noise
        # Flattened payoff lookup: index (my_move * 2 + opp_move).
        self._pay_mine = payoff.table.reshape(-1).copy()
        self._pay_theirs = payoff.table.T.reshape(-1).copy()
        # Running tally of work done, for perf-model calibration.
        self.games_played = 0
        self.rounds_played = 0

    def fingerprint(self) -> bytes:
        """Stable 16-byte identity of this engine's game parameters.

        Two engines share a fingerprint exactly when a deterministic game
        between the same pure strategies yields the same payoffs under
        both: memory depth, payoff matrix, rounds and noise all
        participate.  :class:`~repro.game.fitness_cache.FitnessCache` pins
        itself to this value so cached fitness can never be served under
        different game parameters.  Subclasses inherit this unchanged (it
        delegates to :func:`engine_fingerprint`): an engine's *identity* is
        its game parameters, never its kernel implementation.
        """
        return engine_fingerprint(self.space, self.payoff, self.rounds, self.noise)

    # -- main entry ---------------------------------------------------------

    def play(
        self,
        tables: np.ndarray,
        ia: np.ndarray,
        ib: np.ndarray,
        rng: np.random.Generator | None = None,
        record_cooperation: bool = False,
    ) -> BatchResult:
        """Play ``len(ia)`` games; game ``g`` is ``tables[ia[g]]`` vs ``tables[ib[g]]``.

        ``rng`` is required when the matrix is mixed (float) or noise is
        active.  The engine draws, per round, one uniform block for player
        A's moves, one for player B's, then (if noisy) one flip block per
        player — a fixed order, so a given generator state always reproduces
        the same batch.
        """
        mat = as_table_matrix(self.space, tables)
        ia = np.asarray(ia, dtype=np.intp)
        ib = np.asarray(ib, dtype=np.intp)
        if ia.shape != ib.shape or ia.ndim != 1:
            raise GameError(f"ia/ib must be equal-length 1-D arrays, got {ia.shape}, {ib.shape}")
        n_games = ia.size
        if n_games and (ia.min() < 0 or ib.min() < 0 or max(ia.max(), ib.max()) >= mat.shape[0]):
            raise GameError("pair indices out of range of the strategy matrix")
        pure = mat.dtype == np.uint8
        stochastic = (not pure) or (not self.noise.is_noiseless)
        if stochastic and rng is None:
            raise GameError("mixed strategies or noise require an rng")
        if n_games == 0:
            empty = np.empty(0, dtype=np.float64)
            zero = np.empty(0, dtype=np.int64)
            return BatchResult(empty, empty.copy(), self.rounds, zero, zero.copy())
        tracer = get_tracer()
        trace_t0 = tracer.now() if tracer.enabled else 0.0

        # Per-game tables gathered once: rows_a[g] is player A's full table.
        rows_a = mat[ia]
        rows_b = mat[ib]

        state_a = np.zeros(n_games, dtype=np.int64)
        state_b = np.zeros(n_games, dtype=np.int64)
        fit_a = np.zeros(n_games, dtype=np.float64)
        fit_b = np.zeros(n_games, dtype=np.float64)
        coop_a = np.zeros(n_games, dtype=np.int64) if record_cooperation else None
        coop_b = np.zeros(n_games, dtype=np.int64) if record_cooperation else None

        gidx = np.arange(n_games)
        noise_rate = self.noise.rate
        for _ in range(self.rounds):
            cell_a = rows_a[gidx, state_a]
            cell_b = rows_b[gidx, state_b]
            if pure:
                move_a = cell_a.astype(np.int64)
                move_b = cell_b.astype(np.int64)
            else:
                move_a = (rng.random(n_games) < cell_a).astype(np.int64)  # type: ignore[union-attr]
                move_b = (rng.random(n_games) < cell_b).astype(np.int64)  # type: ignore[union-attr]
            if noise_rate:
                move_a ^= rng.random(n_games) < noise_rate  # type: ignore[union-attr]
                move_b ^= rng.random(n_games) < noise_rate  # type: ignore[union-attr]

            joint = (move_a << 1) | move_b
            fit_a += self._pay_mine[joint]
            fit_b += self._pay_theirs[joint]
            if record_cooperation:
                coop_a += 1 - move_a  # type: ignore[operator]
                coop_b += 1 - move_b  # type: ignore[operator]

            # Advance both perspectives in place.
            self.space.push_array(state_a, move_a, move_b, out=state_a)
            self.space.push_array(state_b, move_b, move_a, out=state_b)

        self.games_played += n_games
        self.rounds_played += n_games * self.rounds
        if tracer.enabled:
            tracer.complete(
                "vector_engine.play", cat="game", ts=trace_t0,
                dur=tracer.now() - trace_t0,
                args={"games": int(n_games), "rounds": self.rounds},
            )
        empty = np.empty(0, dtype=np.int64)
        return BatchResult(
            fitness_a=fit_a,
            fitness_b=fit_b,
            rounds=self.rounds,
            cooperations_a=coop_a if record_cooperation else empty,
            cooperations_b=coop_b if record_cooperation else empty,
        )

    # -- conveniences ---------------------------------------------------------

    def round_robin_pairs(self, n_strategies: int, include_self: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Index vectors for every unordered pair ``i < j`` (optionally plus ``i == i``).

        The paper's schedule plays every SSet against "all other strategies"
        — each unordered matchup once, both fitnesses taken from the same
        game.  With ``include_self=True`` the diagonal is added too.
        """
        if n_strategies < 0:
            raise GameError(f"n_strategies must be non-negative, got {n_strategies}")
        iu, ju = np.triu_indices(n_strategies, k=0 if include_self else 1)
        return iu.astype(np.intp), ju.astype(np.intp)

    def tournament(
        self,
        tables: np.ndarray,
        include_self: bool = False,
        rng: np.random.Generator | None = None,
        record_cooperation: bool = False,
    ) -> np.ndarray:
        """Full round-robin: return the per-strategy total fitness vector.

        Every unordered pair plays once; both players' payoffs from that
        single game are credited.  This matches the paper's accounting where
        the matchup (i, j) contributes to both SSet i's and SSet j's
        relative fitness.  A self-matchup (``include_self=True``) has one
        strategy on both sides of the board, so it is credited the *average*
        of the two seats' payoffs — one agent's score, the same accounting
        as :meth:`repro.game.tournament.Tournament.play`'s halved diagonal
        (for deterministic play the two seats tie and the average is exact).
        """
        mat = as_table_matrix(self.space, tables)
        n = mat.shape[0]
        ia, ib = self.round_robin_pairs(n, include_self=include_self)
        tracer = get_tracer()
        trace_t0 = tracer.now() if tracer.enabled else 0.0
        res = self.play(mat, ia, ib, rng=rng, record_cooperation=record_cooperation)
        fitness = np.zeros(n, dtype=np.float64)
        np.add.at(fitness, ia, res.fitness_a)
        np.add.at(fitness, ib, res.fitness_b)
        if include_self:
            self_games = ia == ib
            if np.any(self_games):
                np.add.at(
                    fitness,
                    ia[self_games],
                    -(res.fitness_a[self_games] + res.fitness_b[self_games]) / 2.0,
                )
        if tracer.enabled:
            tracer.complete(
                "vector_engine.tournament", cat="game", ts=trace_t0,
                dur=tracer.now() - trace_t0,
                args={"strategies": int(n), "games": int(ia.size)},
            )
        return fitness

    def __repr__(self) -> str:
        return (
            f"VectorEngine(memory={self.space.memory}, rounds={self.rounds},"
            f" noise={self.noise.rate}, games_played={self.games_played})"
        )
