"""Memory-*n* game state spaces (paper §III-D, Tables II and V).

A *state* encodes the moves both players made in the previous *n* rounds.
Each round contributes two bits — ``(my_move << 1) | opp_move`` — so a
memory-*n* state is a ``2n``-bit integer and there are ``4**n`` states.

Bit layout
----------
Bits ``[2k, 2k+1]`` of the state index hold the round played ``k`` steps
ago; the most recent round therefore lives in the two least-significant
bits.  Advancing the game one round is the O(1) update::

    state' = ((state << 2) | (my << 1 | opp)) & mask

This is the incremental alternative to the paper's per-round linear search
through a global ``states`` array (which the paper identifies as its runtime
bottleneck; see :mod:`repro.game.lookup_engine` for the faithful version).

The paper's tables order memory-one states as CC, CD, DC, DD from the
*agent's* perspective — exactly the natural binary order of this encoding —
except Table V, which lists WSLS rows in the order 00, 01, 11, 10; helpers
below reproduce both orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import StateSpaceError
from repro.game.moves import move_label

__all__ = ["StateSpace", "MAX_MEMORY", "PAPER_TABLE5_STATE_ORDER"]

#: Largest memory depth the paper (and this package) models.
MAX_MEMORY = 6

#: Row order of the paper's Table V (WSLS example): states 00, 01, 11, 10.
PAPER_TABLE5_STATE_ORDER = (0b00, 0b01, 0b11, 0b10)


def _alternating_masks(bits: int) -> tuple[int, int]:
    """Return (0b1010... , 0b0101...) masks of width ``bits``."""
    lo = 0
    for k in range(0, bits, 2):
        lo |= 1 << k
    return lo << 1, lo


@dataclass(frozen=True)
class StateSpace:
    """The set of game states for a memory-*n* strategy model.

    Parameters
    ----------
    memory:
        Number of remembered rounds, 1..6 in the paper (0 is allowed and
        gives the single-state memoryless game of §III-A).

    Examples
    --------
    >>> sp = StateSpace(1)
    >>> sp.n_states
    4
    >>> sp.push(0, my=1, opp=0)   # I defected, opponent cooperated
    2
    >>> sp.opponent_view(2)       # opponent saw the mirror image
    1
    """

    memory: int

    def __post_init__(self) -> None:
        if not isinstance(self.memory, (int, np.integer)):
            raise StateSpaceError(f"memory must be an int, got {type(self.memory).__name__}")
        if not 0 <= self.memory <= MAX_MEMORY:
            raise StateSpaceError(
                f"memory must be in [0, {MAX_MEMORY}] (paper models 1..6), got {self.memory}"
            )
        object.__setattr__(self, "memory", int(self.memory))

    # -- sizes ----------------------------------------------------------

    @property
    def bits(self) -> int:
        """Number of bits in a state index (two per remembered round)."""
        return 2 * self.memory

    @property
    def n_states(self) -> int:
        """Number of distinct states, ``4**memory`` (Table IV's ``numStates``)."""
        return 1 << self.bits

    @property
    def mask(self) -> int:
        """Bit mask selecting the ``2 * memory`` state bits."""
        return self.n_states - 1

    @property
    def n_pure_strategies(self) -> int:
        """Number of pure strategies, ``2 ** n_states`` (paper Table IV)."""
        return 1 << self.n_states

    @property
    def initial_state(self) -> int:
        """Initial state: the fictitious pre-game history is all-cooperate.

        The paper zero-fills ``current_view`` before the first round, so
        every game starts in state 0.
        """
        return 0

    # -- scalar transitions ----------------------------------------------

    def check_state(self, state: int) -> int:
        """Validate and return ``state`` as a plain int."""
        s = int(state)
        if not 0 <= s < self.n_states:
            raise StateSpaceError(f"state {state} out of range for memory-{self.memory}")
        return s

    def push(self, state: int, my: int, opp: int) -> int:
        """Advance ``state`` by one round of play ``(my, opp)``.

        The previous rounds shift one step further into the past; the round
        ``memory`` steps ago falls off the end.
        """
        if my not in (0, 1) or opp not in (0, 1):
            raise StateSpaceError(f"moves must be 0 or 1, got my={my} opp={opp}")
        if self.memory == 0:
            return 0
        return ((self.check_state(state) << 2) | (my << 1) | opp) & self.mask

    def opponent_view(self, state: int) -> int:
        """Return the same history as seen from the opponent's perspective.

        Each round's ``(my, opp)`` bit pair is swapped.  The paper notes
        "each agent's current_view will be the opposite of its opponent".
        """
        s = self.check_state(state)
        hi, lo = _alternating_masks(self.bits)
        return ((s & hi) >> 1) | ((s & lo) << 1)

    def rounds(self, state: int) -> tuple[tuple[int, int], ...]:
        """Decode ``state`` into ``((my, opp), ...)`` most-recent-first."""
        s = self.check_state(state)
        out = []
        for _ in range(self.memory):
            out.append(((s >> 1) & 1, s & 1))
            s >>= 2
        return tuple(out)

    def encode(self, rounds: Sequence[tuple[int, int]]) -> int:
        """Encode a most-recent-first round list back into a state index."""
        if len(rounds) != self.memory:
            raise StateSpaceError(
                f"need exactly {self.memory} rounds for memory-{self.memory}, got {len(rounds)}"
            )
        state = 0
        for my, opp in reversed(rounds):
            state = self.push(state, my, opp)
        return state

    # -- vectorised transitions (used by the vector engine) ---------------

    def push_array(
        self, states: np.ndarray, my: np.ndarray, opp: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Vectorised :meth:`push` over parallel games.

        All inputs are integer arrays of equal shape; ``out`` may alias
        ``states`` for in-place update.
        """
        if out is None:
            out = np.empty_like(states)
        np.left_shift(states, 2, out=out)
        out |= (my.astype(out.dtype) << 1) | opp.astype(out.dtype)
        out &= self.mask
        return out

    def opponent_view_array(self, states: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`opponent_view`."""
        hi, lo = _alternating_masks(self.bits)
        return ((states & hi) >> 1) | ((states & lo) << 1)

    # -- presentation -----------------------------------------------------

    def state_label(self, state: int, *, letters: bool = True) -> str:
        """Human-readable label, oldest round first (like the paper's column heads).

        For memory-one, state 0b10 renders as ``"DC"`` (I defected, opponent
        cooperated).  With ``letters=False`` the raw bits are shown, e.g.
        ``"10"``.
        """
        s = self.check_state(state)
        if self.memory == 0:
            return "-"
        parts = []
        for my, opp in reversed(self.rounds(s)):  # oldest first
            if letters:
                parts.append(move_label(my) + move_label(opp))
            else:
                parts.append(f"{my}{opp}")
        return "|".join(parts) if self.memory > 1 else parts[0]

    def iter_states(self) -> Iterator[int]:
        """Iterate all state indices in natural binary order."""
        return iter(range(self.n_states))

    def table2(self) -> list[tuple[int, str, str]]:
        """The paper's Table II: (1-based state number, agent move, opponent move).

        Only meaningful for memory-one; the paper enumerates CC, CD, DC, DD.
        """
        if self.memory != 1:
            raise StateSpaceError("Table II is defined for memory-one")
        rows = []
        for s in self.iter_states():
            (my, opp), = self.rounds(s)
            rows.append((s + 1, move_label(my), move_label(opp)))
        return rows

    def __len__(self) -> int:
        return self.n_states

    def __repr__(self) -> str:
        return f"StateSpace(memory={self.memory}, n_states={self.n_states})"
