"""Execution errors in game play (paper §III-E).

An error flips a player's intended move with probability ``rate``, turning a
planned cooperation into defection or vice versa.  The paper motivates
memory and the WSLS strategy by exactly this perturbation: a single slip is
fatal to TFT (it locks two TFT players into mutual defection or alternating
retaliation) while WSLS recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["NoiseModel", "NO_NOISE"]


@dataclass(frozen=True)
class NoiseModel:
    """Independent per-move execution errors at a fixed rate.

    Parameters
    ----------
    rate:
        Probability in ``[0, 1]`` that an intended move is flipped.
    """

    rate: float = 0.0

    def __post_init__(self) -> None:
        r = float(self.rate)
        if not (0.0 <= r <= 1.0) or not np.isfinite(r):
            raise ConfigError(f"noise rate must lie in [0, 1], got {self.rate}")
        object.__setattr__(self, "rate", r)

    @property
    def is_noiseless(self) -> bool:
        """True when errors never occur (deterministic pure play)."""
        return self.rate == 0.0

    def apply(self, move: int, rng: np.random.Generator) -> int:
        """Possibly flip one intended move."""
        if self.rate and rng.random() < self.rate:
            return 1 - int(move)
        return int(move)

    def apply_array(self, moves: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Possibly flip each move in an array (vectorised), returning a new array."""
        if self.is_noiseless:
            return moves
        flips = rng.random(moves.shape) < self.rate
        return np.bitwise_xor(moves, flips.astype(moves.dtype))


#: Shared noiseless model.
NO_NOISE = NoiseModel(0.0)
