"""The move alphabet of the Prisoner's Dilemma.

The paper encodes a cooperative move as ``0`` and defection as ``1``
(§IV-C: "If in the previous round both the agent and opponent cooperated
(played a '0') ...").  We keep that encoding everywhere: strategy tables,
state indices, and histories all store C as 0 and D as 1, so a *pure*
strategy table is directly usable as an integer array and a *mixed*
strategy's per-state value is the probability of playing 1 (defecting).
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["Move", "COOPERATE", "DEFECT", "move_label", "parse_move"]


class Move(IntEnum):
    """A single play in one round: cooperate (0) or defect (1)."""

    C = 0
    D = 1

    @property
    def label(self) -> str:
        """Single-letter label used in the paper's tables ('C' or 'D')."""
        return self.name

    def opposite(self) -> "Move":
        """Return the other move (what an execution error produces)."""
        return Move(1 - self.value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


COOPERATE = Move.C
DEFECT = Move.D

_PARSE = {
    "c": Move.C,
    "C": Move.C,
    "0": Move.C,
    0: Move.C,
    "d": Move.D,
    "D": Move.D,
    "1": Move.D,
    1: Move.D,
}


def move_label(value: int) -> str:
    """Return 'C' or 'D' for an integer-encoded move."""
    return Move(int(value)).name


def parse_move(token: object) -> Move:
    """Parse 'C'/'D'/'0'/'1' (str or int) into a :class:`Move`.

    Raises
    ------
    ValueError
        If ``token`` is not a recognised move spelling.
    """
    if isinstance(token, Move):
        return token
    try:
        return _PARSE[token]  # type: ignore[index]
    except (KeyError, TypeError):
        raise ValueError(f"not a move: {token!r}") from None
