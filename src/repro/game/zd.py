"""Zero-determinant (ZD) strategies — Press & Dyson's memory-one family.

The paper frames its framework as a tool for discovering strong memory-*n*
strategies; the most famous post-2012 discovery in exactly its memory-one
mixed-strategy space is Press & Dyson's zero-determinant family: strategies
that unilaterally *enforce* a linear relation between the two players'
long-run scores,

.. math:: \\pi_A - \\kappa = \\chi\\,(\\pi_B - \\kappa)

An *extortionate* strategy pins ``κ = P`` (the punishment payoff) with
slope ``χ > 1``: whatever the opponent does, A's surplus over P is χ times
B's.  A *generous* strategy pins ``κ = R``.  We construct them for any PD
payoff matrix and verify the enforced relation with the exact Markov
evaluator — a stringent cross-check of both modules.

Construction (standard form): with states ordered (CC, CD, DC, DD) from
A's perspective and cooperation probabilities ``p``, the ZD strategy with
baseline κ and slope χ is

.. code::

    p1 = 1 - phi (chi - 1) (R - kappa)
    p2 = 1 - phi ((chi T - S) + (chi - 1) kappa_term_CD)
    ...

expressed below via the payoff-vector algebra ``p = 1_coop + phi ((pi_A -
kappa) - chi (pi_B - kappa))`` evaluated per state, which covers every κ
uniformly.  ``phi > 0`` must be small enough that all probabilities stay
in [0, 1]; :func:`max_phi` computes the bound.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StrategyError
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.states import StateSpace
from repro.game.strategy import Strategy

__all__ = ["zd_strategy", "extortionate", "generous", "max_phi"]

#: Memory-one state order (A's perspective): CC, CD, DC, DD.
_STATE_ORDER = (0b00, 0b01, 0b10, 0b11)


def _payoff_vectors(payoff: PayoffMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Per-state payoff vectors for A and B in (CC, CD, DC, DD) order."""
    r, s, t, p = payoff.as_fRSTP()
    return np.array([r, s, t, p]), np.array([r, t, s, p])


def max_phi(chi: float, kappa: float, payoff: PayoffMatrix = PAPER_PAYOFFS) -> float:
    """Largest ``phi`` keeping all four ZD probabilities inside [0, 1]."""
    pa, pb = _payoff_vectors(payoff)
    coop = np.array([1.0, 1.0, 0.0, 0.0])  # A cooperated in states CC, CD
    coeff = (pa - kappa) - chi * (pb - kappa)
    limit = np.inf
    for c, base in zip(coeff, coop):
        # base + phi * c must stay within [0, 1].
        if c > 0:
            limit = min(limit, (1.0 - base) / c)
        elif c < 0:
            limit = min(limit, base / (-c))
    if not 0 < limit < np.inf:
        raise StrategyError(
            f"no valid phi for chi={chi}, kappa={kappa} under {payoff.as_fRSTP()}"
        )
    return float(limit)


def zd_strategy(
    chi: float,
    kappa: float,
    phi: float | None = None,
    payoff: PayoffMatrix = PAPER_PAYOFFS,
    name: str | None = None,
) -> Strategy:
    """Build the memory-one ZD strategy enforcing ``pi_A - κ = χ (pi_B - κ)``.

    Parameters
    ----------
    chi:
        Slope of the enforced relation (> 0; > 1 means A extorts).
    kappa:
        Baseline payoff pinned by the relation; must lie in [P, R] for the
        strategy to exist.
    phi:
        Scale parameter in ``(0, max_phi]``; default half the bound.
    payoff:
        The PD payoff matrix.
    """
    if chi <= 0:
        raise StrategyError(f"chi must be positive, got {chi}")
    r, _, _, p = payoff.as_fRSTP()
    if not p <= kappa <= r:
        raise StrategyError(f"kappa must lie in [P, R] = [{p}, {r}], got {kappa}")
    bound = max_phi(chi, kappa, payoff)
    if phi is None:
        phi = bound / 2.0
    if not 0 < phi <= bound:
        raise StrategyError(f"phi must lie in (0, {bound:.6g}], got {phi}")

    pa, pb = _payoff_vectors(payoff)
    coop = np.array([1.0, 1.0, 0.0, 0.0])
    # Cooperation probabilities per (CC, CD, DC, DD).
    p_coop = coop + phi * ((pa - kappa) - chi * (pb - kappa))
    if p_coop.min() < -1e-12 or p_coop.max() > 1 + 1e-12:
        raise StrategyError(
            f"ZD probabilities escaped [0,1]: {p_coop} (chi={chi}, kappa={kappa}, phi={phi})"
        )
    p_coop = np.clip(p_coop, 0.0, 1.0)

    # Convert to this package's defect-probability tables in natural state
    # order; _STATE_ORDER here *is* natural order (CC, CD, DC, DD).
    table = np.empty(4, dtype=np.float64)
    for idx, state in enumerate(_STATE_ORDER):
        table[state] = 1.0 - p_coop[idx]
    return Strategy(StateSpace(1), table, name=name or f"ZD(chi={chi:g},kappa={kappa:g})")


def extortionate(chi: float, phi: float | None = None, payoff: PayoffMatrix = PAPER_PAYOFFS) -> Strategy:
    """Press-Dyson extortioner: pins κ = P with slope χ > 1."""
    if chi <= 1:
        raise StrategyError(f"an extortionate strategy needs chi > 1, got {chi}")
    _, _, _, p = payoff.as_fRSTP()
    return zd_strategy(chi, kappa=p, phi=phi, payoff=payoff, name=f"Extort-{chi:g}")


def generous(chi: float, phi: float | None = None, payoff: PayoffMatrix = PAPER_PAYOFFS) -> Strategy:
    """Generous ZD: pins κ = R with slope χ > 1 (A concedes the surplus)."""
    if chi <= 1:
        raise StrategyError(f"a generous ZD strategy needs chi > 1, got {chi}")
    r, _, _, _ = payoff.as_fRSTP()
    return zd_strategy(chi, kappa=r, phi=phi, payoff=payoff, name=f"Generous-{chi:g}")
