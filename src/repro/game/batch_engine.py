"""Batched bit-packed generation kernel: a whole round-robin per call.

The paper's observation is that a generation of evolutionary IPD is pure
table arithmetic: memory-*n* strategies are ``4**n`` lookup tables, so every
matchup advances by the same O(1) state recurrence and a generation is
nothing but gathers and index arithmetic.  :class:`BatchEngine` exploits
that all the way down: strategy tables are bit-packed with
:mod:`repro.game.bitpack` (one *move* per bit, 64 per machine word), each
matchup occupies a uint64 *lane*, and all games of a batch advance together
one round per fused array operation.

Compared to :class:`~repro.game.vector_engine.VectorEngine` (which gathers
one **byte** per player per round out of a densely materialised
``(n_games, 4**n)`` row matrix), the batch kernel

* keeps the whole strategy matrix packed — 8x less memory traffic, and for
  memory <= 3 an entire table fits in the game's single lane word, so the
  per-round move read is a register shift with **no gather at all**;
* accumulates integer-payoff fitness as exact integer move counts
  (defections, opponent defections, mutual defections) and applies the
  payoff matrix once at the end — the inner loop never touches a float;
* optionally compiles the whole loop nest with numba (feature flag; pure
  NumPy fallback when numba is absent).

Identity contracts, both enforced by the parity suite
(``tests/game/test_engine_parity.py``):

* **bit-identical fitness** — every kernel returns exactly the payoffs of
  the scalar reference engine and of ``VectorEngine``, with and without
  noise, for memory one through six;
* **fingerprint compatibility** — :meth:`BatchEngine.fingerprint` equals
  :meth:`VectorEngine.fingerprint` for equal game parameters, so a
  :class:`~repro.game.fitness_cache.FitnessCache` can be shared or swapped
  between engines without invalidation.

Mixed (float) strategy matrices have a per-state *probability*, not a bit,
so they cannot be packed; :meth:`BatchEngine.play` plays them through the
inherited dense vector path, drawing randomness in the identical order.

See ``docs/kernels.md`` for the encoding, the exactness argument behind the
integer accumulation, and how to read ``BENCH_engine.json``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import GameError
from repro.game.bitpack import words_needed
from repro.game.engine import DEFAULT_ROUNDS
from repro.game.noise import NO_NOISE, NoiseModel
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.states import StateSpace
from repro.game.vector_engine import (
    BatchResult,
    VectorEngine,
    as_table_matrix,
)
from repro.obs.tracer import get_tracer

__all__ = [
    "BatchEngine",
    "pack_matrix",
    "make_engine",
    "NUMBA_AVAILABLE",
    "JIT_ENV_VAR",
]

#: Environment variable consulted when ``jit="auto"``: set to ``on``/``1``
#: to require the compiled kernel, ``off``/``0`` to pin the NumPy kernel.
JIT_ENV_VAR = "REPRO_BATCH_JIT"

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - ImportError or a broken install
    _numba = None
    NUMBA_AVAILABLE = False


def pack_matrix(space: StateSpace, tables: np.ndarray) -> np.ndarray:
    """Bit-pack a pure strategy matrix, one row per strategy.

    Row ``i`` of the result is exactly ``bitpack.pack_table(tables[i])``:
    table entry ``s`` lives in bit ``s % 64`` of word ``s // 64``
    (little-endian bit order), bits beyond ``n_states`` are zero.

    Returns a ``(n_strategies, words_needed(n_states))`` uint64 array.
    """
    mat = as_table_matrix(space, tables)
    if mat.dtype != np.uint8:
        raise GameError("only pure (0/1) strategy matrices can be bit-packed")
    nwords = words_needed(space.n_states)
    packed_bytes = np.packbits(mat, axis=1, bitorder="little")
    if packed_bytes.shape[1] != 8 * nwords:
        padded = np.zeros((mat.shape[0], 8 * nwords), dtype=np.uint8)
        padded[:, : packed_bytes.shape[1]] = packed_bytes
        packed_bytes = padded
    return np.ascontiguousarray(packed_bytes).view("<u8")


def _resolve_jit(jit: object) -> bool:
    """Map the ``jit`` feature flag (plus environment) to use-numba yes/no."""
    if jit is True:
        jit = "on"
    elif jit is False:
        jit = "off"
    elif jit is None:
        jit = "auto"
    if jit not in ("auto", "on", "off"):
        raise GameError(f"jit must be 'auto', 'on' or 'off', got {jit!r}")
    if jit == "auto":
        env = os.environ.get(JIT_ENV_VAR, "").strip().lower()
        if env in ("on", "1", "true", "yes"):
            jit = "on"
        elif env in ("off", "0", "false", "no"):
            jit = "off"
    if jit == "on":
        if not NUMBA_AVAILABLE:
            raise GameError(
                "the compiled batch kernel was requested (jit='on' or"
                f" {JIT_ENV_VAR}=on) but numba is not installed;"
                " install numba or use jit='auto'/'off'"
            )
        return True
    if jit == "off":
        return False
    return NUMBA_AVAILABLE


_JIT_KERNEL = None


def _get_jit_kernel():  # pragma: no cover - requires numba
    """Compile (once) and return the numba round-loop kernel."""
    global _JIT_KERNEL
    if _JIT_KERNEL is None:
        from numba import njit

        @njit(nogil=True)
        def kernel(
            flat,  # packed matrix, flattened: uint64[n_strategies * n_words]
            n_words,
            mask,  # uint64 state mask
            ia,
            ib,
            rounds,
            use_flips,
            flips_a,  # bool[rounds, n_games] execution errors (may be empty)
            flips_b,
            int_path,
            pay_mine,  # float64[4] flattened payoff, index (my << 1) | opp
            pay_theirs,
            da,  # int64[n_games] out: my defections
            db,  # int64[n_games] out: opponent defections
            dab,  # int64[n_games] out: mutual defections
            fit_a,  # float64[n_games] out (float accumulation path only)
            fit_b,
        ):
            u1 = np.uint64(1)
            u2 = np.uint64(2)
            u6 = np.uint64(6)
            u63 = np.uint64(63)
            n_games = ia.shape[0]
            for g in range(n_games):
                sa = np.uint64(0)
                sb = np.uint64(0)
                base_a = ia[g] * n_words
                base_b = ib[g] * n_words
                for r in range(rounds):
                    wa = flat[base_a + np.int64(sa >> u6)]
                    wb = flat[base_b + np.int64(sb >> u6)]
                    a = (wa >> (sa & u63)) & u1
                    b = (wb >> (sb & u63)) & u1
                    if use_flips:
                        if flips_a[r, g]:
                            a ^= u1
                        if flips_b[r, g]:
                            b ^= u1
                    da[g] += np.int64(a)
                    db[g] += np.int64(b)
                    if int_path:
                        dab[g] += np.int64(a & b)
                    else:
                        j = np.int64((a << u1) | b)
                        fit_a[g] += pay_mine[j]
                        fit_b[g] += pay_theirs[j]
                    sa = ((sa << u2) | (a << u1) | b) & mask
                    sb = ((sb << u2) | (b << u1) | a) & mask

        _JIT_KERNEL = kernel
    return _JIT_KERNEL


class BatchEngine(VectorEngine):
    """Plays batches of IPD games over a bit-packed strategy matrix.

    Drop-in replacement for :class:`~repro.game.vector_engine.VectorEngine`
    — same constructor, same :meth:`play`/:meth:`tournament` signatures and
    semantics, bit-identical fitness, identical RNG consumption (per round:
    one flip block per player when noise is active, in A-then-B order), and
    the identical :meth:`fingerprint`, so
    :class:`~repro.game.fitness_cache.FitnessCache` entries remain valid
    across the two engines.

    Parameters
    ----------
    space, payoff, rounds, noise:
        As for :class:`~repro.game.vector_engine.VectorEngine`.
    jit:
        Feature flag for the numba-compiled kernel.  ``"auto"`` (default)
        compiles when numba is importable, else falls back to the pure
        NumPy kernel; the :data:`JIT_ENV_VAR` environment variable can pin
        the auto choice.  ``"on"`` requires numba (raises
        :class:`~repro.errors.GameError` when absent); ``"off"`` always
        uses NumPy.  ``True``/``False`` are accepted aliases.

    Notes
    -----
    When every payoff-matrix entry is an integer (the paper's
    ``[3, 0, 4, 1]`` is), per-game fitness is accumulated as three integer
    move counters and resolved through the payoff matrix once at the end.
    All partial sums on either path are then exactly representable
    integers, so the result is *bit-identical* to the reference engines'
    round-by-round float accumulation while keeping floats out of the
    inner loop entirely.  Non-integer payoff matrices take a
    round-by-round float path in the reference engines' exact order.
    """

    def __init__(
        self,
        space: StateSpace,
        payoff: PayoffMatrix = PAPER_PAYOFFS,
        rounds: int = DEFAULT_ROUNDS,
        noise: NoiseModel = NO_NOISE,
        jit: object = "auto",
    ) -> None:
        super().__init__(space, payoff=payoff, rounds=rounds, noise=noise)
        self._use_numba = _resolve_jit(jit)
        pay = np.asarray(payoff.table, dtype=np.float64)
        # Integer payoffs allow exact count-based accumulation: every partial
        # sum stays an exactly-representable integer, so summation order
        # cannot change the result (the exactness argument in docs/kernels.md).
        self._int_payoffs = bool(
            np.all(np.isfinite(pay))
            and np.array_equal(pay, np.rint(pay))
            and float(np.max(np.abs(pay))) * self.rounds < 2**52
        )
        if self._int_payoffs:
            p00, p01 = int(pay[0, 0]), int(pay[0, 1])
            p10, p11 = int(pay[1, 0]), int(pay[1, 1])
            cross = p11 - p10 - p01 + p00
            # pay[a, b] == c0 + ca*a + cb*b + cab*a*b for a, b in {0, 1}.
            self._lin_mine = (p00, p10 - p00, p01 - p00, cross)
            self._lin_theirs = (p00, p01 - p00, p10 - p00, cross)

    @property
    def kernel(self) -> str:
        """Which pure-strategy kernel this engine runs: ``numba`` or ``numpy``."""
        return "numba" if self._use_numba else "numpy"

    # -- main entry ---------------------------------------------------------

    def play(
        self,
        tables: np.ndarray,
        ia: np.ndarray,
        ib: np.ndarray,
        rng: np.random.Generator | None = None,
        record_cooperation: bool = False,
    ) -> BatchResult:
        """Play ``len(ia)`` games; game ``g`` is ``tables[ia[g]]`` vs ``tables[ib[g]]``.

        Pure (integer) matrices are bit-packed and run through the batched
        kernel; mixed (float) matrices fall back to the inherited dense
        vector path.  Results and RNG consumption are identical either way.
        """
        mat = as_table_matrix(self.space, tables)
        if mat.dtype != np.uint8:
            # Mixed strategies store a per-state probability, not a bit:
            # nothing to pack.  The dense path draws the same stream.
            return super().play(
                mat, ia, ib, rng=rng, record_cooperation=record_cooperation
            )
        ia = np.asarray(ia, dtype=np.intp)
        ib = np.asarray(ib, dtype=np.intp)
        if ia.shape != ib.shape or ia.ndim != 1:
            raise GameError(
                f"ia/ib must be equal-length 1-D arrays, got {ia.shape}, {ib.shape}"
            )
        n_games = ia.size
        if n_games and (
            ia.min() < 0 or ib.min() < 0 or max(ia.max(), ib.max()) >= mat.shape[0]
        ):
            raise GameError("pair indices out of range of the strategy matrix")
        if not self.noise.is_noiseless and rng is None:
            raise GameError("mixed strategies or noise require an rng")
        if n_games == 0:
            empty = np.empty(0, dtype=np.float64)
            zero = np.empty(0, dtype=np.int64)
            return BatchResult(empty, empty.copy(), self.rounds, zero, zero.copy())
        tracer = get_tracer()
        trace_t0 = tracer.now() if tracer.enabled else 0.0

        packed = pack_matrix(self.space, mat)
        if self._use_numba:
            da, db, dab, fit_a, fit_b = self._run_numba(packed, ia, ib, rng)
        else:
            da, db, dab, fit_a, fit_b = self._run_numpy(packed, ia, ib, rng)

        if self._int_payoffs:
            rounds = np.int64(self.rounds)
            c0, ca, cb, cab = self._lin_mine
            fit_a = (c0 * rounds + ca * da + cb * db + cab * dab).astype(np.float64)
            c0, ca, cb, cab = self._lin_theirs
            fit_b = (c0 * rounds + ca * da + cb * db + cab * dab).astype(np.float64)

        self.games_played += n_games
        self.rounds_played += n_games * self.rounds
        if tracer.enabled:
            tracer.complete(
                "batch_engine.play", cat="game", ts=trace_t0,
                dur=tracer.now() - trace_t0,
                args={
                    "games": int(n_games),
                    "rounds": self.rounds,
                    "kernel": self.kernel,
                },
            )
        empty = np.empty(0, dtype=np.int64)
        return BatchResult(
            fitness_a=fit_a,
            fitness_b=fit_b,
            rounds=self.rounds,
            cooperations_a=(self.rounds - da) if record_cooperation else empty,
            cooperations_b=(self.rounds - db) if record_cooperation else empty,
        )

    # -- kernels ------------------------------------------------------------

    def _run_numpy(self, packed, ia, ib, rng):
        """Pure NumPy round loop: all games advance together per round."""
        n_games = ia.size
        n_words = packed.shape[1]
        mask = np.uint64(self.space.mask)
        one = np.uint64(1)
        rate = self.noise.rate
        int_path = self._int_payoffs

        state_a = np.zeros(n_games, dtype=np.uint64)
        state_b = np.zeros(n_games, dtype=np.uint64)
        move_a = np.empty(n_games, dtype=np.uint64)
        move_b = np.empty(n_games, dtype=np.uint64)
        da = np.zeros(n_games, dtype=np.int64)
        db = np.zeros(n_games, dtype=np.int64)
        dab = np.zeros(n_games, dtype=np.int64)
        fit_a = fit_b = None
        if not int_path:
            fit_a = np.zeros(n_games, dtype=np.float64)
            fit_b = np.zeros(n_games, dtype=np.float64)

        single = n_words == 1
        if single:
            # The whole table fits in the matchup's one uint64 lane: gather
            # it once, and every later move read is a register shift.
            lane_a = packed[ia, 0]
            lane_b = packed[ib, 0]
        else:
            flat = packed.ravel()
            base_a = (ia * n_words).astype(np.intp)
            base_b = (ib * n_words).astype(np.intp)

        for _ in range(self.rounds):
            if single:
                np.right_shift(lane_a, state_a, out=move_a)
                np.right_shift(lane_b, state_b, out=move_b)
            else:
                wa = flat[base_a + (state_a >> np.uint64(6)).astype(np.intp)]
                wb = flat[base_b + (state_b >> np.uint64(6)).astype(np.intp)]
                np.right_shift(wa, state_a & np.uint64(63), out=move_a)
                np.right_shift(wb, state_b & np.uint64(63), out=move_b)
            move_a &= one
            move_b &= one
            if rate:
                # Same draw order as VectorEngine: A's flip block, then B's.
                move_a ^= (rng.random(n_games) < rate).astype(np.uint64)
                move_b ^= (rng.random(n_games) < rate).astype(np.uint64)

            da += move_a.astype(np.int64)
            db += move_b.astype(np.int64)
            if int_path:
                dab += (move_a & move_b).astype(np.int64)
            else:
                joint = ((move_a << one) | move_b).astype(np.intp)
                fit_a += self._pay_mine[joint]
                fit_b += self._pay_theirs[joint]

            # state' = ((state << 2) | (my << 1) | opp) & mask, both views.
            np.left_shift(state_a, np.uint64(2), out=state_a)
            state_a |= move_a << one
            state_a |= move_b
            state_a &= mask
            np.left_shift(state_b, np.uint64(2), out=state_b)
            state_b |= move_b << one
            state_b |= move_a
            state_b &= mask
        return da, db, dab, fit_a, fit_b

    def _run_numba(self, packed, ia, ib, rng):  # pragma: no cover - requires numba
        """Compiled loop nest; randomness is pre-drawn in the dense order."""
        n_games = ia.size
        rate = self.noise.rate
        use_flips = bool(rate)
        if use_flips:
            flips_a = np.empty((self.rounds, n_games), dtype=np.bool_)
            flips_b = np.empty((self.rounds, n_games), dtype=np.bool_)
            for r in range(self.rounds):
                # One block per player per round, A then B — the exact
                # stream order of VectorEngine and the NumPy kernel.
                flips_a[r] = rng.random(n_games) < rate
                flips_b[r] = rng.random(n_games) < rate
        else:
            flips_a = flips_b = np.empty((0, 0), dtype=np.bool_)
        da = np.zeros(n_games, dtype=np.int64)
        db = np.zeros(n_games, dtype=np.int64)
        dab = np.zeros(n_games, dtype=np.int64)
        fit_a = np.zeros(n_games, dtype=np.float64)
        fit_b = np.zeros(n_games, dtype=np.float64)
        kernel = _get_jit_kernel()
        kernel(
            packed.ravel(),
            np.int64(packed.shape[1]),
            np.uint64(self.space.mask),
            ia.astype(np.int64),
            ib.astype(np.int64),
            np.int64(self.rounds),
            use_flips,
            flips_a,
            flips_b,
            self._int_payoffs,
            self._pay_mine,
            self._pay_theirs,
            da,
            db,
            dab,
            fit_a,
            fit_b,
        )
        return da, db, dab, fit_a, fit_b

    def __repr__(self) -> str:
        return (
            f"BatchEngine(memory={self.space.memory}, rounds={self.rounds},"
            f" noise={self.noise.rate}, kernel={self.kernel},"
            f" games_played={self.games_played})"
        )


def make_engine(
    space: StateSpace,
    payoff: PayoffMatrix = PAPER_PAYOFFS,
    rounds: int = DEFAULT_ROUNDS,
    noise: NoiseModel = NO_NOISE,
    kind: str = "vector",
    jit: object = "auto",
) -> VectorEngine:
    """Build a tournament engine of the requested ``kind``.

    ``kind="vector"`` returns the dense
    :class:`~repro.game.vector_engine.VectorEngine`; ``kind="batch"`` the
    bit-packed :class:`BatchEngine` (``jit`` selects its kernel).  Both
    satisfy the same play/tournament/fingerprint contract, so callers —
    :class:`~repro.population.fitness.FitnessEvaluator`, the parallel
    runner, a :class:`~repro.game.fitness_cache.FitnessCache` — can switch
    freely.  :attr:`repro.config.SimulationConfig.resolved_engine` maps a
    configuration to the ``kind`` used throughout a run.
    """
    if kind == "vector":
        return VectorEngine(space, payoff=payoff, rounds=rounds, noise=noise)
    if kind == "batch":
        return BatchEngine(space, payoff=payoff, rounds=rounds, noise=noise, jit=jit)
    raise GameError(f"engine kind must be 'vector' or 'batch', got {kind!r}")
