"""Strategy-space enumeration and counting (paper §III-D, Tables III and IV).

For memory-*n* there are ``4**n`` states and ``2**(4**n)`` pure strategies —
16 for memory-one, 65,536 for memory-two, and astronomically many beyond
(the paper quotes 1.84e19, 1.16e77, 2^2048 and 2^4096 for memory three
through six).  Only the memory-one space is small enough to enumerate; the
rest we count, sample, and describe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import StrategyError
from repro.game.strategy import Strategy
from repro.game.states import StateSpace

__all__ = ["StrategySpace", "PAPER_TABLE4"]

#: The paper's Table IV, as printed: memory steps -> number of pure strategies.
PAPER_TABLE4 = {
    1: "16",
    2: "65536",
    3: "1.84*10^19",
    4: "1.16*10^77",
    5: "2^2048",
    6: "2^4096",
}


@dataclass(frozen=True)
class StrategySpace:
    """The space of strategies for a given memory depth.

    Examples
    --------
    >>> sp = StrategySpace(2)
    >>> sp.n_states, sp.n_pure
    (16, 65536)
    >>> StrategySpace(6).log10_n_pure  # doctest: +ELLIPSIS
    1233.0...
    """

    memory: int

    @property
    def space(self) -> StateSpace:
        """The underlying state space."""
        return StateSpace(self.memory)

    @property
    def n_states(self) -> int:
        """Number of game states, ``4**memory``."""
        return self.space.n_states

    @property
    def n_pure(self) -> int:
        """Exact count of pure strategies, ``2**n_states`` (arbitrary precision)."""
        return 1 << self.n_states

    @property
    def log2_n_pure(self) -> int:
        """``log2`` of the pure-strategy count — simply ``4**memory``."""
        return self.n_states

    @property
    def log10_n_pure(self) -> float:
        """``log10`` of the pure-strategy count (handles 2^4096 comfortably)."""
        return self.n_states * math.log10(2.0)

    def describe_n_pure(self) -> str:
        """Human-readable size in the style of the paper's Table IV.

        Small counts print exactly; mid-range counts print as mantissa x
        10^exp; huge counts print as a power of two.
        """
        if self.n_states <= 16:
            return str(self.n_pure)
        if self.log10_n_pure < 100:
            exp = int(self.log10_n_pure)
            mantissa = 10 ** (self.log10_n_pure - exp)
            return f"{mantissa:.2f}*10^{exp}"
        return f"2^{self.n_states}"

    # -- enumeration & sampling -------------------------------------------

    def iter_pure(self) -> Iterator[Strategy]:
        """Iterate every pure strategy (memory-one only: 16 strategies).

        Larger spaces are refused: memory-two already has 65,536 strategies
        and memory-three could not complete before the heat death of the
        machine.
        """
        if self.memory > 1:
            raise StrategyError(
                f"refusing to enumerate 2^{self.n_states} strategies; sample instead"
            )
        space = self.space
        for sid in range(self.n_pure):
            yield Strategy.from_id(space, sid)

    def sample_pure_ids(self, count: int, rng: np.random.Generator) -> list[int]:
        """Draw ``count`` uniformly random pure-strategy ids (arbitrary precision).

        Ids are assembled 64 bits at a time so the full ``2**4096``-wide
        space is sampled uniformly even though it dwarfs any float range.
        """
        if count < 0:
            raise StrategyError(f"count must be non-negative, got {count}")
        nwords = (self.n_states + 63) // 64
        excess = 64 * nwords - self.n_states
        ids: list[int] = []
        for _ in range(count):
            words = rng.integers(
                0, np.iinfo(np.uint64).max, size=nwords, dtype=np.uint64, endpoint=True
            )
            value = 0
            for w, word in enumerate(words):
                value |= int(word) << (64 * w)
            if excess:
                value &= (1 << self.n_states) - 1
            ids.append(value)
        return ids

    # -- paper tables --------------------------------------------------------

    def table3_rows(self) -> list[tuple[int, str, str, str, str]]:
        """The paper's Table III: all 16 memory-one strategies.

        Rows are ordered by number of defecting states, then by the
        lexicographic order of the defecting-state combination — which
        matches the paper everywhere except its rows 13 and 14, which the
        paper prints transposed relative to this rule (a typesetting slip;
        the set of strategies is identical).
        """
        if self.memory != 1:
            raise StrategyError("Table III is defined for memory-one")
        strategies = sorted(
            range(16),
            key=lambda sid: (
                bin(sid).count("1"),
                tuple(s for s in range(4) if (sid >> s) & 1),
            ),
        )
        rows = []
        for rank, sid in enumerate(strategies, start=1):
            letters = [("D" if (sid >> s) & 1 else "C") for s in range(4)]
            rows.append((rank, *letters))
        return rows

    @staticmethod
    def table4_rows() -> list[tuple[int, str]]:
        """The paper's Table IV: (memory steps, number of pure strategies)."""
        return [(m, StrategySpace(m).describe_n_pure()) for m in range(1, 7)]

    def __repr__(self) -> str:
        return f"StrategySpace(memory={self.memory}, n_pure={self.describe_n_pure()})"
