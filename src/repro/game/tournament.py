"""Axelrod-style round-robin tournaments (paper §III-B).

The paper motivates its framework with Axelrod's tournaments: every entrant
plays every other (and itself), scores are tallied, and robust cooperators
rise.  This module is the first-class API behind
``examples/tournament_axelrod.py``: build a roster of strategies (named
classics, ZD variants, random, or custom), play the full round robin —
optionally repeated, optionally noisy — and get a ranked scoreboard.

All entrants must share one memory depth; mixed strategies and execution
errors are supported through the vectorised engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import render_table
from repro.errors import GameError
from repro.game.engine import DEFAULT_ROUNDS
from repro.game.noise import NO_NOISE, NoiseModel
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.strategy import Strategy
from repro.game.vector_engine import VectorEngine

__all__ = ["TournamentResult", "Tournament"]


@dataclass(frozen=True)
class TournamentResult:
    """Scoreboard of one tournament.

    Attributes
    ----------
    names:
        Entrant labels, in roster order.
    totals:
        Average total fitness per entrant (over repeats), roster order.
    pairwise:
        (n, n) matrix; entry [i, j] is entrant i's average fitness against
        entrant j (diagonal = self-play).
    repeats:
        Independent repetitions averaged over.
    """

    names: tuple[str, ...]
    totals: np.ndarray
    pairwise: np.ndarray
    repeats: int

    def ranking(self) -> list[tuple[str, float]]:
        """(name, average total fitness), best first; ties broken by name."""
        order = sorted(range(len(self.names)), key=lambda i: (-self.totals[i], self.names[i]))
        return [(self.names[i], float(self.totals[i])) for i in order]

    @property
    def winner(self) -> str:
        """The top-ranked entrant."""
        return self.ranking()[0][0]

    def score_of(self, name: str) -> float:
        """Average total fitness of one entrant."""
        try:
            return float(self.totals[self.names.index(name)])
        except ValueError:
            raise GameError(f"no entrant named {name!r}") from None

    def render(self, title: str | None = None) -> str:
        """Scoreboard as a text table."""
        rows = [(name, f"{score:.1f}") for name, score in self.ranking()]
        return render_table(["strategy", "avg total fitness"], rows, title=title)


class Tournament:
    """A round-robin tournament over a fixed roster.

    Parameters
    ----------
    entrants:
        ``(name, Strategy)`` pairs; names must be unique, strategies must
        share one memory depth.
    payoff, rounds, noise:
        Game parameters (paper defaults).
    include_self:
        Whether entrants also play themselves (Axelrod's tournaments did).
    """

    def __init__(
        self,
        entrants: list[tuple[str, Strategy]],
        payoff: PayoffMatrix = PAPER_PAYOFFS,
        rounds: int = DEFAULT_ROUNDS,
        noise: NoiseModel = NO_NOISE,
        include_self: bool = True,
    ) -> None:
        if len(entrants) < 2:
            raise GameError(f"need at least 2 entrants, got {len(entrants)}")
        names = [name for name, _ in entrants]
        if len(set(names)) != len(names):
            raise GameError(f"entrant names must be unique, got {names}")
        spaces = {strategy.space for _, strategy in entrants}
        if len(spaces) != 1:
            raise GameError("all entrants must share one memory depth")
        self.names = tuple(names)
        self.space = next(iter(spaces))
        tables = np.vstack([np.asarray(s.table, dtype=np.float64) for _, s in entrants])
        if np.all((tables == 0.0) | (tables == 1.0)):
            tables = tables.astype(np.uint8)  # all-pure roster plays deterministically
        self.tables = tables
        self.engine = VectorEngine(self.space, payoff=payoff, rounds=rounds, noise=noise)
        self.include_self = include_self

    @property
    def stochastic(self) -> bool:
        """Whether games need randomness (mixed entrants or noise)."""
        return self.tables.dtype != np.uint8 or not self.engine.noise.is_noiseless

    def play(self, repeats: int = 1, seed: int = 0) -> TournamentResult:
        """Run the round robin ``repeats`` times and average the scores."""
        if repeats < 1:
            raise GameError(f"repeats must be >= 1, got {repeats}")
        n = len(self.names)
        ia, ib = self.engine.round_robin_pairs(n, include_self=self.include_self)
        rng = np.random.default_rng(seed) if self.stochastic else None
        pairwise = np.zeros((n, n))
        for _ in range(repeats):
            res = self.engine.play(self.tables, ia, ib, rng=rng)
            np.add.at(pairwise, (ia, ib), res.fitness_a)
            np.add.at(pairwise, (ib, ia), res.fitness_b)
        pairwise /= repeats
        # Self-play accumulated both halves onto the diagonal; one agent's
        # score is the meaningful per-matchup quantity.
        if self.include_self:
            pairwise[np.diag_indices(n)] /= 2.0
        totals = pairwise.sum(axis=1)
        if not self.include_self:
            np.fill_diagonal(pairwise, np.nan)
        return TournamentResult(
            names=self.names, totals=totals, pairwise=pairwise, repeats=repeats
        )

    def __repr__(self) -> str:
        return (
            f"Tournament({len(self.names)} entrants, memory={self.space.memory},"
            f" rounds={self.engine.rounds}, noise={self.engine.noise.rate})"
        )
