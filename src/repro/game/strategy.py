"""Strategies: pure and mixed memory-*n* action plans (paper §III-C, §IV-C).

A strategy maps every game state to a move.  A *pure* strategy stores the
move (0=C, 1=D) for each of the ``4**n`` states; a *mixed* strategy stores
the probability of playing D in each state, so a pure strategy is exactly a
mixed strategy whose probabilities are all 0 or 1.

Named classics (TFT, WSLS, GRIM, ...) are generated for any memory depth by
a rule over the most recent round, matching how the literature lifts
memory-one strategies into larger state spaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import StrategyError
from repro.game import bitpack
from repro.game.moves import move_label
from repro.game.states import StateSpace

__all__ = ["Strategy", "named_strategy", "NAMED_STRATEGIES"]


@dataclass(frozen=True)
class Strategy:
    """An agent's action plan over a :class:`~repro.game.states.StateSpace`.

    Parameters
    ----------
    space:
        The memory-*n* state space the strategy is defined over.
    table:
        Length-``space.n_states`` array.  Integer 0/1 entries give a pure
        strategy; floats in ``[0, 1]`` give a mixed strategy where each
        entry is the probability of *defecting* in that state.
    name:
        Optional label, e.g. ``"WSLS"``; purely cosmetic.

    Notes
    -----
    Instances are immutable: the table is copied and write-protected.
    """

    space: StateSpace
    table: np.ndarray
    name: str | None = None
    _is_pure: bool = field(init=False, repr=False, compare=False, default=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.table)
        if arr.ndim != 1 or arr.size != self.space.n_states:
            raise StrategyError(
                f"table must have {self.space.n_states} entries for memory-{self.space.memory},"
                f" got shape {arr.shape}"
            )
        if np.issubdtype(arr.dtype, np.integer) or arr.dtype == np.bool_:
            vals = arr.astype(np.uint8)
            if not np.all((vals == 0) | (vals == 1)):
                raise StrategyError("pure strategy entries must be 0 (C) or 1 (D)")
            table = vals
            pure = True
        elif np.issubdtype(arr.dtype, np.floating):
            table = arr.astype(np.float64)
            if not np.all(np.isfinite(table)) or table.min() < 0.0 or table.max() > 1.0:
                raise StrategyError("mixed strategy probabilities must lie in [0, 1]")
            pure = bool(np.all((table == 0.0) | (table == 1.0)))
            if pure:
                table = table.astype(np.uint8)
        else:
            raise StrategyError(f"unsupported table dtype {arr.dtype}")
        table = table.copy()
        table.setflags(write=False)
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "_is_pure", pure)

    # -- constructors -----------------------------------------------------

    @classmethod
    def pure(cls, space: StateSpace, moves: np.ndarray | list[int], name: str | None = None) -> "Strategy":
        """Build a pure strategy from a 0/1 move list."""
        return cls(space, np.asarray(moves, dtype=np.uint8), name)

    @classmethod
    def mixed(
        cls, space: StateSpace, defect_probs: np.ndarray | list[float], name: str | None = None
    ) -> "Strategy":
        """Build a mixed strategy from per-state defection probabilities."""
        return cls(space, np.asarray(defect_probs, dtype=np.float64), name)

    @classmethod
    def from_id(cls, space: StateSpace, strategy_id: int, name: str | None = None) -> "Strategy":
        """Decode the integer id of a pure strategy.

        Bit ``s`` of ``strategy_id`` is the move in state ``s``, so ids run
        from 0 (ALLC) to ``2**n_states - 1`` (ALLD) — the paper's Table IV
        counts exactly these.
        """
        if not 0 <= strategy_id < space.n_pure_strategies:
            raise StrategyError(
                f"strategy id {strategy_id} out of range for memory-{space.memory}"
            )
        moves = np.array(
            [(strategy_id >> s) & 1 for s in range(space.n_states)], dtype=np.uint8
        )
        return cls(space, moves, name)

    @classmethod
    def from_packed(cls, space: StateSpace, words: np.ndarray, name: str | None = None) -> "Strategy":
        """Rebuild a pure strategy from its bit-packed form."""
        return cls(space, bitpack.unpack_table(words, space.n_states), name)

    @classmethod
    def random_pure(cls, space: StateSpace, rng: np.random.Generator, name: str | None = None) -> "Strategy":
        """Draw a uniformly random pure strategy (the paper's mutation draw)."""
        return cls(space, rng.integers(0, 2, size=space.n_states, dtype=np.uint8), name)

    @classmethod
    def random_mixed(cls, space: StateSpace, rng: np.random.Generator, name: str | None = None) -> "Strategy":
        """Draw a random mixed strategy with iid uniform defection probabilities."""
        return cls(space, rng.random(space.n_states), name)

    # -- queries ----------------------------------------------------------

    @property
    def is_pure(self) -> bool:
        """True when every state's move is deterministic."""
        return self._is_pure

    @property
    def memory(self) -> int:
        """Memory depth of the underlying state space."""
        return self.space.memory

    def defect_probability(self, state: int) -> float:
        """Probability of defecting in ``state`` (0 or 1 for pure strategies)."""
        return float(self.table[self.space.check_state(state)])

    def move(self, state: int, rng: np.random.Generator | None = None) -> int:
        """The move played in ``state``; mixed strategies need an ``rng``."""
        p = self.table[self.space.check_state(state)]
        if self._is_pure:
            return int(p)
        if rng is None:
            raise StrategyError("mixed strategies need an rng to draw a move")
        return int(rng.random() < p)

    def to_id(self) -> int:
        """Integer id of a pure strategy (inverse of :meth:`from_id`)."""
        if not self._is_pure:
            raise StrategyError("mixed strategies have no integer id")
        out = 0
        for s, m in enumerate(self.table):
            out |= int(m) << s
        return out

    def pack(self) -> np.ndarray:
        """Bit-packed words of a pure strategy (see :mod:`repro.game.bitpack`)."""
        if not self._is_pure:
            raise StrategyError("only pure strategies can be bit-packed")
        return bitpack.pack_table(self.table)

    def key(self) -> bytes:
        """Hashable identity of the strategy table (ignores the name)."""
        return bytes([self._is_pure]) + np.ascontiguousarray(self.table).tobytes()

    def cooperation_fraction(self) -> float:
        """Average cooperation probability across states (uniform weighting)."""
        return float(1.0 - np.asarray(self.table, dtype=np.float64).mean())

    # -- presentation -------------------------------------------------------

    def moves_string(self) -> str:
        """Render a pure strategy as the paper does, e.g. WSLS -> ``"[0110]"``.

        States appear in natural binary order (CC, CD, DC, DD for
        memory-one).  The paper's Fig. 2 caption writes WSLS as ``[0101]``
        using Table V's 00, 01, 11, 10 state order; see
        :meth:`paper_table5_string`.
        """
        if not self._is_pure:
            raise StrategyError("moves_string is defined for pure strategies")
        return "[" + "".join(str(int(m)) for m in self.table) + "]"

    def letters_string(self) -> str:
        """Render a pure strategy as C/D letters in natural state order."""
        if not self._is_pure:
            raise StrategyError("letters_string is defined for pure strategies")
        return "".join(move_label(m) for m in self.table)

    def paper_table5_string(self) -> str:
        """Memory-one moves in the paper's Table V state order (00, 01, 11, 10)."""
        from repro.game.states import PAPER_TABLE5_STATE_ORDER

        if self.memory != 1:
            raise StrategyError("Table V ordering applies to memory-one strategies")
        if not self._is_pure:
            raise StrategyError("Table V rendering is defined for pure strategies")
        return "[" + "".join(str(int(self.table[s])) for s in PAPER_TABLE5_STATE_ORDER) + "]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Strategy):
            return NotImplemented
        return self.space == other.space and self.key() == other.key()

    def __hash__(self) -> int:
        return hash((self.space, self.key()))

    def __repr__(self) -> str:
        label = self.name or ("pure" if self._is_pure else "mixed")
        body = self.moves_string() if self._is_pure and self.space.n_states <= 16 else f"{self.space.n_states} states"
        return f"Strategy({label}, memory={self.memory}, {body})"


# ---------------------------------------------------------------------------
# Named classic strategies, lifted to any memory depth.
# ---------------------------------------------------------------------------


def _lift_last_round(space: StateSpace, rule: Callable[[int, int], float]) -> np.ndarray:
    """Fill a table by applying ``rule(my_last, opp_last)`` to every state."""
    table = np.empty(space.n_states, dtype=np.float64)
    for s in range(space.n_states):
        my_last, opp_last = (s >> 1) & 1, s & 1
        table[s] = rule(my_last, opp_last)
    return table


def _grim(space: StateSpace) -> np.ndarray:
    """Grim trigger within the memory window: defect if any D appears."""
    table = np.zeros(space.n_states, dtype=np.float64)
    for s in range(space.n_states):
        table[s] = 1.0 if s != 0 else 0.0
    return table


def _builders() -> dict[str, Callable[[StateSpace], np.ndarray]]:
    return {
        # Always cooperate / always defect.
        "ALLC": lambda sp: np.zeros(sp.n_states, dtype=np.float64),
        "ALLD": lambda sp: np.ones(sp.n_states, dtype=np.float64),
        # Tit-for-tat: copy the opponent's most recent move (§I).
        "TFT": lambda sp: _lift_last_round(sp, lambda my, opp: float(opp)),
        # Win-stay lose-shift: repeat my move iff the opponent cooperated
        # (payoff was R or T -> "win"); otherwise switch (§III-E).
        "WSLS": lambda sp: _lift_last_round(sp, lambda my, opp: float(my ^ opp)),
        # Grim trigger truncated to the memory window.
        "GRIM": _grim,
        # Generous TFT: forgive a defection with probability 1/3 under the
        # paper's payoffs (g = min(1 - (T-R)/(R-S), (R-P)/(T-P)) = 1/3).
        "GTFT": lambda sp: _lift_last_round(sp, lambda my, opp: (2.0 / 3.0) * opp),
        # Uniformly random play.
        "RANDOM": lambda sp: np.full(sp.n_states, 0.5, dtype=np.float64),
        # Suspicious TFT is TFT (state 0 maps to C anyway under our
        # all-cooperate initial history, so plain TFT covers the classic).
        # Tit-for-two-tats: defect only after two consecutive opponent Ds.
        "TF2T": None,  # filled below; needs two rounds of history
    }


def _tf2t(space: StateSpace) -> np.ndarray:
    if space.memory < 2:
        raise StrategyError("TF2T needs memory >= 2 (it inspects two rounds)")
    table = np.zeros(space.n_states, dtype=np.float64)
    for s in range(space.n_states):
        opp_last = s & 1
        opp_prev = (s >> 2) & 1
        table[s] = 1.0 if (opp_last and opp_prev) else 0.0
    return table


#: Names accepted by :func:`named_strategy`.
NAMED_STRATEGIES = ("ALLC", "ALLD", "TFT", "WSLS", "GRIM", "GTFT", "RANDOM", "TF2T")


def named_strategy(name: str, memory: int = 1) -> Strategy:
    """Build a classic strategy by name at the requested memory depth.

    Supported names: ``ALLC``, ``ALLD``, ``TFT``, ``WSLS``, ``GRIM``,
    ``GTFT`` (mixed), ``RANDOM`` (mixed), ``TF2T`` (memory >= 2).

    Examples
    --------
    >>> named_strategy("WSLS").moves_string()
    '[0110]'
    >>> named_strategy("WSLS").paper_table5_string()   # paper Table V order
    '[0101]'
    """
    space = StateSpace(memory)
    key = name.upper()
    builders = _builders()
    if key == "TF2T":
        table = _tf2t(space)
    elif key in builders and builders[key] is not None:
        table = builders[key](space)
    else:
        raise StrategyError(f"unknown named strategy {name!r}; choose from {NAMED_STRATEGIES}")
    return Strategy(space, table, name=key)
