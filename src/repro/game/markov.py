"""Exact expected payoffs for (possibly mixed, possibly noisy) IPD pairs.

A pair of memory-*n* strategies induces a Markov chain on the ``4**n`` game
states: from state ``s`` player A defects with probability ``tableA[s]`` and
player B with probability ``tableB[opponent_view(s)]``, and the four
possible joint moves each lead to a successor state.  Propagating the state
distribution for the fixed 200 rounds gives each player's *expected* total
payoff exactly — no sampling noise.

This is the classical analytical treatment (Nowak & Sigmund's memory-one
studies work in exactly this chain); here it is vectorised over G pairs at
once and doubles as the ``fitness_mode="expected"`` evaluator of the
population dynamics.  Execution errors fold in exactly: a move intended
with defection probability p is executed as defection with probability
``p(1-ε) + (1-p)ε``.

Cost is Θ(rounds x G x 4**n); it is the right tool for memory ≤ 3 and
small batches, while sampled play (:mod:`repro.game.vector_engine`) covers
the rest.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GameError
from repro.game.engine import DEFAULT_ROUNDS
from repro.game.noise import NO_NOISE, NoiseModel
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.states import StateSpace
from repro.game.vector_engine import as_table_matrix

__all__ = ["expected_pair_payoffs", "effective_defect_probs", "stationary_cooperation"]


def effective_defect_probs(table: np.ndarray, noise: NoiseModel) -> np.ndarray:
    """Fold execution errors into per-state defection probabilities."""
    probs = np.asarray(table, dtype=np.float64)
    if noise.is_noiseless:
        return probs
    eps = noise.rate
    return probs * (1.0 - 2.0 * eps) + eps


def expected_pair_payoffs(
    space: StateSpace,
    tables: np.ndarray,
    ia: np.ndarray,
    ib: np.ndarray,
    payoff: PayoffMatrix = PAPER_PAYOFFS,
    rounds: int = DEFAULT_ROUNDS,
    noise: NoiseModel = NO_NOISE,
) -> tuple[np.ndarray, np.ndarray]:
    """Expected total payoffs for each requested pair over ``rounds`` rounds.

    Parameters mirror :meth:`repro.game.vector_engine.VectorEngine.play`;
    the strategy matrix may be pure (then this returns the deterministic
    outcome exactly) or mixed.

    Returns
    -------
    (expected_a, expected_b):
        Float arrays, one entry per pair.
    """
    mat = as_table_matrix(space, tables).astype(np.float64, copy=False)
    mat = effective_defect_probs(mat, noise)
    ia = np.asarray(ia, dtype=np.intp)
    ib = np.asarray(ib, dtype=np.intp)
    if ia.shape != ib.shape or ia.ndim != 1:
        raise GameError(f"ia/ib must be equal-length 1-D arrays, got {ia.shape}, {ib.shape}")
    if rounds <= 0:
        raise GameError(f"rounds must be positive, got {rounds}")
    n_pairs = ia.size
    n_states = space.n_states
    if n_pairs == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy()

    states = np.arange(n_states)
    opp_view = space.opponent_view_array(states)
    # Per-pair, per-state defection probabilities for each player.
    p_a = mat[ia]                      # (G, n_states), A's view indexes directly
    p_b = mat[ib][:, opp_view]         # B sees the mirrored state

    # Joint-move probabilities per state: order (CC, CD, DC, DD) as
    # (A's move << 1 | B's move).
    q_cc = (1 - p_a) * (1 - p_b)
    q_cd = (1 - p_a) * p_b
    q_dc = p_a * (1 - p_b)
    q_dd = p_a * p_b
    move_probs = np.stack([q_cc, q_cd, q_dc, q_dd], axis=2)  # (G, n_states, 4)

    pay = payoff.table
    pay_a = np.array([pay[0, 0], pay[0, 1], pay[1, 0], pay[1, 1]])
    pay_b = np.array([pay[0, 0], pay[1, 0], pay[0, 1], pay[1, 1]])
    # Expected per-round payoff conditional on being in each state: (G, n_states)
    r_a = move_probs @ pay_a
    r_b = move_probs @ pay_b

    # Successor state of (state s, joint move m): push from A's perspective.
    succ = np.empty((n_states, 4), dtype=np.intp)
    for m in range(4):
        succ[:, m] = ((states << 2) | m) & space.mask

    dist = np.zeros((n_pairs, n_states), dtype=np.float64)
    dist[:, space.initial_state] = 1.0
    exp_a = np.zeros(n_pairs, dtype=np.float64)
    exp_b = np.zeros(n_pairs, dtype=np.float64)

    flat_succ = succ.reshape(-1)  # (n_states * 4,)
    for _ in range(rounds):
        exp_a += np.einsum("gs,gs->g", dist, r_a)
        exp_b += np.einsum("gs,gs->g", dist, r_b)
        flux = dist[:, :, None] * move_probs  # (G, n_states, 4)
        new_dist = np.zeros_like(dist)
        np.add.at(new_dist, (slice(None), flat_succ), flux.reshape(n_pairs, -1))
        dist = new_dist

    return exp_a, exp_b


def stationary_cooperation(
    space: StateSpace,
    table_a: np.ndarray,
    table_b: np.ndarray,
    rounds: int = DEFAULT_ROUNDS,
    noise: NoiseModel = NO_NOISE,
) -> float:
    """Average cooperation probability of player A over the game's rounds.

    Useful for checking classic results (e.g. two WSLS players under noise
    re-establish cooperation, two TFT players do not).
    """
    mat = np.vstack([np.asarray(table_a, dtype=np.float64), np.asarray(table_b, dtype=np.float64)])
    mat = effective_defect_probs(as_table_matrix(space, mat).astype(np.float64), noise)
    states = np.arange(space.n_states)
    opp_view = space.opponent_view_array(states)
    p_a = mat[0]
    p_b = mat[1][opp_view]

    q = np.stack([(1 - p_a) * (1 - p_b), (1 - p_a) * p_b, p_a * (1 - p_b), p_a * p_b], axis=1)
    succ = np.empty((space.n_states, 4), dtype=np.intp)
    for m in range(4):
        succ[:, m] = ((states << 2) | m) & space.mask

    dist = np.zeros(space.n_states)
    dist[space.initial_state] = 1.0
    coop = 0.0
    for _ in range(rounds):
        coop += float(dist @ (1.0 - p_a))
        flux = dist[:, None] * q
        new_dist = np.zeros_like(dist)
        np.add.at(new_dist, succ.reshape(-1), flux.reshape(-1))
        dist = new_dist
    return coop / rounds
