"""Prisoner's Dilemma payoff matrices (paper Table I).

The paper uses ``f[R, S, T, P] = [3, 0, 4, 1]``: mutual cooperation pays the
*Reward* R to both, mutual defection the *Punishment* P, and a mixed round
pays the *Temptation* T to the defector and the *Sucker's payoff* S to the
cooperator.  A payoff matrix is a Prisoner's Dilemma when ``T > R > P > S``;
the classic *iterated* PD additionally wants ``2R > T + S`` so that mutual
cooperation beats alternating exploitation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PayoffError

__all__ = ["PayoffMatrix", "PAPER_PAYOFFS", "AXELROD_PAYOFFS", "DONATION_GAME"]


@dataclass(frozen=True)
class PayoffMatrix:
    """Two-player symmetric PD payoffs.

    Parameters
    ----------
    reward, sucker, temptation, punishment:
        The R, S, T, P values in the paper's ``f[R,S,T,P]`` order.
    require_dilemma:
        When true (default), reject matrices violating ``T > R > P > S``.
    require_iterated:
        When true, additionally require ``2R > T + S``.  The paper's values
        satisfy it; it is optional so users can explore degenerate games.

    Attributes
    ----------
    table:
        ``table[my_move, opp_move]`` is *my* payoff for that round, with the
        0=C / 1=D encoding: ``table = [[R, S], [T, P]]``.
    """

    reward: float = 3.0
    sucker: float = 0.0
    temptation: float = 4.0
    punishment: float = 1.0
    require_dilemma: bool = True
    require_iterated: bool = False
    table: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        r, s, t, p = (
            float(self.reward),
            float(self.sucker),
            float(self.temptation),
            float(self.punishment),
        )
        if not all(np.isfinite(v) for v in (r, s, t, p)):
            raise PayoffError(f"payoffs must be finite, got R={r} S={s} T={t} P={p}")
        if self.require_dilemma and not (t > r > p > s):
            raise PayoffError(
                f"not a Prisoner's Dilemma: need T > R > P > S, got T={t} R={r} P={p} S={s}"
            )
        if self.require_iterated and not (2 * r > t + s):
            raise PayoffError(f"iterated-PD condition 2R > T+S violated: 2*{r} <= {t}+{s}")
        tab = np.array([[r, s], [t, p]], dtype=np.float64)
        tab.setflags(write=False)
        object.__setattr__(self, "table", tab)

    @classmethod
    def from_fRSTP(cls, values: tuple[float, float, float, float], **kw: object) -> "PayoffMatrix":
        """Build from the paper's ``f[R, S, T, P]`` vector."""
        r, s, t, p = values
        return cls(reward=r, sucker=s, temptation=t, punishment=p, **kw)  # type: ignore[arg-type]

    def payoff(self, my_move: int, opp_move: int) -> float:
        """My payoff for one round given both (0=C / 1=D) moves."""
        return float(self.table[int(my_move), int(opp_move)])

    def round_payoffs(self, move_a: int, move_b: int) -> tuple[float, float]:
        """Both players' payoffs for one round: ``(payoff_a, payoff_b)``."""
        return (
            float(self.table[int(move_a), int(move_b)]),
            float(self.table[int(move_b), int(move_a)]),
        )

    def as_fRSTP(self) -> tuple[float, float, float, float]:
        """Return ``(R, S, T, P)`` in the paper's order."""
        return (self.reward, self.sucker, self.temptation, self.punishment)

    def is_iterated_pd(self) -> bool:
        """True when ``2R > T + S`` also holds."""
        return 2 * self.reward > self.temptation + self.sucker

    def render(self) -> str:
        """Render the 2x2 matrix like the paper's Table I."""
        r, s, t, p = self.as_fRSTP()
        lines = [
            "            Opponent",
            "Agent       C          D",
            f"C       R={r:g},R={r:g}   S={s:g},T={t:g}",
            f"D       T={t:g},S={s:g}   P={p:g},P={p:g}",
        ]
        return "\n".join(lines)


#: The payoff values used throughout the paper: f[R,S,T,P] = [3, 0, 4, 1].
PAPER_PAYOFFS = PayoffMatrix(reward=3, sucker=0, temptation=4, punishment=1)

#: Axelrod's tournament values, f[R,S,T,P] = [3, 0, 5, 1].
AXELROD_PAYOFFS = PayoffMatrix(reward=3, sucker=0, temptation=5, punishment=1)


def DONATION_GAME(benefit: float = 2.0, cost: float = 1.0) -> PayoffMatrix:
    """The donation game: cooperation pays ``cost`` to give the opponent ``benefit``.

    Requires ``benefit > cost > 0``; yields R=b-c, S=-c, T=b, P=0.
    """
    if not benefit > cost > 0:
        raise PayoffError(f"donation game needs benefit > cost > 0, got b={benefit} c={cost}")
    return PayoffMatrix(
        reward=benefit - cost, sucker=-cost, temptation=benefit, punishment=0.0
    )
