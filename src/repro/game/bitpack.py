"""Bit-packed storage for pure strategy tables.

A pure memory-*n* strategy is a table of ``4**n`` moves, each 0 (C) or 1
(D).  For memory-six that is 4,096 moves; stored one-byte-per-move it costs
4 KiB, bit-packed it costs 512 bytes — an 8x saving that matters because
every rank keeps the strategy of *every* SSet in the population (the paper's
per-node memory budget is what capped it at memory-six on Blue Gene/L's
512 MB nodes).  The packed form is also what travels over the (virtual) MPI
wire on strategy updates and mutations.

Packing uses little-endian bit order: table entry ``i`` lives in bit
``i % 64`` of 64-bit word ``i // 64``, so packed words compare equal iff the
tables are equal, and word-wise XOR + popcount gives Hamming distance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StrategyError

__all__ = [
    "words_needed",
    "pack_table",
    "unpack_table",
    "get_move",
    "set_move",
    "count_defections",
    "hamming",
    "random_packed",
    "packed_nbytes",
    "to_hex",
    "from_hex",
]


def words_needed(n_states: int) -> int:
    """Number of 64-bit words needed to hold ``n_states`` one-bit moves."""
    if n_states <= 0:
        raise StrategyError(f"n_states must be positive, got {n_states}")
    return (n_states + 63) // 64


def packed_nbytes(n_states: int) -> int:
    """Bytes used by the packed representation of an ``n_states`` table."""
    return 8 * words_needed(n_states)


def pack_table(table: np.ndarray) -> np.ndarray:
    """Pack a 0/1 move table into a little-endian uint64 word array.

    Parameters
    ----------
    table:
        1-D array of 0/1 values (any integer or bool dtype).

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of length ``words_needed(len(table))``; bits beyond
        ``len(table)`` are zero.
    """
    arr = np.asarray(table)
    if arr.ndim != 1:
        raise StrategyError(f"strategy table must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise StrategyError("strategy table must be non-empty")
    as_u8 = arr.astype(np.uint8, copy=False)
    if not np.all((as_u8 == 0) | (as_u8 == 1)) or (
        np.issubdtype(arr.dtype, np.floating) and not np.array_equal(arr, as_u8)
    ):
        raise StrategyError("pure strategy table entries must all be 0 or 1")
    nwords = words_needed(arr.size)
    packed_bytes = np.packbits(as_u8, bitorder="little")
    padded = np.zeros(8 * nwords, dtype=np.uint8)
    padded[: packed_bytes.size] = packed_bytes
    return padded.view("<u8").copy()


def unpack_table(words: np.ndarray, n_states: int) -> np.ndarray:
    """Inverse of :func:`pack_table`: recover the uint8 0/1 move table."""
    w = np.ascontiguousarray(words, dtype=np.uint64)
    if w.ndim != 1:
        raise StrategyError(f"packed words must be 1-D, got shape {w.shape}")
    if w.size != words_needed(n_states):
        raise StrategyError(
            f"packed length {w.size} does not match n_states={n_states}"
            f" (expected {words_needed(n_states)} words)"
        )
    bits = np.unpackbits(w.view(np.uint8), bitorder="little")
    return bits[:n_states].copy()


def get_move(words: np.ndarray, state: int) -> int:
    """Read the move for ``state`` from a packed table."""
    return int((int(words[state >> 6]) >> (state & 63)) & 1)


def set_move(words: np.ndarray, state: int, move: int) -> None:
    """Write ``move`` (0/1) for ``state`` into a packed table, in place."""
    if move not in (0, 1):
        raise StrategyError(f"move must be 0 or 1, got {move}")
    word = int(words[state >> 6])
    bit = 1 << (state & 63)
    words[state >> 6] = np.uint64((word | bit) if move else (word & ~bit))


def count_defections(words: np.ndarray, n_states: int) -> int:
    """Number of states whose prescribed move is D (bit set)."""
    w = np.asarray(words, dtype=np.uint64)
    bits = np.unpackbits(w.view(np.uint8), bitorder="little")[:n_states]
    return int(bits.sum())


def hamming(a: np.ndarray, b: np.ndarray, n_states: int) -> int:
    """Hamming distance between two packed tables of the same state count."""
    wa = np.asarray(a, dtype=np.uint64)
    wb = np.asarray(b, dtype=np.uint64)
    if wa.shape != wb.shape:
        raise StrategyError(f"packed shapes differ: {wa.shape} vs {wb.shape}")
    x = np.bitwise_xor(wa, wb)
    bits = np.unpackbits(x.view(np.uint8), bitorder="little")[:n_states]
    return int(bits.sum())


def random_packed(n_states: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a uniformly random packed pure strategy over ``n_states`` states.

    Bits beyond ``n_states`` are cleared so equal strategies always compare
    equal word-for-word.
    """
    nwords = words_needed(n_states)
    words = rng.integers(0, np.iinfo(np.uint64).max, size=nwords, dtype=np.uint64, endpoint=True)
    excess = 64 * nwords - n_states
    if excess:
        words[-1] &= np.uint64((1 << (64 - excess)) - 1)
    return words


def to_hex(words: np.ndarray) -> str:
    """Render a packed table as a hex string (word 0 first, LSB-first bits)."""
    return "".join(f"{int(w):016x}" for w in np.asarray(words, dtype=np.uint64))


def from_hex(text: str) -> np.ndarray:
    """Parse the output of :func:`to_hex` back into a packed word array."""
    if len(text) % 16 != 0 or not text:
        raise StrategyError(f"hex strategy text length must be a multiple of 16, got {len(text)}")
    vals = [int(text[i : i + 16], 16) for i in range(0, len(text), 16)]
    return np.array(vals, dtype=np.uint64)
