"""Scalar reference engine for the two-player Iterated Prisoner's Dilemma.

This is the readable, obviously-correct implementation of the paper's
``IPD(myStrat, oppStrat)`` pseudocode (§IV-C), with one algorithmic upgrade:
instead of re-identifying the current state each round by searching the
global ``states`` table (the paper's bottleneck — see
:mod:`repro.game.lookup_engine` for that faithful variant), the state index
is carried incrementally in O(1) per round.  Both produce identical games;
the test suite cross-checks them.

The production path for whole tournaments is the vectorised
:mod:`repro.game.vector_engine`; this module is the ground truth it is
validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GameError
from repro.game.noise import NO_NOISE, NoiseModel
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.strategy import Strategy
from repro.obs.tracer import get_tracer

__all__ = ["GameResult", "play_ipd", "DEFAULT_ROUNDS"]

#: Rounds per generation used throughout the paper (§V-C, after [34]).
DEFAULT_ROUNDS = 200


@dataclass(frozen=True)
class GameResult:
    """Outcome of one Iterated Prisoner's Dilemma between two strategies.

    Attributes
    ----------
    fitness_a, fitness_b:
        Total payoff accumulated by each player over all rounds.
    rounds:
        Number of rounds played.
    moves_a, moves_b:
        Per-round moves (only recorded when requested; otherwise empty).
    """

    fitness_a: float
    fitness_b: float
    rounds: int
    moves_a: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.uint8))
    moves_b: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.uint8))

    @property
    def mean_payoff_a(self) -> float:
        """Player A's average per-round payoff."""
        return self.fitness_a / self.rounds

    @property
    def mean_payoff_b(self) -> float:
        """Player B's average per-round payoff."""
        return self.fitness_b / self.rounds

    def cooperation_fraction_a(self) -> float:
        """Fraction of rounds in which A cooperated (requires recorded moves)."""
        if self.moves_a.size == 0:
            raise GameError("moves were not recorded; pass record_moves=True")
        return float(1.0 - self.moves_a.mean())

    def cooperation_fraction_b(self) -> float:
        """Fraction of rounds in which B cooperated (requires recorded moves)."""
        if self.moves_b.size == 0:
            raise GameError("moves were not recorded; pass record_moves=True")
        return float(1.0 - self.moves_b.mean())


def play_ipd(
    strat_a: Strategy,
    strat_b: Strategy,
    payoff: PayoffMatrix = PAPER_PAYOFFS,
    rounds: int = DEFAULT_ROUNDS,
    noise: NoiseModel = NO_NOISE,
    rng: np.random.Generator | None = None,
    record_moves: bool = False,
) -> GameResult:
    """Play one Iterated Prisoner's Dilemma between two strategies.

    Parameters
    ----------
    strat_a, strat_b:
        The two strategies.  They must share a memory depth (the paper's
        populations are homogeneous in memory).
    payoff:
        Payoff matrix; defaults to the paper's f[R,S,T,P] = [3,0,4,1].
    rounds:
        Rounds per game; the paper fixes 200.
    noise:
        Execution-error model applied independently to both players' moves.
    rng:
        Random generator, required when either strategy is mixed or noise is
        active.  Deterministic pure noiseless games need no randomness.
    record_moves:
        When true, the per-round move sequences are kept on the result.

    Returns
    -------
    GameResult

    Notes
    -----
    Both players start from the all-cooperate fictitious history (state 0),
    matching the paper's zero-initialised ``current_view``.  Moves are
    simultaneous within a round: both players read their state, choose,
    then both histories advance.
    """
    if strat_a.space != strat_b.space:
        raise GameError(
            f"strategies disagree on memory: {strat_a.space} vs {strat_b.space}"
        )
    if rounds <= 0:
        raise GameError(f"rounds must be positive, got {rounds}")
    stochastic = not (strat_a.is_pure and strat_b.is_pure and noise.is_noiseless)
    if stochastic and rng is None:
        raise GameError("mixed strategies or noise require an rng")

    tracer = get_tracer()
    trace_t0 = tracer.now() if tracer.enabled else 0.0
    space = strat_a.space
    table_a = strat_a.table
    table_b = strat_b.table
    pay = payoff.table
    state_a = space.initial_state
    state_b = space.initial_state

    fitness_a = 0.0
    fitness_b = 0.0
    rec_a = np.empty(rounds, dtype=np.uint8) if record_moves else None
    rec_b = np.empty(rounds, dtype=np.uint8) if record_moves else None

    for r in range(rounds):
        if strat_a.is_pure:
            move_a = int(table_a[state_a])
        else:
            move_a = int(rng.random() < table_a[state_a])  # type: ignore[union-attr]
        if strat_b.is_pure:
            move_b = int(table_b[state_b])
        else:
            move_b = int(rng.random() < table_b[state_b])  # type: ignore[union-attr]
        if not noise.is_noiseless:
            move_a = noise.apply(move_a, rng)  # type: ignore[arg-type]
            move_b = noise.apply(move_b, rng)  # type: ignore[arg-type]

        fitness_a += pay[move_a, move_b]
        fitness_b += pay[move_b, move_a]
        if record_moves:
            rec_a[r] = move_a  # type: ignore[index]
            rec_b[r] = move_b  # type: ignore[index]

        state_a = space.push(state_a, move_a, move_b)
        state_b = space.push(state_b, move_b, move_a)

    if tracer.enabled:
        tracer.complete(
            "play_ipd", cat="game", ts=trace_t0, dur=tracer.now() - trace_t0,
            args={"rounds": rounds},
        )
    return GameResult(
        fitness_a=fitness_a,
        fitness_b=fitness_b,
        rounds=rounds,
        moves_a=rec_a if record_moves else np.empty(0, dtype=np.uint8),
        moves_b=rec_b if record_moves else np.empty(0, dtype=np.uint8),
    )
