"""Game-dynamics substrate: payoffs, memory-*n* state spaces, strategies, engines.

This subpackage implements everything the paper's *game dynamics* layer needs:

* :mod:`repro.game.moves` — the Cooperate/Defect move alphabet.
* :mod:`repro.game.payoff` — Prisoner's Dilemma payoff matrices (Table I).
* :mod:`repro.game.states` — memory-*n* state spaces (Tables II, V).
* :mod:`repro.game.bitpack` — bit-packed pure-strategy storage.
* :mod:`repro.game.strategy` — pure and mixed strategies, named classics.
* :mod:`repro.game.strategy_space` — enumeration/counting (Tables III, IV).
* :mod:`repro.game.noise` — execution-error model (§III-E).
* :mod:`repro.game.engine` — scalar reference IPD engine.
* :mod:`repro.game.lookup_engine` — paper-faithful linear state-search engine.
* :mod:`repro.game.vector_engine` — vectorised many-pair tournament engine.
* :mod:`repro.game.batch_engine` — bit-packed batched kernel (NumPy/numba).
* :mod:`repro.game.fitness_cache` — memoised pair fitness for deterministic play.
* :mod:`repro.game.markov` — exact expected payoffs via the joint-state chain.
* :mod:`repro.game.tournament` — Axelrod-style round-robin tournaments.
* :mod:`repro.game.zd` — Press-Dyson zero-determinant strategies.
"""

from repro.game.moves import Move, COOPERATE, DEFECT
from repro.game.payoff import PayoffMatrix, PAPER_PAYOFFS, AXELROD_PAYOFFS
from repro.game.states import StateSpace
from repro.game.strategy import Strategy, named_strategy, NAMED_STRATEGIES
from repro.game.strategy_space import StrategySpace
from repro.game.engine import play_ipd, GameResult
from repro.game.vector_engine import VectorEngine
from repro.game.batch_engine import BatchEngine, make_engine
from repro.game.fitness_cache import FitnessCache
from repro.game.tournament import Tournament, TournamentResult
from repro.game.zd import extortionate, generous, zd_strategy

__all__ = [
    "Move",
    "COOPERATE",
    "DEFECT",
    "PayoffMatrix",
    "PAPER_PAYOFFS",
    "AXELROD_PAYOFFS",
    "StateSpace",
    "Strategy",
    "named_strategy",
    "NAMED_STRATEGIES",
    "StrategySpace",
    "play_ipd",
    "GameResult",
    "VectorEngine",
    "BatchEngine",
    "make_engine",
    "FitnessCache",
    "Tournament",
    "TournamentResult",
    "extortionate",
    "generous",
    "zd_strategy",
]
