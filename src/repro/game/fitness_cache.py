"""Memoised pair fitness for deterministic games.

For pure strategies without execution errors, the outcome of an IPD depends
only on the two strategy tables — and in the paper's population dynamics a
strategy survives many generations while learning spreads popular strategies
across many SSets.  Most matchups therefore repeat, both within a generation
(duplicated strategies) and across generations (unchanged pairs).  Caching
per-pair fitness turns the per-generation cost from
Θ(games x rounds) into Θ(new pairs x rounds) plus a hash lookup per game.

The cache is only consulted for deterministic play; stochastic games (mixed
strategies or noise) always re-run, because their outcome is a random
variable, not a value.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.errors import GameError
from repro.game.vector_engine import VectorEngine, as_table_matrix

__all__ = ["FitnessCache", "strategy_row_digest"]


def strategy_row_digest(row: np.ndarray) -> bytes:
    """Stable 16-byte identity for one strategy table row."""
    h = hashlib.blake2b(digest_size=16)
    h.update(row.dtype.str.encode())
    h.update(np.ascontiguousarray(row).tobytes())
    return h.digest()


class FitnessCache:
    """LRU cache of deterministic pair fitness keyed by strategy digests.

    A cached payoff is only valid for the game parameters it was computed
    under, so the cache *pins itself* to the first engine it plays through
    (:meth:`VectorEngine.fingerprint`: memory depth, payoff matrix, rounds,
    noise) and raises on any attempt to reuse it with a differently
    configured engine.  :meth:`clear` unpins along with dropping the data.

    The fingerprint deliberately identifies game *parameters*, not the
    engine class: :class:`~repro.game.batch_engine.BatchEngine` (either
    kernel) shares fingerprints with an equally-parameterised
    :class:`VectorEngine` and produces bit-identical fitness, so a cache
    can be warmed by one engine and served through another — or a run can
    switch engines between checkpoints — without invalidation.

    Parameters
    ----------
    maxsize:
        Maximum number of unordered pairs retained; oldest-used entries are
        evicted first.  ``None`` means unbounded.
    """

    def __init__(self, maxsize: int | None = 1_000_000) -> None:
        if maxsize is not None and maxsize <= 0:
            raise GameError(f"maxsize must be positive or None, got {maxsize}")
        self.maxsize = maxsize
        self._store: OrderedDict[tuple[bytes, bytes], tuple[float, float]] = OrderedDict()
        self._engine_fingerprint: bytes | None = None
        self.hits = 0
        self.misses = 0
        self.pending_served = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all cached pairs, reset statistics, unpin the engine."""
        self._store.clear()
        self._engine_fingerprint = None
        self.hits = 0
        self.misses = 0
        self.pending_served = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requested games that did not need fresh play.

        Counts both true cache hits and games served from a duplicate pair
        played earlier in the same batch (``pending_served``); ``misses``
        is then exactly the number of games actually played.
        """
        served = self.hits + self.pending_served
        total = served + self.misses
        return served / total if total else 0.0

    def _check_engine(self, engine: VectorEngine) -> None:
        """Pin to the first engine's configuration; reject any other."""
        fingerprint = engine.fingerprint()
        if self._engine_fingerprint is None:
            self._engine_fingerprint = fingerprint
        elif fingerprint != self._engine_fingerprint:
            raise GameError(
                "this FitnessCache is pinned to a different engine configuration"
                " (memory/payoff/rounds/noise); use a separate cache per engine"
                " or clear() this one"
            )

    # -- raw access -----------------------------------------------------------

    def lookup(self, key_a: bytes, key_b: bytes) -> tuple[float, float] | None:
        """Return ``(fitness_a, fitness_b)`` for the oriented pair, or None.

        Storage is unordered — ``(a, b)`` and ``(b, a)`` share an entry with
        the payoffs swapped on the way out.
        """
        if key_a <= key_b:
            k, swap = (key_a, key_b), False
        else:
            k, swap = (key_b, key_a), True
        hit = self._store.get(k)
        if hit is None:
            self.misses += 1
            return None
        self._store.move_to_end(k)
        self.hits += 1
        return (hit[1], hit[0]) if swap else hit

    def store(self, key_a: bytes, key_b: bytes, fitness_a: float, fitness_b: float) -> None:
        """Record the oriented pair's payoffs (stored unordered)."""
        if key_a <= key_b:
            k, val = (key_a, key_b), (fitness_a, fitness_b)
        else:
            k, val = (key_b, key_a), (fitness_b, fitness_a)
        self._store[k] = val
        self._store.move_to_end(k)
        if self.maxsize is not None and len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    # -- batch play through the cache -------------------------------------------

    def play_pairs(
        self,
        engine: VectorEngine,
        tables: np.ndarray,
        ia: np.ndarray,
        ib: np.ndarray,
        digests: list[bytes] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Play the requested games, reusing cached outcomes where possible.

        Parameters
        ----------
        engine:
            A noiseless :class:`~repro.game.vector_engine.VectorEngine`.
            The first call pins the cache to this engine's
            :meth:`~repro.game.vector_engine.VectorEngine.fingerprint`;
            later calls with a differently configured engine raise
            :class:`~repro.errors.GameError`.
        tables:
            Pure (integer) strategy matrix.
        ia, ib:
            Pair index vectors, as for :meth:`VectorEngine.play`.
        digests:
            Optional precomputed ``strategy_row_digest`` per matrix row; pass
            when calling repeatedly with the same matrix.

        Returns
        -------
        (fitness_a, fitness_b):
            Per-game payoffs, identical to an uncached
            :meth:`VectorEngine.play`.
        """
        mat = as_table_matrix(engine.space, tables)
        if mat.dtype != np.uint8:
            raise GameError("the fitness cache only applies to pure strategies")
        if not engine.noise.is_noiseless:
            raise GameError("the fitness cache only applies to noiseless play")
        self._check_engine(engine)
        ia = np.asarray(ia, dtype=np.intp)
        ib = np.asarray(ib, dtype=np.intp)
        if digests is None:
            digests = [strategy_row_digest(mat[i]) for i in range(mat.shape[0])]
        n_games = ia.size
        fit_a = np.empty(n_games, dtype=np.float64)
        fit_b = np.empty(n_games, dtype=np.float64)

        miss_idx: list[int] = []
        # Avoid replaying duplicate missing pairs within the same batch.
        pending: dict[tuple[bytes, bytes], list[tuple[int, bool]]] = {}
        for g in range(n_games):
            ka, kb = digests[ia[g]], digests[ib[g]]
            cached = self.lookup(ka, kb)
            if cached is not None:
                fit_a[g], fit_b[g] = cached
                continue
            key = (ka, kb) if ka <= kb else (kb, ka)
            swapped = ka > kb
            slot = pending.get(key)
            if slot is None:
                pending[key] = [(g, swapped)]
                miss_idx.append(g)
            else:
                # Duplicate of a pair already queued in this batch: it will
                # be served from that single game, so it is not a miss.
                self.misses -= 1
                self.pending_served += 1
                slot.append((g, swapped))

        if miss_idx:
            miss = np.asarray(miss_idx, dtype=np.intp)
            res = engine.play(mat, ia[miss], ib[miss])
            for pos, g in enumerate(miss):
                ka, kb = digests[ia[g]], digests[ib[g]]
                fa, fb = float(res.fitness_a[pos]), float(res.fitness_b[pos])
                self.store(ka, kb, fa, fb)
                key = (ka, kb) if ka <= kb else (kb, ka)
                canonical = (fa, fb) if ka <= kb else (fb, fa)
                for game, swapped in pending[key]:
                    fit_a[game], fit_b[game] = (
                        (canonical[1], canonical[0]) if swapped else canonical
                    )
        return fit_a, fit_b

    def __repr__(self) -> str:
        return (
            f"FitnessCache(size={len(self)}, maxsize={self.maxsize},"
            f" hits={self.hits}, misses={self.misses},"
            f" pending_served={self.pending_served})"
        )
