"""Paper-faithful IPD engine with per-round linear state search.

The paper's pseudocode (§IV-C) keeps a ``current_view`` array — the agent's
perspective of the last *n* rounds — and each round calls ``find_state``,
which searches the globally defined ``states`` table for the row matching
the view.  §VI-B-1 attributes the steep runtime growth with memory steps to
exactly this search: "The increase in runtime actually comes from
identifying this state."

We implement that algorithm verbatim so that (a) results can be
cross-checked against the O(1)-per-round incremental engine in
:mod:`repro.game.engine`, and (b) the cost difference can be measured — the
ablation bench ``benchmarks/test_ablation_state_lookup.py`` regenerates the
paper's Fig. 4 runtime shape from it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GameError, StateSpaceError
from repro.game.engine import DEFAULT_ROUNDS, GameResult
from repro.game.noise import NO_NOISE, NoiseModel
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.states import StateSpace
from repro.game.strategy import Strategy
from repro.obs.tracer import get_tracer

__all__ = ["StatesTable", "build_states_table", "find_state", "play_ipd_lookup"]


@dataclass(frozen=True)
class StatesTable:
    """The explicit global ``states`` array of the paper.

    ``rows[s, k, 0]`` / ``rows[s, k, 1]`` are the agent's / opponent's moves
    ``k`` rounds ago in state ``s`` (``k = 0`` is the most recent round).
    This is the structure the paper must keep in every node's memory, whose
    footprint — ``4**n * n * 2`` entries — is what capped Blue Gene/L runs
    at memory-six (§VI-B-1).
    """

    space: StateSpace
    rows: np.ndarray

    @property
    def nbytes(self) -> int:
        """Memory footprint of the table (what the paper stores per node)."""
        return int(self.rows.nbytes)


def build_states_table(space: StateSpace) -> StatesTable:
    """Materialise all ``4**n`` state descriptions for linear searching."""
    if space.memory == 0:
        raise StateSpaceError("the lookup engine needs memory >= 1")
    rows = np.empty((space.n_states, space.memory, 2), dtype=np.uint8)
    for s in space.iter_states():
        for k, (my, opp) in enumerate(space.rounds(s)):
            rows[s, k, 0] = my
            rows[s, k, 1] = opp
    rows.setflags(write=False)
    return StatesTable(space=space, rows=rows)


def find_state(table: StatesTable, current_view: np.ndarray) -> int:
    """The paper's ``find_state``: scan the states table for the matching row.

    The scan is vectorised (one pass of element-compares over the whole
    table) but remains Θ(``4**n``) work per call — the cost structure the
    paper measures.  Returns the state index.
    """
    matches = (table.rows == current_view).all(axis=(1, 2))
    idx = int(np.argmax(matches))
    if not matches[idx]:
        raise StateSpaceError(f"current_view {current_view.tolist()} matches no state")
    return idx


def play_ipd_lookup(
    strat_a: Strategy,
    strat_b: Strategy,
    payoff: PayoffMatrix = PAPER_PAYOFFS,
    rounds: int = DEFAULT_ROUNDS,
    noise: NoiseModel = NO_NOISE,
    rng: np.random.Generator | None = None,
    states_table: StatesTable | None = None,
) -> GameResult:
    """Play one IPD exactly as the paper's pseudocode does.

    Maintains per-player ``current_view`` histories and re-identifies the
    state each round by linear search.  Produces games identical to
    :func:`repro.game.engine.play_ipd` (the tests assert this) at
    Θ(``rounds * 4**n``) cost instead of Θ(``rounds``).

    Parameters are as in :func:`repro.game.engine.play_ipd`; ``states_table``
    may be passed to reuse a prebuilt table across games, mirroring the
    paper's global initialisation step.
    """
    if strat_a.space != strat_b.space:
        raise GameError(f"strategies disagree on memory: {strat_a.space} vs {strat_b.space}")
    if rounds <= 0:
        raise GameError(f"rounds must be positive, got {rounds}")
    stochastic = not (strat_a.is_pure and strat_b.is_pure and noise.is_noiseless)
    if stochastic and rng is None:
        raise GameError("mixed strategies or noise require an rng")

    space = strat_a.space
    table = states_table if states_table is not None else build_states_table(space)
    if table.space != space:
        raise GameError("states_table was built for a different memory depth")
    tracer = get_tracer()
    trace_t0 = tracer.now() if tracer.enabled else 0.0

    pay = payoff.table
    n = space.memory
    # current_view[k] = (my move, opp move) k rounds ago; zero-filled like the paper.
    view_a = np.zeros((n, 2), dtype=np.uint8)
    view_b = np.zeros((n, 2), dtype=np.uint8)

    fitness_a = 0.0
    fitness_b = 0.0
    for _ in range(rounds):
        state_a = find_state(table, view_a)
        state_b = find_state(table, view_b)
        if strat_a.is_pure:
            move_a = int(strat_a.table[state_a])
        else:
            move_a = int(rng.random() < strat_a.table[state_a])  # type: ignore[union-attr]
        if strat_b.is_pure:
            move_b = int(strat_b.table[state_b])
        else:
            move_b = int(rng.random() < strat_b.table[state_b])  # type: ignore[union-attr]
        if not noise.is_noiseless:
            move_a = noise.apply(move_a, rng)  # type: ignore[arg-type]
            move_b = noise.apply(move_b, rng)  # type: ignore[arg-type]

        fitness_a += pay[move_a, move_b]
        fitness_b += pay[move_b, move_a]

        # Shift histories one round into the past and record the new round.
        view_a[1:] = view_a[:-1]
        view_a[0, 0], view_a[0, 1] = move_a, move_b
        view_b[1:] = view_b[:-1]
        view_b[0, 0], view_b[0, 1] = move_b, move_a

    if tracer.enabled:
        tracer.complete(
            "play_ipd_lookup", cat="game", ts=trace_t0, dur=tracer.now() - trace_t0,
            args={"rounds": rounds, "memory": space.memory},
        )
    return GameResult(fitness_a=fitness_a, fitness_b=fitness_b, rounds=rounds)
