"""Logging helpers.

All modules log through the ``repro`` logger hierarchy.  Library code never
configures handlers (that is the application's job); :func:`enable_console`
is a convenience for examples and experiment drivers.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["get_logger", "enable_console", "timed"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("perf.des")`` returns the ``repro.perf.des`` logger; with no
    argument the package root logger is returned.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + ".") or name == _ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console(level: int = logging.INFO) -> logging.Logger:
    """Attach a console handler to the package root logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        logger.addHandler(handler)
    return logger


@contextmanager
def timed(label: str, logger: logging.Logger | None = None) -> Iterator[dict]:
    """Context manager measuring wall-clock time of a block.

    Yields a dict whose ``"seconds"`` entry is filled in on exit, and logs
    the elapsed time at DEBUG level.
    """
    log = logger or get_logger()
    record: dict = {"label": label, "seconds": None}
    start = time.perf_counter()
    try:
        yield record
    finally:
        record["seconds"] = time.perf_counter() - start
        log.debug("%s took %.6f s", label, record["seconds"])
