"""Run-summary CLI for exported traces.

Renders a trace file written by
:func:`repro.obs.export.write_chrome_trace` back into a terminal summary::

    python -m repro.obs.report trace.json
    python -m repro.obs.report trace.json --generations 20 --per-rank

The report covers: per-rank track inventory (event and span counts, busy
time), a per-generation timing/traffic table (wall window, messages and
bytes, phase breakdown), and the embedded metrics registry (absorbed
network counters, run gauges).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Any, Iterable, Sequence

__all__ = ["main", "render_report"]


def _slices(trace: dict[str, Any]) -> list[dict[str, Any]]:
    return [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]


def _rank_names(trace: dict[str, Any]) -> dict[int, str]:
    names: dict[int, str] = {}
    for e in trace.get("traceEvents", []):
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            names[int(e.get("tid", 0))] = e["args"]["name"]
    return names


def _generation_windows(slices: Iterable[dict[str, Any]]) -> dict[int, tuple[float, float]]:
    windows: dict[int, tuple[float, float]] = {}
    for e in slices:
        if e.get("name") != "generation":
            continue
        gen = (e.get("args") or {}).get("gen")
        if gen is None:
            continue
        lo, hi = e["ts"], e["ts"] + e.get("dur", 0.0)
        if gen in windows:
            a, b = windows[gen]
            windows[gen] = (min(a, lo), max(b, hi))
        else:
            windows[gen] = (lo, hi)
    return windows


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "kB", "MB", "GB"):
        if abs(n) < 1024.0 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GB"


def _rank_table(slices: list[dict[str, Any]], names: dict[int, str]) -> list[str]:
    per_rank: dict[int, dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for e in slices:
        tid = int(e.get("tid", 0))
        per_rank[tid]["spans"] += 1
        per_rank[tid]["busy"] += e.get("dur", 0.0)
        if e.get("name") == "send":
            per_rank[tid]["sends"] += 1
            per_rank[tid]["bytes"] += (e.get("args") or {}).get("nbytes", 0)
    lines = ["track                      spans      busy[ms]     sends      sent"]
    for tid in sorted(per_rank):
        row = per_rank[tid]
        label = names.get(tid, f"tid {tid}")
        lines.append(
            f"{label:<24} {int(row['spans']):>7}  {row['busy'] / 1e3:>11.2f}"
            f"  {int(row['sends']):>8}  {_fmt_bytes(row['bytes']):>8}"
        )
    return lines


def _generation_table(
    slices: list[dict[str, Any]], max_generations: int
) -> list[str]:
    windows = _generation_windows(slices)
    if not windows:
        return ["(no generation spans in this trace)"]
    sends = [e for e in slices if e.get("name") == "send"]
    phase_by_gen: dict[int, dict[str, float]] = defaultdict(lambda: defaultdict(float))
    for e in slices:
        gen = (e.get("args") or {}).get("gen")
        if gen is not None and e.get("cat") == "phase" and e.get("name") != "generation":
            phase_by_gen[gen][e["name"]] += e.get("dur", 0.0)
    lines = ["gen         wall[ms]    msgs      bytes  phase time (summed across ranks)"]
    shown = sorted(windows)[:max_generations]
    for gen in shown:
        lo, hi = windows[gen]
        in_window = [e for e in sends if lo <= e["ts"] <= hi]
        nbytes = sum((e.get("args") or {}).get("nbytes", 0) for e in in_window)
        phases = " ".join(
            f"{name}={dur / 1e3:.2f}" for name, dur in sorted(phase_by_gen[gen].items())
        )
        lines.append(
            f"{gen:>4}  {(hi - lo) / 1e3:>10.3f}  {len(in_window):>6}"
            f"  {_fmt_bytes(nbytes):>9}  {phases}"
        )
    if len(windows) > len(shown):
        lines.append(f"... ({len(windows) - len(shown)} more generations; use --generations)")
    # Totals row over every generation window.
    total_msgs = len(sends)
    total_bytes = sum((e.get("args") or {}).get("nbytes", 0) for e in sends)
    first = min(lo for lo, _ in windows.values())
    last = max(hi for _, hi in windows.values())
    lines.append(
        f"total {len(windows)} generations over {(last - first) / 1e3:.2f} ms,"
        f" {total_msgs} messages, {_fmt_bytes(total_bytes)} on the wire"
    )
    return lines


def _metrics_section(trace: dict[str, Any]) -> list[str]:
    metrics = (
        trace.get("metadata", {}).get("repro", {}).get("metrics")
        if isinstance(trace.get("metadata"), dict)
        else None
    )
    if not metrics:
        return []
    lines = ["", "== metrics =="]
    gauges = metrics.get("gauges", {})
    if gauges:
        lines += [f"  {k:<40} {v:g}" for k, v in sorted(gauges.items())]
    counters = metrics.get("counters", {})
    all_calls = {
        k[len("mpi."):-len(".calls")]: v
        for k, v in counters.items()
        if k.startswith("mpi.") and k.endswith(".calls")
    }
    # The TCP transport's socket-layer tallies (connects, reconnects,
    # resent/deduplicated frames, injected link faults) live in the same
    # registry under mpi.net.*; report them apart from the message ops.
    net_calls = {k: v for k, v in all_calls.items() if k.startswith("net.")}
    mpi_calls = {k: v for k, v in all_calls.items() if not k.startswith("net.")}
    if mpi_calls:
        lines.append("  network operations (calls / bytes):")
        for op in sorted(mpi_calls):
            nbytes = counters.get(f"mpi.{op}.bytes", 0)
            lines.append(f"    {op:<22} {mpi_calls[op]:>10g}  {_fmt_bytes(nbytes):>10}")
    if net_calls:
        lines.append("  tcp transport (events / bytes):")
        for op in sorted(net_calls):
            nbytes = counters.get(f"mpi.{op}.bytes", 0)
            lines.append(f"    {op:<22} {net_calls[op]:>10g}  {_fmt_bytes(nbytes):>10}")
    return lines


def render_report(
    trace: dict[str, Any], *, max_generations: int = 30, per_rank: bool = False
) -> str:
    """Render the full text report for a loaded trace dict."""
    slices = _slices(trace)
    names = _rank_names(trace)
    lines = [
        f"trace: {len(trace.get('traceEvents', []))} events,"
        f" {len(slices)} spans, {len(names)} tracks",
        "",
        "== generations ==",
    ]
    lines += _generation_table(slices, max_generations)
    if per_rank:
        lines += ["", "== per-rank =="] + _rank_table(slices, names)
    lines += _metrics_section(trace)
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.obs.report``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a repro trace file (Perfetto/Chrome JSON).",
    )
    parser.add_argument("trace", help="trace JSON written by write_chrome_trace")
    parser.add_argument(
        "--generations", type=int, default=30,
        help="max generations to list individually (default 30)",
    )
    parser.add_argument(
        "--per-rank", action="store_true", help="include the per-rank track table"
    )
    opts = parser.parse_args(argv)
    try:
        trace = json.loads(open(opts.trace).read())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {opts.trace!r}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        print(f"error: {opts.trace!r} is not a Chrome trace-event JSON object",
              file=sys.stderr)
        return 2
    print(render_report(trace, max_generations=opts.generations, per_rank=opts.per_rank))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
