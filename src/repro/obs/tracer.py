"""Low-overhead span tracer: per-rank timelines of what a run actually did.

The paper's whole argument is a timeline story — game play overlapping the
Nature Agent's broadcasts and fitness gathers across the collective tree —
and the virtual runtime can *observe* that timeline exactly.  The
:class:`Tracer` records three things:

* **spans** — timed phases (``generation``, ``play``, ``bcast``,
  ``heartbeat``, ...) opened with the :meth:`Tracer.span` context manager or
  recorded after the fact with :meth:`Tracer.complete`;
* **instants** — point events (degradations, checkpoints written);
* **message flows** — every virtual-network transmission, stamped on both
  the sending and the receiving rank and joined by a flow id, so exporters
  can draw the arrow from ``send`` to ``recv``.

Every event carries two clocks: wall-clock microseconds since the tracer's
epoch (``ts`` — what Perfetto renders) and a process-wide logical sequence
number (``seq`` — a virtual clock that orders events even when wall-clock
resolution cannot).

Tracing is **off by default and near-zero cost when off**: the module-level
active tracer is the :data:`NULL_TRACER` singleton whose every method is a
no-op, and instrumented hot paths guard on ``tracer.enabled`` before
building any event.  Tracing never consumes random numbers and never alters
message contents, so a traced run reproduces the untraced trajectory bit
for bit (the tests assert it).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "activate",
]

#: Rank attributed to events recorded outside any SPMD rank thread.
DRIVER_RANK = -1

#: Width of one flow-id stripe handed out by :meth:`Tracer.reserve_flow_stripe`.
#: A stripe is private to one cooperating (per-process) tracer, so flow ids
#: minted in different processes can never collide after the merge.
FLOW_STRIDE = 1 << 40


@dataclass(frozen=True)
class TraceEvent:
    """One recorded trace event.

    Attributes
    ----------
    ph:
        Chrome-trace phase: ``"X"`` complete span, ``"i"`` instant,
        ``"s"``/``"f"`` message-flow start/finish.
    name, cat:
        Event name and category (``"phase"``, ``"mpi.p2p"``, ``"mpi.coll"``,
        ``"mpi.reliable"``, ``"game"``, ...).
    rank:
        Virtual MPI rank the event happened on (:data:`DRIVER_RANK` for the
        driver thread).
    ts:
        Wall-clock microseconds since the tracer's epoch.
    dur:
        Span duration in microseconds (complete events only).
    seq:
        Process-wide logical sequence number (the virtual clock).
    flow_id:
        Message-flow id joining a send event to its recv (0 = no flow).
    args:
        Extra payload rendered in trace viewers (generation, tag, bytes...).
    """

    ph: str
    name: str
    cat: str
    rank: int
    ts: float
    dur: float = 0.0
    seq: int = 0
    flow_id: int = 0
    args: dict[str, Any] | None = None


class _SpanHandle:
    """Context manager recording one complete span on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_rank", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, rank: int | None, args) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._rank = rank
        self._args = args

    def __enter__(self) -> "_SpanHandle":
        self._t0 = self._tracer.now()
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self._tracer
        tracer.complete(
            self._name,
            cat=self._cat,
            ts=self._t0,
            dur=tracer.now() - self._t0,
            rank=self._rank,
            args=self._args,
        )


class _NullSpan:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe event recorder with per-rank attribution.

    One tracer serves one run: the SPMD executor stamps each rank thread via
    :meth:`set_rank`, so instrumentation deep in the engines — which knows
    nothing about ranks — still lands on the right track.  Events from
    delayed-delivery timer threads fall back to the rank passed explicitly
    by the caller.

    The companion :attr:`metrics` registry aggregates scalar facts about the
    run (absorbed :class:`~repro.mpi.counters.CommCounters`, run gauges), so
    a single object answers "what did this run do".
    """

    enabled = True

    def __init__(self, *, epoch: float | None = None, flow_start: int = 1) -> None:
        # ``epoch`` lets cooperating tracers share one time origin: the
        # process-backend executor hands every rank process the parent
        # tracer's epoch (``perf_counter`` is system-wide on the supported
        # platforms), so merged events line up on one timeline.
        # ``flow_start`` offsets the flow-id space so per-process tracers
        # never collide (a flow id must join exactly one send to one recv).
        self._epoch = time.perf_counter() if epoch is None else float(epoch)
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self._seq = itertools.count()
        self._flow_seq = itertools.count(int(flow_start))
        self._next_stripe = 1
        self._tls = threading.local()
        self._rank_names: dict[int, str] = {}
        self.metrics = MetricsRegistry()

    @property
    def epoch(self) -> float:
        """This tracer's time origin (a ``time.perf_counter`` value)."""
        return self._epoch

    # -- clocks & rank attribution ------------------------------------------

    def now(self) -> float:
        """Wall-clock microseconds since this tracer's epoch."""
        return (time.perf_counter() - self._epoch) * 1e6

    def set_rank(self, rank: int) -> None:
        """Bind the calling thread to ``rank`` (used for implicit attribution)."""
        self._tls.rank = int(rank)

    def current_rank(self) -> int:
        """The calling thread's bound rank (:data:`DRIVER_RANK` if unbound)."""
        return getattr(self._tls, "rank", DRIVER_RANK)

    def name_rank(self, rank: int, name: str) -> None:
        """Label ``rank``'s track in exported traces (e.g. ``"nature (rank 0)"``)."""
        with self._lock:
            self._rank_names[int(rank)] = name

    def rank_names(self) -> dict[int, str]:
        """A copy of the rank-track labels."""
        with self._lock:
            return dict(self._rank_names)

    def new_flow_id(self) -> int:
        """Allocate a fresh message-flow id (joins a send to its recv)."""
        return next(self._flow_seq)

    def reserve_flow_stripe(self) -> int:
        """Reserve a disjoint flow-id stripe for a cooperating tracer.

        Each call returns the start of a fresh :data:`FLOW_STRIDE`-wide id
        range that is never handed out again for the lifetime of this
        tracer.  The process-backend executor reserves one stripe per rank
        process *per run*, so tracers created across multiple runs on the
        same parent tracer (restarted ranks, resumed simulations) cannot
        mint flow ids colliding with a surviving buffer's — nor with this
        tracer's own ids, which live in stripe 0.
        """
        with self._lock:
            start = self._next_stripe * FLOW_STRIDE + 1
            self._next_stripe += 1
            return start

    # -- recording ----------------------------------------------------------

    def _record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def complete(
        self,
        name: str,
        *,
        cat: str = "phase",
        ts: float,
        dur: float,
        rank: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a finished span ``[ts, ts + dur]`` (microseconds)."""
        self._record(
            TraceEvent(
                ph="X",
                name=name,
                cat=cat,
                rank=self.current_rank() if rank is None else int(rank),
                ts=ts,
                dur=dur,
                seq=next(self._seq),
                args=args,
            )
        )

    def span(
        self,
        name: str,
        *,
        cat: str = "phase",
        rank: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> _SpanHandle:
        """Context manager timing a block as one complete span."""
        return _SpanHandle(self, name, cat, rank, args)

    def instant(
        self,
        name: str,
        *,
        cat: str = "phase",
        rank: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a point event at the current time."""
        self._record(
            TraceEvent(
                ph="i",
                name=name,
                cat=cat,
                rank=self.current_rank() if rank is None else int(rank),
                ts=self.now(),
                seq=next(self._seq),
                args=args,
            )
        )

    def msg_send(
        self,
        rank: int,
        dest: int,
        tag: int,
        nbytes: int,
        *,
        ts: float,
        dur: float,
        flow_id: int,
    ) -> None:
        """Record one network transmission: a ``send`` span plus a flow start."""
        args = {"dest": dest, "tag": tag, "nbytes": nbytes}
        self._record(
            TraceEvent(
                ph="X", name="send", cat="mpi.p2p", rank=rank, ts=ts, dur=dur,
                seq=next(self._seq), flow_id=flow_id, args=args,
            )
        )
        if flow_id:
            self._record(
                TraceEvent(
                    ph="s", name="msg", cat="mpi.flow", rank=rank,
                    ts=ts + dur / 2.0, seq=next(self._seq), flow_id=flow_id,
                )
            )

    def msg_recv(
        self,
        rank: int,
        source: int,
        tag: int,
        nbytes: int,
        *,
        ts: float,
        dur: float,
        flow_id: int,
    ) -> None:
        """Record one matched receive: a ``recv`` span plus the flow finish."""
        args = {"source": source, "tag": tag, "nbytes": nbytes}
        self._record(
            TraceEvent(
                ph="X", name="recv", cat="mpi.p2p", rank=rank, ts=ts, dur=dur,
                seq=next(self._seq), flow_id=flow_id, args=args,
            )
        )
        if flow_id:
            self._record(
                TraceEvent(
                    ph="f", name="msg", cat="mpi.flow", rank=rank,
                    ts=ts + dur / 2.0, seq=next(self._seq), flow_id=flow_id,
                )
            )

    def absorb_events(self, events: list[TraceEvent]) -> None:
        """Merge events recorded by another tracer into this one.

        Used by the process-backend executor: each rank process records
        into its own tracer (sharing this tracer's epoch), ships its event
        list back, and the parent folds everything into one timeline.
        Sequence numbers are re-assigned here in timestamp order, so the
        merged virtual clock stays monotone with wall time; timestamps,
        ranks and flow ids are kept verbatim.
        """
        for event in sorted(events, key=lambda e: (e.ts, e.seq)):
            self._record(
                TraceEvent(
                    ph=event.ph,
                    name=event.name,
                    cat=event.cat,
                    rank=event.rank,
                    ts=event.ts,
                    dur=event.dur,
                    seq=next(self._seq),
                    flow_id=event.flow_id,
                    args=event.args,
                )
            )

    # -- reading back --------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """A consistent snapshot of all recorded events, in record order."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop all recorded events (the epoch and metrics are kept)."""
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(events={len(self)}, enabled={self.enabled})"


class NullTracer(Tracer):
    """The do-nothing tracer installed by default.

    Every recording method returns immediately; :meth:`span` hands back one
    shared no-op context manager, so instrumentation costs an attribute
    check and a call — nothing allocates, nothing locks.
    """

    enabled = False

    def _record(self, event: TraceEvent) -> None:  # pragma: no cover - never called
        pass

    def complete(self, name, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def span(self, name, **kwargs) -> _NullSpan:  # noqa: D102 - no-op
        return _NULL_SPAN

    def instant(self, name, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def msg_send(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def msg_recv(self, *args, **kwargs) -> None:  # noqa: D102 - no-op
        pass

    def new_flow_id(self) -> int:  # noqa: D102 - flows disabled
        return 0


#: The module-level no-op tracer; ``get_tracer()`` returns it unless a real
#: tracer has been activated.
NULL_TRACER = NullTracer()

_active: Tracer = NULL_TRACER
_active_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide active tracer (:data:`NULL_TRACER` when tracing is off)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the active tracer; returns the previous one.

    ``None`` restores the :data:`NULL_TRACER`.  Prefer the :func:`activate`
    context manager, which restores the previous tracer automatically.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = tracer if tracer is not None else NULL_TRACER
        return previous


@contextmanager
def activate(tracer: Tracer | None) -> Iterator[Tracer]:
    """Scoped activation: install ``tracer``, restore the predecessor on exit."""
    previous = set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)
