"""Trace exporters: Perfetto/Chrome JSON, plain-text timelines, metrics dumps.

Three views of one :class:`~repro.obs.tracer.Tracer`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON object format, loadable in `Perfetto
  <https://ui.perfetto.dev>`_ (or ``chrome://tracing``): one named track
  per rank, generation-phase spans nested under each other, and
  message-flow arrows joining every ``send`` to its ``recv``;
* :func:`timeline_text` — a per-generation plain-text timeline for
  terminals and logs;
* :func:`metrics_json` — the metrics registry alone, as plain JSON.

The Perfetto file also embeds the metrics registry and rank labels under
``metadata``, so a single artefact carries the whole run;
``python -m repro.obs.report trace.json`` renders it back into a summary.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Any

from repro.obs.tracer import DRIVER_RANK, TraceEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "load_trace",
    "timeline_text",
    "metrics_json",
]

#: Synthetic pid shared by every rank track (one "process" = one run).
TRACE_PID = 1

#: Minimum span width (µs) in exports, so sub-microsecond spans stay visible
#: and flow arrows have a slice to bind to.
_MIN_DUR_US = 0.5


def _rank_label(rank: int, names: dict[int, str]) -> str:
    if rank in names:
        return names[rank]
    return "driver" if rank == DRIVER_RANK else f"rank {rank}"


def _event_to_chrome(event: TraceEvent) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": event.name,
        "cat": event.cat,
        "ph": event.ph,
        "ts": round(event.ts, 3),
        "pid": TRACE_PID,
        # Perfetto sorts thread ids numerically; shift so the driver (-1)
        # gets a valid non-negative tid below rank 0's.
        "tid": event.rank + 1,
    }
    args = dict(event.args) if event.args else {}
    args["seq"] = event.seq
    out["args"] = args
    if event.ph == "X":
        out["dur"] = round(max(event.dur, _MIN_DUR_US), 3)
    if event.ph == "i":
        out["s"] = "t"  # thread-scoped instant
    if event.ph in ("s", "f"):
        out["id"] = event.flow_id
        if event.ph == "f":
            out["bp"] = "e"  # bind to the enclosing slice
    return out


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Render a tracer as a Chrome trace-event JSON object (Perfetto-loadable).

    Returns a dict with ``traceEvents`` (per-rank tracks, spans, instants
    and flow arrows), ``displayTimeUnit`` and a ``metadata`` section holding
    the metrics registry and rank labels.
    """
    events = tracer.events()
    names = tracer.rank_names()
    trace_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "args": {"name": "repro virtual MPI"},
        }
    ]
    for rank in sorted({e.rank for e in events}):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": rank + 1,
                "args": {"name": _rank_label(rank, names)},
            }
        )
        trace_events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": rank + 1,
                "args": {"sort_index": rank + 1},
            }
        )
    trace_events += [_event_to_chrome(e) for e in events]
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {
            "repro": {
                "metrics": tracer.metrics.to_dict(),
                "rank_names": {str(k): v for k, v in names.items()},
                "n_events": len(events),
            }
        },
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer)))
    return path


def load_trace(path: str | Path) -> dict[str, Any]:
    """Load a trace file written by :func:`write_chrome_trace`."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError(f"{path} is not a Chrome trace-event JSON object")
    return data


def metrics_json(tracer: Tracer) -> str:
    """The tracer's metrics registry as an indented JSON string."""
    return json.dumps(tracer.metrics.to_dict(), indent=2, sort_keys=True)


def _generation_windows(events: list[TraceEvent]) -> dict[int, tuple[float, float]]:
    """Map generation → the union time window of its ``generation`` spans."""
    windows: dict[int, tuple[float, float]] = {}
    for e in events:
        if e.ph != "X" or e.name != "generation" or not e.args:
            continue
        gen = e.args.get("gen")
        if gen is None:
            continue
        start, end = e.ts, e.ts + e.dur
        if gen in windows:
            lo, hi = windows[gen]
            windows[gen] = (min(lo, start), max(hi, end))
        else:
            windows[gen] = (start, end)
    return windows


def timeline_text(tracer: Tracer, max_generations: int = 50) -> str:
    """A per-generation plain-text timeline of phases and traffic.

    Each generation gets one line: its wall-clock window, the number of
    network messages and bytes sent inside it, and the phases observed
    (with total time per phase across ranks).  Long runs are elided to the
    first ``max_generations`` generations.
    """
    events = tracer.events()
    windows = _generation_windows(events)
    if not windows:
        return "(no generation spans recorded — was the run traced?)"
    sends = [e for e in events if e.ph == "X" and e.name == "send"]
    phase_events = [
        e
        for e in events
        if e.ph == "X" and e.cat == "phase" and e.args and e.args.get("gen") is not None
        and e.name != "generation"
    ]
    lines = ["generation  window [ms]           messages      bytes  phases"]
    shown = sorted(windows)[:max_generations]
    for gen in shown:
        lo, hi = windows[gen]
        in_window = [e for e in sends if lo <= e.ts <= hi]
        nbytes = sum((e.args or {}).get("nbytes", 0) for e in in_window)
        phases: dict[str, float] = defaultdict(float)
        for e in phase_events:
            if e.args.get("gen") == gen:
                phases[e.name] += e.dur
        phase_txt = " ".join(
            f"{name}={dur / 1e3:.2f}ms" for name, dur in sorted(phases.items())
        )
        lines.append(
            f"{gen:>10}  {lo / 1e3:>8.3f} → {hi / 1e3:>8.3f}  {len(in_window):>8}"
            f"  {nbytes:>9}  {phase_txt}"
        )
    if len(windows) > len(shown):
        lines.append(f"... ({len(windows) - len(shown)} more generations elided)")
    return "\n".join(lines)
