"""Metrics: counters, gauges and histograms for one run.

A :class:`MetricsRegistry` is the scalar half of the observability story —
where the tracer answers "when did it happen", the registry answers "how
much of it happened".  It absorbs the virtual network's
:class:`~repro.mpi.counters.CommCounters` snapshots (one ``mpi.<op>.*``
family per operation), carries run-level gauges (rank count, generations,
failures), and histograms of whatever durations the instrumentation feeds
it.  Everything serialises to plain JSON via :meth:`MetricsRegistry.to_dict`
and round-trips with :meth:`MetricsRegistry.from_dict`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (microseconds-friendly log scale).
DEFAULT_BUCKETS = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0,
)


@dataclass
class Counter:
    """A monotonically increasing tally."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


@dataclass
class Histogram:
    """A fixed-bucket distribution summary (count/sum/min/max + buckets).

    ``bounds`` are the inclusive upper edges of each bucket; observations
    above the last edge land in the implicit overflow bucket at the end of
    ``bucket_counts`` (which therefore has ``len(bounds) + 1`` entries).
    """

    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted, got {self.bounds}")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, edge in enumerate(self.bounds):
            if value <= edge:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Thread-safe name → metric store for one run.

    Metrics are created on first access (``counter("x").inc()``); names are
    dotted paths by convention (``mpi.send.bytes``, ``run.n_ranks``,
    ``phase.play.us``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access (create on first use) ---------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at zero if absent."""
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created at zero if absent."""
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, bounds: Iterable[float] | None = None) -> Histogram:
        """The histogram called ``name``, created with ``bounds`` if absent."""
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = Histogram(
                    bounds=DEFAULT_BUCKETS if bounds is None else tuple(bounds)
                )
                self._histograms[name] = found
            return found

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Shorthand for ``counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    # -- absorption ----------------------------------------------------------

    def absorb_comm_counters(self, snapshot: Mapping[str, object]) -> None:
        """Fold a :meth:`CommCounters.snapshot` into ``mpi.<op>.*`` counters.

        Each operation contributes ``mpi.<op>.calls``, ``.messages`` and
        ``.bytes``; repeated absorption accumulates (absorb each world once).
        """
        for op, tally in snapshot.items():
            self.inc(f"mpi.{op}.calls", tally.calls)  # type: ignore[attr-defined]
            self.inc(f"mpi.{op}.messages", tally.messages)  # type: ignore[attr-defined]
            self.inc(f"mpi.{op}.bytes", tally.bytes)  # type: ignore[attr-defined]

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form: counters, gauges and histogram summaries."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: {
                        "count": h.count,
                        "sum": h.total,
                        "min": h.min if h.count else None,
                        "max": h.max if h.count else None,
                        "mean": h.mean,
                        "bounds": list(h.bounds),
                        "bucket_counts": list(h.bucket_counts),
                    }
                    for k, h in sorted(self._histograms.items())
                },
            }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).inc(value)
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, summary in data.get("histograms", {}).items():
            hist = registry.histogram(name, bounds=summary.get("bounds"))
            hist.count = int(summary.get("count", 0))
            hist.total = float(summary.get("sum", 0.0))
            if summary.get("min") is not None:
                hist.min = float(summary["min"])
            if summary.get("max") is not None:
                hist.max = float(summary["max"])
            counts = summary.get("bucket_counts")
            if counts:
                hist.bucket_counts = [int(c) for c in counts]
        return registry

    def render(self) -> str:
        """Human-readable table of every metric, sorted by name."""
        data = self.to_dict()
        lines: list[str] = []
        if data["gauges"]:
            lines.append("gauges:")
            lines += [f"  {k:<40} {v:g}" for k, v in data["gauges"].items()]
        if data["counters"]:
            lines.append("counters:")
            lines += [f"  {k:<40} {v:g}" for k, v in data["counters"].items()]
        if data["histograms"]:
            lines.append("histograms:")
            for k, h in data["histograms"].items():
                lines.append(
                    f"  {k:<40} n={h['count']} mean={h['mean']:.3g}"
                    f" min={h['min'] if h['min'] is not None else '-'}"
                    f" max={h['max'] if h['max'] is not None else '-'}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)},"
                f" gauges={len(self._gauges)}, histograms={len(self._histograms)})"
            )
