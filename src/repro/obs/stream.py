"""Streamable event tap: follow a run's trace while it is still running.

The :class:`~repro.obs.tracer.Tracer` is a *recorder* — events pile up in
memory and are read back after the run.  A long-running service needs the
opposite: events flowing *out* as they happen, across process boundaries,
to subscribers that were not there when the run started.  Two pieces
provide that:

* :class:`EventTap` — a :class:`~repro.obs.tracer.Tracer` subclass that
  invokes subscriber callbacks on every recorded event, synchronously on
  the recording thread.  Taps compose with everything that accepts a
  tracer (``ParallelSimulation(trace=tap)``, ``SupervisedRun(trace=tap)``)
  and change nothing about what is recorded, so a tapped run stays
  bit-identical.
* :func:`jsonl_event_writer` / :func:`read_events` / :func:`follow_events`
  — a line-delimited JSON transport for tapped events: the writer appends
  one flushed JSON object per event (optionally filtered by name), readers
  parse a finished file, and :func:`follow_events` *tails* a file that is
  still being written — which is exactly how the run service's SSE
  endpoint watches a worker process's run from the outside.

The JSON form of an event is intentionally minimal and append-friendly:
``{"name", "ph", "cat", "rank", "ts", "args"}`` — enough to rebuild a
progress feed or a restart log, not a full Perfetto export (that stays
:mod:`repro.obs.export`'s job).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.obs.tracer import TraceEvent, Tracer

__all__ = [
    "EventTap",
    "event_to_dict",
    "jsonl_event_writer",
    "read_events",
    "follow_events",
]


def event_to_dict(event: TraceEvent) -> dict:
    """The JSON-safe form of one :class:`~repro.obs.tracer.TraceEvent`."""
    return {
        "name": event.name,
        "ph": event.ph,
        "cat": event.cat,
        "rank": event.rank,
        "ts": event.ts,
        "args": event.args or {},
    }


class EventTap(Tracer):
    """A tracer that pushes every recorded event to subscriber callbacks.

    Subscribers run synchronously on the recording thread, so they must be
    cheap and must not call back into the tracer; exceptions they raise are
    swallowed (a broken subscriber must not corrupt the run it watches).
    Everything else — recording, metrics, export — behaves exactly like the
    base :class:`~repro.obs.tracer.Tracer`.

    Parameters
    ----------
    subscribers:
        Initial callbacks, each invoked as ``callback(event)``.
    keep_events:
        When ``False``, recorded events are *not* accumulated in memory —
        the tap becomes pure pipe, which is what a service worker streaming
        a multi-hour run wants (the events file is the durable copy).
    """

    def __init__(
        self,
        subscribers: Iterable[Callable[[TraceEvent], None]] = (),
        *,
        keep_events: bool = True,
        epoch: float | None = None,
        flow_start: int = 1,
    ) -> None:
        super().__init__(epoch=epoch, flow_start=flow_start)
        self._subscribers: list[Callable[[TraceEvent], None]] = list(subscribers)
        self._keep_events = bool(keep_events)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Add ``callback`` to the fan-out (called for every future event)."""
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Remove ``callback`` (missing callbacks are ignored)."""
        with self._lock:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

    def _record(self, event: TraceEvent) -> None:
        if self._keep_events:
            super()._record(event)
        with self._lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(event)
            except Exception:  # noqa: BLE001 - a watcher must not kill the run
                pass


def jsonl_event_writer(
    path: str | Path,
    *,
    names: tuple[str, ...] | None = None,
    transform: Callable[[TraceEvent], dict | None] | None = None,
) -> Callable[[TraceEvent], None]:
    """A subscriber that appends events to ``path`` as line-delimited JSON.

    ``names`` keeps only the named events (``None`` keeps all);
    ``transform`` maps an event to the dict actually written (return
    ``None`` to drop it) — the run service uses it to distill raw trace
    events into progress records.  Each line is flushed so a tailing reader
    (:func:`follow_events`) sees it promptly, and written atomically enough
    for JSONL (one ``write`` call per line).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fh = open(path, "a", encoding="utf-8")

    def write(event: TraceEvent) -> None:
        if names is not None and event.name not in names:
            return
        payload = event_to_dict(event) if transform is None else transform(event)
        if payload is None:
            return
        fh.write(json.dumps(payload) + "\n")
        # flush, not fsync: a SIGKILLed writer's flushed lines survive in
        # the page cache for same-machine tailers, and per-event fsync
        # would tax the run being watched.
        fh.flush()

    write.close = fh.close  # type: ignore[attr-defined]
    return write


def read_events(path: str | Path) -> list[dict]:
    """Parse a finished JSONL event file (torn trailing lines are dropped).

    A writer killed mid-line (a chaos-killed worker, say) leaves a partial
    last record; readers skip anything that does not parse rather than
    refusing the whole file.
    """
    path = Path(path)
    if not path.exists():
        return []
    out: list[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return out


def follow_events(
    path: str | Path,
    *,
    poll: float = 0.05,
    stop: Callable[[], bool] | None = None,
    timeout: float | None = None,
) -> Iterator[dict]:
    """Tail a JSONL event file, yielding each record as it appears.

    The file may not exist yet (the worker has not started) — the follower
    waits for it.  Iteration ends when ``stop()`` returns true *and* every
    line already on disk has been yielded, or when ``timeout`` seconds pass
    with no new data and no stop signal (``None`` waits forever).  Partial
    trailing lines (a writer killed mid-record) are held back until the
    line completes, and never complete lines are dropped at stop.
    """
    path = Path(path)
    buffer = ""
    position = 0
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        grew = False
        if path.exists():
            with open(path, "r", encoding="utf-8") as fh:
                fh.seek(position)
                chunk = fh.read()
                position = fh.tell()
            if chunk:
                grew = True
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except json.JSONDecodeError:
                        continue
        if stop is not None and stop() and not grew:
            return
        if grew:
            deadline = None if timeout is None else time.monotonic() + timeout
        elif deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(poll)
