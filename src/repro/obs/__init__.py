"""Observability: per-rank tracing, metrics and trace exporters.

The paper's analysis is a timeline story — game play overlapping the Nature
Agent's broadcasts and fitness gathers — and this package makes that
timeline visible on the virtual runtime:

* :mod:`repro.obs.tracer` — :class:`Tracer` (thread-safe span/instant/flow
  recorder with per-rank attribution) and the :data:`NULL_TRACER` no-op
  default, so tracing is free when off.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters, gauges
  and histograms; absorbs :class:`~repro.mpi.counters.CommCounters`.
* :mod:`repro.obs.export` — Perfetto/Chrome trace JSON (per-rank tracks,
  send→recv flow arrows), plain-text timelines, metrics dumps.
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.json``
  renders a run summary from an exported trace.
* :mod:`repro.obs.stream` — :class:`EventTap` (a tracer that fans events
  out to live subscribers) plus a JSONL transport with a tailing reader,
  so the run service can stream a worker's progress over SSE.

Enable tracing on the runners: ``run_spmd(..., tracer=Tracer())`` or
``ParallelSimulation(..., trace=True)`` (the result then carries the tracer
as ``result.trace``).
"""

from repro.obs.export import (
    chrome_trace,
    load_trace,
    metrics_json,
    timeline_text,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.stream import (
    EventTap,
    event_to_dict,
    follow_events,
    jsonl_event_writer,
    read_events,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    activate,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "get_tracer",
    "set_tracer",
    "activate",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "load_trace",
    "timeline_text",
    "metrics_json",
    "EventTap",
    "event_to_dict",
    "jsonl_event_writer",
    "read_events",
    "follow_events",
]
