"""Journaled queue state: a per-store service journal with epoch fencing.

The :class:`~repro.service.queue.JobQueue` of PR 8 was pure in-memory
state: SIGKILL the service process and every queued job vanished, running
workers were orphaned, and ``status.json`` lied "running" forever.  Worse,
two queues pointed at the same store could double-dispatch the same run.
This module is the durability layer underneath the queue:

* :class:`QueueLease` — an ``os.replace``-claimed ownership record at
  ``<root>/.service/lease.json``.  Claiming bumps a monotonically
  increasing **epoch**; the claimant re-reads the file and only wins if its
  own token survived the replace, so two racing claimants always agree on
  exactly one current owner.  A superseded queue discovers its demotion at
  its next :meth:`QueueLease.check` — before any write lands — and raises
  :class:`~repro.errors.StaleLeaseError` (it is *fenced*).
* :class:`ServiceJournal` — an append-only ``<root>/.service/journal.jsonl``
  recording every job lifecycle transition (``submitted``, ``dispatched``,
  ``requeued``, ``preempted``, ``stalled``, ``terminal``, ``recovered``,
  ``reconciled``, ``drain``, ``fenced``) under the writing queue's epoch.
  Appends follow the same flush + torn-line-tolerant discipline as
  ``events.jsonl``; dispatch and terminal records are fsynced (``durable``)
  because they are the ones recovery reasons from.  Every append is fenced:
  the lease is checked first, so a stale queue's record never reaches the
  journal.

:func:`replay_journal` reads the journal back (torn trailing lines
skipped) and :func:`last_records` folds it into the newest record per run
— the starting point for :meth:`~repro.service.queue.JobQueue.recover`.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.errors import ServiceError, StaleLeaseError
from repro.io.runstore import RunKey, _append_line, _atomic_write_text
from repro.logging_util import get_logger
from repro.obs.stream import read_events

__all__ = [
    "SERVICE_DIR",
    "QueueLease",
    "ServiceJournal",
    "replay_journal",
    "last_records",
    "read_lease",
]

_LOG = get_logger("service.journal")

#: Store-level service state lives under this dotted directory, which every
#: tenant listing (``RunStore.list_tenants``) already skips.
SERVICE_DIR = ".service"

_LEASE_NAME = "lease.json"
_JOURNAL_NAME = "journal.jsonl"

#: Journal record types a queue may write (documentation; not enforced).
JOURNAL_TYPES = (
    "submitted",
    "dispatched",
    "requeued",
    "preempted",
    "stalled",
    "terminal",
    "recovered",
    "reconciled",
    "drain",
    "fenced",
    "released",
)


def _service_dir(root: str | Path) -> Path:
    return Path(root) / SERVICE_DIR


def lease_path(root: str | Path) -> Path:
    """Where the store's lease file lives (may not exist yet)."""
    return _service_dir(root) / _LEASE_NAME


def journal_path(root: str | Path) -> Path:
    """Where the store's service journal lives (may not exist yet)."""
    return _service_dir(root) / _JOURNAL_NAME


def read_lease(root: str | Path) -> dict | None:
    """The store's current lease record, or ``None`` (absent or torn)."""
    path = lease_path(root)
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return None


class QueueLease:
    """Exclusive ownership of one store's service state, epoch-numbered.

    The claim protocol is last-writer-wins with read-back verification:
    read the current epoch, atomically ``os.replace`` a record carrying
    ``epoch + 1`` and a unique owner token into place, then read the file
    back.  If the token read back is ours, we own the store; if another
    claimant replaced after us, we retry above *its* epoch.  Two queues can
    therefore never both believe they are the *current* owner for long: the
    loser's next :meth:`check` sees a foreign token and raises
    :class:`~repro.errors.StaleLeaseError`, fencing all its writes.

    The lease is advisory-but-checked: nothing prevents a rogue process
    from scribbling in the store, but every write path of a well-behaved
    queue goes through :meth:`check` first.
    """

    _CLAIM_ATTEMPTS = 32

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.epoch: int | None = None
        self._token: str | None = None

    @property
    def path(self) -> Path:
        return lease_path(self.root)

    def claim(self) -> int:
        """Claim the store, fencing any previous owner; returns our epoch."""
        _service_dir(self.root).mkdir(parents=True, exist_ok=True)
        token = f"{os.getpid()}.{os.urandom(6).hex()}"
        for _ in range(self._CLAIM_ATTEMPTS):
            current = read_lease(self.root)
            epoch = int(current.get("epoch", 0)) + 1 if current else 1
            _atomic_write_text(
                self.path,
                json.dumps(
                    {
                        "epoch": epoch,
                        "owner": token,
                        "pid": os.getpid(),
                        "claimed": time.time(),
                        "released": False,
                    },
                    indent=2,
                ),
            )
            readback = read_lease(self.root)
            if readback is not None and readback.get("owner") == token:
                self.epoch = epoch
                self._token = token
                _LOG.info("claimed store %s at epoch %d", self.root, epoch)
                return epoch
            # Another claimant replaced our record between write and read —
            # loop and claim above whatever epoch it took.
        raise ServiceError(
            f"could not claim the lease on {self.root} after"
            f" {self._CLAIM_ATTEMPTS} attempts (a claim storm?)"
        )

    def check(self) -> None:
        """Raise :class:`~repro.errors.StaleLeaseError` unless we still own
        the store.  Cheap (one small file read); called before every write."""
        if self._token is None:
            raise StaleLeaseError("this lease was never claimed")
        current = read_lease(self.root)
        if current is None or current.get("owner") != self._token:
            raise StaleLeaseError(
                f"queue epoch {self.epoch} on {self.root} has been fenced"
                f" (current epoch {None if current is None else current.get('epoch')})",
                epoch=self.epoch,
                current=None if current is None else current.get("epoch"),
            )

    @property
    def owned(self) -> bool:
        """Whether we still hold the lease (non-raising form of :meth:`check`)."""
        try:
            self.check()
        except StaleLeaseError:
            return False
        return True

    def release(self) -> None:
        """Mark a clean shutdown (only if we still own the lease).

        The epoch and owner stay in the record so a later claimant still
        counts upward; ``released: true`` tells recovery the previous queue
        exited deliberately rather than dying.
        """
        try:
            self.check()
        except StaleLeaseError:
            return  # a newer queue owns the store; nothing of ours to release
        record = read_lease(self.root) or {}
        record["released"] = True
        record["released_at"] = time.time()
        _atomic_write_text(self.path, json.dumps(record, indent=2))


class ServiceJournal:
    """The store's append-only lifecycle journal, fenced by a lease.

    Every record is one JSON line carrying at least ``type``, ``epoch``,
    ``tenant``, ``run_id`` and ``time``; transition-specific fields
    (``pid``, ``requeues``, ``reason``…) ride along.  ``durable`` records
    are fsynced (dispatch/terminal — the ones recovery reasons from);
    everything else follows ``events.jsonl``'s flush discipline, and
    readers tolerate a torn trailing line either way.
    """

    def __init__(self, root: str | Path, lease: QueueLease) -> None:
        self.root = Path(root)
        self.lease = lease

    @property
    def path(self) -> Path:
        return journal_path(self.root)

    def record(
        self,
        type: str,  # noqa: A002 - mirrors the record's key
        key: RunKey | None,
        *,
        durable: bool = False,
        **fields,
    ) -> dict:
        """Append one fenced transition record; returns the dict written.

        Raises :class:`~repro.errors.StaleLeaseError` (without writing)
        when a newer queue has claimed the store — the fence that makes a
        superseded queue harmless.
        """
        self.lease.check()
        record = {"type": type, "epoch": self.lease.epoch, "time": time.time()}
        if key is not None:
            record["tenant"] = key.tenant
            record["run_id"] = key.run_id
        record.update(fields)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _append_line(self.path, json.dumps(record), durable=durable)
        return record


def replay_journal(root: str | Path) -> list[dict]:
    """Every parseable journal record, oldest first (torn tails skipped)."""
    return read_events(journal_path(root))


def last_records(root: str | Path) -> dict[RunKey, dict]:
    """The newest journal record per run (records without a key skipped).

    Later records win regardless of epoch: the journal is append-only and
    fenced at write time, so file order *is* authority order.
    """
    out: dict[RunKey, dict] = {}
    for record in replay_journal(root):
        tenant, run_id = record.get("tenant"), record.get("run_id")
        if not tenant or not run_id:
            continue
        try:
            out[RunKey(tenant, run_id)] = record
        except Exception:  # noqa: BLE001 - a corrupt key must not kill replay
            continue
    return out
