"""Simulation as a service: queue, persist, stream and fetch runs by key.

The layers underneath already know how to *run* — the parallel runner is
bit-identical to the serial driver, the supervisor restarts it from
crash-consistent checkpoints, and a :class:`~repro.parallel.spec.RunSpec`
describes a whole run as one JSON value.  This package turns that into a
multi-tenant service:

* :mod:`repro.service.worker` — the child-process entry point: one process
  runs one supervised run from its stored spec, streaming progress into the
  run's event log and writing a digest-verified result.
* :mod:`repro.service.queue` — :class:`JobQueue`: a bounded worker-process
  pool with per-tenant quotas, fair-share ordering, preemption and
  requeue-from-checkpoint (an unexpectedly dead worker resumes where its
  last valid checkpoint left off).
* :mod:`repro.service.journal` — the durability layer: an epoch-numbered
  store lease (:class:`QueueLease` — exactly one queue owns a store; a
  superseded queue is fenced) and the append-only service journal every
  job lifecycle transition is recorded in.
* :mod:`repro.service.server` — :class:`RunService` (the in-process API)
  and a thin stdlib REST server with an SSE progress stream per run.
  Startup replays the journal (:meth:`JobQueue.recover`), so a service
  restarted on a SIGKILLed predecessor's store re-adopts its interrupted
  runs automatically; SIGTERM drains gracefully.
* :mod:`repro.service.client` — :class:`ServiceClient`, the urllib client
  the ``repro-serve`` CLI (:mod:`repro.service.cli`) is built on.
* :mod:`repro.service.fsck` — ``repro-store fsck``: offline store
  inspection and repair (torn records, orphaned runs, digest mismatches).

Everything durable lives in a :class:`~repro.io.runstore.RunStore`:
submit a spec under ``tenant/run_id`` today, fetch the same matrix by the
same key from a fresh process tomorrow — even if the service died in
between.
"""

from repro.service.client import ServiceClient
from repro.service.journal import QueueLease, ServiceJournal
from repro.service.queue import JobQueue, JobStatus, RecoveryReport
from repro.service.server import RunServer, RunService, serve

__all__ = [
    "JobQueue",
    "JobStatus",
    "QueueLease",
    "RecoveryReport",
    "RunServer",
    "RunService",
    "ServiceClient",
    "ServiceJournal",
    "serve",
]
