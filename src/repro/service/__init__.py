"""Simulation as a service: queue, persist, stream and fetch runs by key.

The layers underneath already know how to *run* — the parallel runner is
bit-identical to the serial driver, the supervisor restarts it from
crash-consistent checkpoints, and a :class:`~repro.parallel.spec.RunSpec`
describes a whole run as one JSON value.  This package turns that into a
multi-tenant service:

* :mod:`repro.service.worker` — the child-process entry point: one process
  runs one supervised run from its stored spec, streaming progress into the
  run's event log and writing a digest-verified result.
* :mod:`repro.service.queue` — :class:`JobQueue`: a bounded worker-process
  pool with per-tenant quotas, fair-share ordering, preemption and
  requeue-from-checkpoint (an unexpectedly dead worker resumes where its
  last valid checkpoint left off).
* :mod:`repro.service.server` — :class:`RunService` (the in-process API)
  and a thin stdlib REST server with an SSE progress stream per run.
* :mod:`repro.service.client` — :class:`ServiceClient`, the urllib client
  the ``repro-serve`` CLI (:mod:`repro.service.cli`) is built on.

Everything durable lives in a :class:`~repro.io.runstore.RunStore`:
submit a spec under ``tenant/run_id`` today, fetch the same matrix by the
same key from a fresh process tomorrow.
"""

from repro.service.queue import JobQueue, JobStatus
from repro.service.server import RunService, serve
from repro.service.client import ServiceClient

__all__ = ["JobQueue", "JobStatus", "RunService", "ServiceClient", "serve"]
