"""The job queue: many tenants, a bounded worker pool, fair-share order.

One :class:`JobQueue` schedules supervised runs across a pool of worker
*processes* (:mod:`repro.service.worker`), so a hung or chaos-killed run
can always be reclaimed with a kill.  Scheduling policy, all enforced by
one scheduler thread:

* **Quotas** — each tenant may hold at most ``quota`` active (queued or
  running) runs; :meth:`submit` raises :class:`~repro.errors.QuotaError`
  beyond that, at admission time, so a greedy tenant's overflow never even
  queues.
* **Fair share** — a free worker slot goes to the tenant with the fewest
  runs currently executing (ties to the tenant that was served longest
  ago), FIFO within a tenant.  A tenant submitting fifty runs cannot
  starve a tenant submitting one.
* **Preemption** — :meth:`preempt` kills a running worker and requeues the
  run; the relaunch resumes from the latest valid checkpoint (the
  supervisor's normal scan), and an explicit preemption never consumes the
  run's requeue budget.
* **Requeue on worker death** — a worker that dies *without* writing its
  outcome record (SIGKILL, OOM, a crashed interpreter) is relaunched up to
  :attr:`~repro.parallel.spec.FaultPolicy.max_requeues` times, then marked
  failed.  A worker that finishes — success or supervisor give-up — is
  terminal either way; a run that failed on its merits is not retried
  behind the tenant's back (:meth:`resume` retries it explicitly).

The queue owns ``status.json`` in the run store; workers own the outcome
and result (see :mod:`repro.service.worker`), so the two sides never race
on a file.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.errors import QuotaError, ServiceError, UnknownRunError
from repro.io.runstore import RunKey, RunStore
from repro.logging_util import get_logger
from repro.parallel.spec import RunSpec
from repro.service.worker import _child_entry

__all__ = ["JobQueue", "JobStatus", "Job"]

_LOG = get_logger("service.queue")

#: Lifecycle states a job moves through (terminal: ``done``, ``failed``).
_STATES = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time snapshot of one job, safe to hand across threads."""

    tenant: str
    run_id: str
    state: str
    generation: int
    requeues: int
    incarnations: int
    pid: int | None
    error: str | None
    name: str = ""

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "run_id": self.run_id,
            "state": self.state,
            "generation": self.generation,
            "requeues": self.requeues,
            "incarnations": self.incarnations,
            "pid": self.pid,
            "error": self.error,
            "name": self.name,
        }


@dataclass
class Job:
    """The queue's mutable record of one submitted run (lock-guarded)."""

    key: RunKey
    spec: RunSpec
    state: str = "queued"
    seq: int = 0
    proc: multiprocessing.process.BaseProcess | None = None
    requeues: int = 0
    incarnations: int = 0
    preempt_requested: bool = False
    error: str | None = None
    done_event: threading.Event = field(default_factory=threading.Event)


class JobQueue:
    """Schedule stored runs across a bounded pool of worker processes.

    Parameters
    ----------
    store:
        The :class:`~repro.io.runstore.RunStore` runs live in (specs in,
        results out).
    max_workers:
        Worker-process pool size — how many runs execute concurrently.
    quota:
        Default per-tenant cap on *active* (queued + running) runs.
    quotas:
        Per-tenant overrides of ``quota``.
    poll:
        Scheduler tick in seconds (reap + dispatch cadence).
    """

    def __init__(
        self,
        store: RunStore,
        *,
        max_workers: int = 2,
        quota: int = 4,
        quotas: dict[str, int] | None = None,
        poll: float = 0.05,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if quota < 1:
            raise ServiceError(f"quota must be >= 1, got {quota}")
        self.store = store
        self.max_workers = int(max_workers)
        self.default_quota = int(quota)
        self.quotas = dict(quotas or {})
        self._poll = float(poll)
        # fork keeps the worker entry (a module function) cheap to launch
        # and is what the process backend itself prefers; spawn is the
        # portable fallback.
        methods = multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self._lock = threading.Lock()
        self._jobs: dict[RunKey, Job] = {}
        self._seq = itertools.count()
        #: tenant -> dispatch tick of its most recent dispatch (fair-share tiebreak)
        self._last_served: dict[str, int] = {}
        self._closed = False
        self._wake = threading.Event()
        self._thread = threading.Thread(
            target=self._scheduler_loop, name="repro-service-scheduler", daemon=True
        )
        self._thread.start()

    # -- admission -----------------------------------------------------------

    def quota_for(self, tenant: str) -> int:
        """The tenant's active-run cap."""
        return self.quotas.get(tenant, self.default_quota)

    def _active_count(self, tenant: str) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.key.tenant == tenant and job.state in ("queued", "running")
        )

    def submit(self, tenant: str, run_id: str, spec: RunSpec) -> RunKey:
        """Admit a new run under ``tenant/run_id``.

        Raises :class:`~repro.errors.QuotaError` when the tenant is at its
        active-run cap (nothing is persisted), and
        :class:`~repro.errors.RunStoreError` when the key already exists —
        keys are write-once; use :meth:`resume` to re-drive an old key.
        """
        key = self.store.key(tenant, run_id)
        with self._lock:
            self._check_open()
            if key in self._jobs and self._jobs[key].state in ("queued", "running"):
                raise ServiceError(f"run {key} is already active in this queue")
            quota = self.quota_for(tenant)
            if self._active_count(tenant) >= quota:
                raise QuotaError(
                    f"tenant {tenant!r} is at its quota of {quota} active run(s);"
                    f" submit {key} again once one finishes"
                )
            self.store.create_run(key, spec)
            self._enqueue_locked(key, spec)
        self._wake.set()
        return key

    def resume(self, tenant: str, run_id: str) -> RunKey:
        """Re-drive a run that already exists in the store by its key.

        The relaunch picks up from the latest valid checkpoint; a run that
        already has a stored result is refused (it is finished — fetch it).
        Quota and fair-share apply exactly as for a fresh submission.
        """
        key = self.store.key(tenant, run_id)
        with self._lock:
            self._check_open()
            if not self.store.exists(key):
                raise UnknownRunError(f"no run {key} in the store")
            if key in self._jobs and self._jobs[key].state in ("queued", "running"):
                raise ServiceError(f"run {key} is already active in this queue")
            if self.store.has_result(key):
                raise ServiceError(f"run {key} already has a result; nothing to resume")
            quota = self.quota_for(tenant)
            if self._active_count(tenant) >= quota:
                raise QuotaError(
                    f"tenant {tenant!r} is at its quota of {quota} active run(s)"
                )
            spec = self.store.load_spec(key)
            # A stale failure record from the previous incarnation would be
            # mistaken for this relaunch's outcome at the next reap.
            (self.store.run_dir(key) / "outcome.json").unlink(missing_ok=True)
            self._enqueue_locked(key, spec)
        self._wake.set()
        return key

    def _enqueue_locked(self, key: RunKey, spec: RunSpec) -> None:
        job = Job(key=key, spec=spec, seq=next(self._seq))
        self._jobs[key] = job
        self.store.write_status(key, self._status_locked(job).to_dict())

    # -- control -------------------------------------------------------------

    def preempt(self, tenant: str, run_id: str) -> None:
        """Kick the run off its worker slot; it requeues and resumes later.

        A queued (not yet running) run is simply left queued.  Preemption
        is free: it never consumes the run's requeue budget.
        """
        key = self.store.key(tenant, run_id)
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                raise UnknownRunError(f"no active run {key} in this queue")
            if job.state == "running" and job.proc is not None and job.proc.pid:
                job.preempt_requested = True
                self._kill_locked(job)
        self._wake.set()

    def _kill_locked(self, job: Job) -> None:
        proc = job.proc
        if proc is None or not proc.is_alive():
            return
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, TypeError):
            pass

    def status(self, tenant: str, run_id: str) -> JobStatus:
        """The job's current state, live from the queue when it is active,
        reconstructed from the store otherwise (so a fresh queue can answer
        for runs finished by an earlier one)."""
        key = self.store.key(tenant, run_id)
        with self._lock:
            job = self._jobs.get(key)
            if job is not None:
                return self._status_locked(job)
        if not self.store.exists(key):
            raise UnknownRunError(f"no run {key} in the store")
        return self._status_from_store(key)

    def _status_locked(self, job: Job) -> JobStatus:
        return JobStatus(
            tenant=job.key.tenant,
            run_id=job.key.run_id,
            state=job.state,
            generation=self._last_generation(job.key),
            requeues=job.requeues,
            incarnations=job.incarnations,
            pid=job.proc.pid if job.proc is not None and job.proc.is_alive() else None,
            error=job.error,
            name=job.spec.name,
        )

    def _status_from_store(self, key: RunKey) -> JobStatus:
        outcome = self.store.read_outcome(key) or {}
        recorded = self.store.read_status(key) or {}
        state = outcome.get("state") or recorded.get("state") or "queued"
        return JobStatus(
            tenant=key.tenant,
            run_id=key.run_id,
            state=state,
            generation=self._last_generation(key),
            requeues=int(recorded.get("requeues", 0)),
            incarnations=int(recorded.get("incarnations", 0)),
            pid=None,
            error=outcome.get("error") or recorded.get("error"),
            name=str(recorded.get("name", "")),
        )

    def _last_generation(self, key: RunKey) -> int:
        return max(
            (
                e.get("generation", 0)
                for e in self.store.read_events(key)
                if e.get("type") == "progress"
            ),
            default=0,
        )

    def wait(self, tenant: str, run_id: str, timeout: float | None = None) -> JobStatus:
        """Block until the run reaches a terminal state; returns its status.

        Raises :class:`~repro.errors.ServiceError` if ``timeout`` elapses
        first.
        """
        key = self.store.key(tenant, run_id)
        with self._lock:
            job = self._jobs.get(key)
        if job is None:
            return self.status(tenant, run_id)
        if not job.done_event.wait(timeout):
            raise ServiceError(f"run {key} still {job.state} after {timeout:g} s")
        return self.status(tenant, run_id)

    def list_jobs(self, tenant: str | None = None) -> list[JobStatus]:
        """Snapshots of every job this queue knows, submission order."""
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.seq)
            return [
                self._status_locked(j)
                for j in jobs
                if tenant is None or j.key.tenant == tenant
            ]

    def close(self, *, kill: bool = True) -> None:
        """Stop the scheduler; ``kill`` (default) also reclaims live workers.

        Killed workers' runs stay resumable — their checkpoints and specs
        are in the store, so a later queue can :meth:`resume` them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if kill:
                for job in self._jobs.values():
                    if job.state == "running":
                        self._kill_locked(job)
        self._wake.set()
        self._thread.join(timeout=10.0)
        with self._lock:
            for job in self._jobs.values():
                if job.proc is not None:
                    job.proc.join(timeout=5.0)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("this JobQueue is closed")

    # -- the scheduler thread ------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            self._wake.wait(self._poll)
            self._wake.clear()
            with self._lock:
                self._reap_locked()
                if self._closed:
                    if not any(j.state == "running" for j in self._jobs.values()):
                        return
                    continue
                self._dispatch_locked()

    def _reap_locked(self) -> None:
        for job in self._jobs.values():
            if job.state != "running" or job.proc is None or job.proc.is_alive():
                continue
            job.proc.join()
            exitcode = job.proc.exitcode
            job.proc = None
            outcome = self.store.read_outcome(job.key)
            if outcome is not None:
                # The worker finished and said so — success or a supervisor
                # give-up, either way its word is terminal.
                job.state = "done" if outcome.get("state") == "done" else "failed"
                job.error = outcome.get("error")
            elif job.preempt_requested:
                job.preempt_requested = False
                job.state = "queued"
                _LOG.info("run %s preempted; requeued (free)", job.key)
            elif job.requeues < job.spec.fault.max_requeues:
                job.requeues += 1
                job.state = "queued"
                _LOG.warning(
                    "worker for %s died (exit %s) without an outcome;"
                    " requeue %d/%d from latest checkpoint",
                    job.key, exitcode, job.requeues, job.spec.fault.max_requeues,
                )
            else:
                job.state = "failed"
                job.error = (
                    f"worker died (exit {exitcode}) with no outcome and the"
                    f" requeue budget ({job.spec.fault.max_requeues}) spent"
                )
                _LOG.error("run %s failed: %s", job.key, job.error)
            self.store.write_status(job.key, self._status_locked(job).to_dict())
            if job.state in ("done", "failed"):
                job.done_event.set()

    def _dispatch_locked(self) -> None:
        while True:
            running = sum(1 for j in self._jobs.values() if j.state == "running")
            if running >= self.max_workers:
                return
            job = self._pick_locked()
            if job is None:
                return
            self._launch_locked(job)

    def _pick_locked(self) -> Job | None:
        """Fair share: fewest running wins, stalest tenant breaks ties,
        FIFO within the tenant."""
        queued = [j for j in self._jobs.values() if j.state == "queued"]
        if not queued:
            return None
        running_by_tenant: dict[str, int] = {}
        for j in self._jobs.values():
            if j.state == "running":
                running_by_tenant[j.key.tenant] = running_by_tenant.get(j.key.tenant, 0) + 1

        def rank(job: Job) -> tuple:
            tenant = job.key.tenant
            return (
                running_by_tenant.get(tenant, 0),
                self._last_served.get(tenant, -1),
                job.seq,
            )

        return min(queued, key=rank)

    def _launch_locked(self, job: Job) -> None:
        # A stale outcome from a prior incarnation (none should exist, but a
        # crashed queue could leave one) must not be read as this launch's.
        (self.store.run_dir(job.key) / "outcome.json").unlink(missing_ok=True)
        proc = self._mp.Process(
            target=_child_entry,
            args=(str(self.store.root), job.key.tenant, job.key.run_id),
            name=f"repro-worker-{job.key.tenant}-{job.key.run_id}",
            daemon=False,
        )
        proc.start()
        job.proc = proc
        job.state = "running"
        job.incarnations += 1
        self._last_served[job.key.tenant] = next(self._seq)
        self.store.write_status(job.key, self._status_locked(job).to_dict())
        _LOG.info(
            "dispatched %s (pid %s, incarnation %d)", job.key, proc.pid, job.incarnations
        )
