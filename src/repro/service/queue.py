"""The job queue: many tenants, a bounded worker pool, fair-share order.

One :class:`JobQueue` schedules supervised runs across a pool of worker
*processes* (:mod:`repro.service.worker`), so a hung or chaos-killed run
can always be reclaimed with a kill.  Scheduling policy, all enforced by
one scheduler thread:

* **Quotas** — each tenant may hold at most ``quota`` active (queued or
  running) runs; :meth:`submit` raises :class:`~repro.errors.QuotaError`
  beyond that, at admission time, so a greedy tenant's overflow never even
  queues.
* **Fair share** — a free worker slot goes to the tenant with the fewest
  runs currently executing (ties to the tenant that was served longest
  ago), FIFO within a tenant.  A tenant submitting fifty runs cannot
  starve a tenant submitting one.
* **Preemption** — :meth:`preempt` kills a running worker and requeues the
  run; the relaunch resumes from the latest valid checkpoint (the
  supervisor's normal scan), and an explicit preemption never consumes the
  run's requeue budget.
* **Requeue on worker death** — a worker that dies *without* writing its
  outcome record (SIGKILL, OOM, a crashed interpreter) is relaunched up to
  :attr:`~repro.parallel.spec.FaultPolicy.max_requeues` times, then marked
  failed.  A worker that finishes — success or supervisor give-up — is
  terminal either way; a run that failed on its merits is not retried
  behind the tenant's back (:meth:`resume` retries it explicitly).
* **Stall watchdog** — with :attr:`~repro.parallel.spec.FaultPolicy.stall_timeout`
  set, a running worker that reports no new generation for that long is
  killed and requeued (spending the budget), so a live-but-wedged worker
  cannot hold a pool slot forever.

The queue itself is **crash-safe**: construction claims an epoch-numbered
lease on the store (:class:`~repro.service.journal.QueueLease` — exactly
one queue owns a store at a time; a superseded queue is *fenced* and its
writes rejected), and every lifecycle transition is appended to the
store's service journal (:class:`~repro.service.journal.ServiceJournal`).
After a service crash, :meth:`recover` on a fresh queue replays the
journal against ``outcome.json``/``result.npz``/checkpoints: interrupted
runs are re-adopted and resume from their latest valid checkpoint
(bit-identically — the supervisor's normal machinery), finished runs get
their stale ``status.json`` reconciled, and orphaned worker processes of
the dead queue are killed before their runs are relaunched, so a run can
never be executed by two workers at once.

The queue owns ``status.json`` in the run store; workers own the outcome
and result (see :mod:`repro.service.worker`), so the two sides never race
on a file.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    DrainingError,
    QuotaError,
    RunStoreError,
    ServiceError,
    StaleLeaseError,
    UnknownRunError,
)
from repro.io.runstore import RunKey, RunStore
from repro.logging_util import get_logger
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.spec import RunSpec
from repro.service.journal import QueueLease, ServiceJournal, read_lease
from repro.service.worker import _child_entry

__all__ = ["JobQueue", "JobStatus", "Job", "RecoveryReport"]

_LOG = get_logger("service.queue")

#: Lifecycle states a job moves through (terminal: ``done``, ``failed``).
#: Store-side reconstruction adds ``orphaned`` for a run whose recorded
#: state says queued/running but which no live queue owns.
_STATES = ("queued", "running", "done", "failed", "orphaned")

_ACTIVE = ("queued", "running")


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time snapshot of one job, safe to hand across threads."""

    tenant: str
    run_id: str
    state: str
    generation: int
    requeues: int
    incarnations: int
    pid: int | None
    error: str | None
    name: str = ""

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "run_id": self.run_id,
            "state": self.state,
            "generation": self.generation,
            "requeues": self.requeues,
            "incarnations": self.incarnations,
            "pid": self.pid,
            "error": self.error,
            "name": self.name,
        }


@dataclass
class Job:
    """The queue's mutable record of one submitted run (lock-guarded)."""

    key: RunKey
    spec: RunSpec
    state: str = "queued"
    seq: int = 0
    proc: multiprocessing.process.BaseProcess | None = None
    requeues: int = 0
    incarnations: int = 0
    preempt_requested: bool = False
    drain_requested: bool = False
    stalled: bool = False
    last_progress_gen: int = 0
    last_progress_time: float = 0.0
    error: str | None = None
    done_event: threading.Event = field(default_factory=threading.Event)


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`JobQueue.recover` found and did on one store.

    Attributes
    ----------
    requeued:
        ``tenant/run_id`` strings re-adopted as queued (they resume from
        their latest valid checkpoint when dispatched).
    reconciled:
        Runs whose stale ``status.json`` said queued/running although their
        outcome or result proves them terminal — the record was rewritten.
    killed_orphans:
        PIDs of still-live worker processes belonging to a dead (or fenced)
        queue, SIGKILLed before their runs were re-adopted.
    healthy:
        Runs whose records already agreed with reality.
    """

    requeued: tuple[str, ...] = ()
    reconciled: tuple[str, ...] = ()
    killed_orphans: tuple[int, ...] = ()
    healthy: int = 0

    def to_dict(self) -> dict:
        return {
            "requeued": list(self.requeued),
            "reconciled": list(self.reconciled),
            "killed_orphans": list(self.killed_orphans),
            "healthy": self.healthy,
        }


class JobQueue:
    """Schedule stored runs across a bounded pool of worker processes.

    Construction claims the store's epoch lease — creating a second queue
    on the same store *fences* the first (its journal/status writes and
    dispatches are rejected with :class:`~repro.errors.StaleLeaseError`).

    Parameters
    ----------
    store:
        The :class:`~repro.io.runstore.RunStore` runs live in (specs in,
        results out).
    max_workers:
        Worker-process pool size — how many runs execute concurrently.
    quota:
        Default per-tenant cap on *active* (queued + running) runs.
    quotas:
        Per-tenant overrides of ``quota``.
    poll:
        Scheduler tick in seconds (reap + dispatch cadence).
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` receiving ``service.*``
        recovery/fence/stall counters and instants.
    """

    def __init__(
        self,
        store: RunStore,
        *,
        max_workers: int = 2,
        quota: int = 4,
        quotas: dict[str, int] | None = None,
        poll: float = 0.05,
        tracer: Tracer | None = None,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if quota < 1:
            raise ServiceError(f"quota must be >= 1, got {quota}")
        self.store = store
        self.max_workers = int(max_workers)
        self.default_quota = int(quota)
        self.quotas = dict(quotas or {})
        self._poll = float(poll)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # fork keeps the worker entry (a module function) cheap to launch
        # and is what the process backend itself prefers; spawn is the
        # portable fallback.
        methods = multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self._lock = threading.Lock()
        self._jobs: dict[RunKey, Job] = {}
        self._seq = itertools.count()
        #: tenant -> dispatch tick of its most recent dispatch (fair-share tiebreak)
        self._last_served: dict[str, int] = {}
        self._closed = False
        self._released = False
        self._draining = False
        self._fenced = False
        self._next_watchdog = 0.0
        self.lease = QueueLease(store.root)
        self.epoch = self.lease.claim()
        self.journal = ServiceJournal(store.root, self.lease)
        self._wake = threading.Event()
        self._thread = threading.Thread(
            target=self._scheduler_loop, name="repro-service-scheduler", daemon=True
        )
        self._thread.start()

    # -- admission -----------------------------------------------------------

    def quota_for(self, tenant: str) -> int:
        """The tenant's active-run cap."""
        return self.quotas.get(tenant, self.default_quota)

    def _active_count(self, tenant: str) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.key.tenant == tenant and job.state in _ACTIVE
        )

    def submit(self, tenant: str, run_id: str, spec: RunSpec) -> RunKey:
        """Admit a new run under ``tenant/run_id``.

        Raises :class:`~repro.errors.QuotaError` when the tenant is at its
        active-run cap (nothing is persisted),
        :class:`~repro.errors.RunStoreError` when the key already exists —
        keys are write-once; use :meth:`resume` to re-drive an old key —
        :class:`~repro.errors.DrainingError` while the queue drains, and
        :class:`~repro.errors.StaleLeaseError` when a newer queue has
        claimed the store.
        """
        key = self.store.key(tenant, run_id)
        with self._lock:
            self._check_admitting_locked()
            if key in self._jobs and self._jobs[key].state in _ACTIVE:
                raise ServiceError(f"run {key} is already active in this queue")
            quota = self.quota_for(tenant)
            if self._active_count(tenant) >= quota:
                raise QuotaError(
                    f"tenant {tenant!r} is at its quota of {quota} active run(s);"
                    f" submit {key} again once one finishes"
                )
            self.store.create_run(key, spec)
            self._enqueue_locked(key, spec)
            self._journal_locked("submitted", key, name=spec.name)
        self._wake.set()
        return key

    def resume(self, tenant: str, run_id: str) -> RunKey:
        """Re-drive a run that already exists in the store by its key.

        The relaunch picks up from the latest valid checkpoint; a run that
        already has a stored result is refused (it is finished — fetch it).
        Quota and fair-share apply exactly as for a fresh submission.
        """
        key = self.store.key(tenant, run_id)
        with self._lock:
            self._check_admitting_locked()
            if not self.store.exists(key):
                raise UnknownRunError(f"no run {key} in the store")
            if key in self._jobs and self._jobs[key].state in _ACTIVE:
                raise ServiceError(f"run {key} is already active in this queue")
            if self.store.has_result(key):
                raise ServiceError(f"run {key} already has a result; nothing to resume")
            quota = self.quota_for(tenant)
            if self._active_count(tenant) >= quota:
                raise QuotaError(
                    f"tenant {tenant!r} is at its quota of {quota} active run(s)"
                )
            spec = self.store.load_spec(key)
            # A stale failure record from the previous incarnation would be
            # mistaken for this relaunch's outcome at the next reap.
            (self.store.run_dir(key) / "outcome.json").unlink(missing_ok=True)
            self._enqueue_locked(key, spec)
            self._journal_locked("submitted", key, name=spec.name, reason="resume")
        self._wake.set()
        return key

    def _enqueue_locked(self, key: RunKey, spec: RunSpec) -> None:
        job = Job(key=key, spec=spec, seq=next(self._seq))
        self._jobs[key] = job
        self._persist_status_locked(job)

    # -- startup recovery ----------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Replay the store against its records; adopt every orphaned run.

        For each stored run not already active in this queue:

        * a run with an ``outcome.json`` or ``result.npz`` is terminal —
          a stale ``status.json`` still claiming queued/running is
          rewritten (*reconciled*);
        * a run whose record says queued/running (or that has a spec but no
          record at all — admission crashed mid-write) is *orphaned*: any
          still-live worker process from the dead queue is SIGKILLed, then
          the run is re-adopted as queued and resumes from its latest valid
          checkpoint when dispatched — bit-identically, by the supervisor's
          normal scan;
        * failed runs stay failed (retrying them is :meth:`resume`'s
          explicit call).

        Safe to call on a store that needs nothing; returns a
        :class:`RecoveryReport` either way.  :class:`RunService` calls this
        automatically at startup.
        """
        requeued: list[str] = []
        reconciled: list[str] = []
        killed: list[int] = []
        healthy = 0
        with self._lock:
            self._check_admitting_locked()
            for key in self.store.iter_keys():
                if key in self._jobs:
                    continue
                try:
                    action, pid = self._recover_one_locked(key)
                except RunStoreError as exc:
                    # A torn/corrupt record is fsck's business, not a reason
                    # to abort recovering every other run.
                    _LOG.warning("recovery skipped %s: %s", key, exc)
                    continue
                if pid is not None:
                    killed.append(pid)
                if action == "requeued":
                    requeued.append(str(key))
                elif action == "reconciled":
                    reconciled.append(str(key))
                else:
                    healthy += 1
        report = RecoveryReport(
            requeued=tuple(requeued),
            reconciled=tuple(reconciled),
            killed_orphans=tuple(killed),
            healthy=healthy,
        )
        if requeued or reconciled or killed:
            _LOG.info(
                "recovery on %s: %d requeued, %d reconciled, %d orphan worker(s) killed",
                self.store.root, len(requeued), len(reconciled), len(killed),
            )
            self.tracer.metrics.inc("service.recovered_runs", len(requeued))
            self.tracer.metrics.inc("service.reconciled_runs", len(reconciled))
            self.tracer.metrics.inc("service.orphans_killed", len(killed))
            self.tracer.instant("service.recovery", rank=0, args=report.to_dict())
        self._wake.set()
        return report

    def _recover_one_locked(self, key: RunKey) -> tuple[str, int | None]:
        """Classify and repair one stored run; returns (action, killed_pid)."""
        outcome = self.store.read_outcome(key)
        recorded = self.store.read_status(key) or {}
        state = recorded.get("state")
        if outcome is not None or self.store.has_result(key):
            terminal = (outcome or {}).get("state") or "done"
            if state == terminal:
                return "healthy", None
            # The worker finished but the dead queue never recorded it.
            status = JobStatus(
                tenant=key.tenant,
                run_id=key.run_id,
                state=terminal,
                generation=self._last_generation(key),
                requeues=int(recorded.get("requeues", 0)),
                incarnations=int(recorded.get("incarnations", 0)),
                pid=None,
                error=(outcome or {}).get("error"),
                name=str(recorded.get("name", "")),
            )
            self._write_status_record_locked(key, status)
            self._journal_locked("reconciled", key, state=terminal, durable=True)
            return "reconciled", None
        if state not in _ACTIVE and not (state is None and not recorded):
            return "healthy", None  # failed (terminal) or explicitly orphaned-marked
        # Orphaned: queued/running per the record (or admission crashed
        # before the first status write).  Kill any still-live worker the
        # dead queue left behind, then re-adopt.
        pid = recorded.get("pid") if state == "running" else None
        killed = self._kill_orphan(pid)
        spec = self.store.load_spec(key)
        job = Job(
            key=key,
            spec=spec,
            seq=next(self._seq),
            requeues=int(recorded.get("requeues", 0)),
            incarnations=int(recorded.get("incarnations", 0)),
        )
        self._jobs[key] = job
        self._persist_status_locked(job)
        self._journal_locked(
            "recovered", key, requeues=job.requeues, incarnations=job.incarnations,
            durable=True,
        )
        return "requeued", (pid if killed else None)

    @staticmethod
    def _kill_orphan(pid: int | None, grace: float = 5.0) -> bool:
        """SIGKILL a dead queue's leftover worker; wait until it is gone.

        Best-effort: the pid may already be dead (normal) or recycled (we
        only reach here when the recorded owner queue is provably not
        live).  Returns whether a signal was actually delivered.
        """
        if not pid:
            return False
        try:
            os.kill(int(pid), signal.SIGKILL)
        except (ProcessLookupError, PermissionError, ValueError):
            return False
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            try:
                os.kill(int(pid), 0)
            except (ProcessLookupError, PermissionError):
                return True
            time.sleep(0.02)
        return True

    # -- control -------------------------------------------------------------

    def preempt(self, tenant: str, run_id: str) -> None:
        """Kick the run off its worker slot; it requeues and resumes later.

        A queued (not yet running) run is simply left queued.  Preemption
        is free: it never consumes the run's requeue budget.
        """
        key = self.store.key(tenant, run_id)
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                raise UnknownRunError(f"no active run {key} in this queue")
            if job.state == "running" and job.proc is not None and job.proc.pid:
                job.preempt_requested = True
                self._kill_locked(job)
        self._wake.set()

    def _kill_locked(self, job: Job) -> None:
        proc = job.proc
        if proc is None or not proc.is_alive():
            return
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, TypeError):
            pass

    def status(self, tenant: str, run_id: str) -> JobStatus:
        """The job's current state, live from the queue when it is active,
        reconstructed (and reconciled) from the store otherwise.

        Store-side reconstruction never parrots a dead queue's record: a
        run whose ``status.json`` claims queued/running is cross-checked
        against ``outcome.json``/``result.npz`` and, when no live queue
        owns it, reported as ``orphaned`` until :meth:`recover` re-adopts
        it.  A fenced queue always answers from the store — the current
        owner's records, not its own stale memory.
        """
        key = self.store.key(tenant, run_id)
        with self._lock:
            job = self._jobs.get(key)
            if job is not None and not self._fenced:
                return self._status_locked(job)
        if not self.store.exists(key):
            raise UnknownRunError(f"no run {key} in the store")
        return self._status_from_store(key)

    def _status_locked(self, job: Job) -> JobStatus:
        return JobStatus(
            tenant=job.key.tenant,
            run_id=job.key.run_id,
            state=job.state,
            generation=self._last_generation(job.key),
            requeues=job.requeues,
            incarnations=job.incarnations,
            pid=job.proc.pid if job.proc is not None and job.proc.is_alive() else None,
            error=job.error,
            name=job.spec.name,
        )

    def _status_from_store(self, key: RunKey) -> JobStatus:
        outcome = self.store.read_outcome(key) or {}
        recorded = self.store.read_status(key) or {}
        state = outcome.get("state") or recorded.get("state") or "queued"
        pid = None
        if state in _ACTIVE and not outcome:
            if self.store.has_result(key):
                state = "done"  # finished, but the outcome write was lost
            elif self._owned_by_live_queue(recorded):
                pid = recorded.get("pid")
            else:
                state = "orphaned"  # nobody owns it; recover() re-adopts it
        return JobStatus(
            tenant=key.tenant,
            run_id=key.run_id,
            state=state,
            generation=self._last_generation(key),
            requeues=int(recorded.get("requeues", 0)),
            incarnations=int(recorded.get("incarnations", 0)),
            pid=pid,
            error=outcome.get("error") or recorded.get("error"),
            name=str(recorded.get("name", "")),
        )

    def _owned_by_live_queue(self, recorded: dict) -> bool:
        """Whether another, *current* queue stands behind this record.

        True only when the record's epoch matches the store's current lease
        and that lease is not ours — i.e. the present lease-holder wrote
        it.  A record from a superseded epoch (its queue is fenced or
        dead), or from our own epoch without a matching in-memory job, is
        nobody's word and reports ``orphaned``.
        """
        epoch = recorded.get("epoch")
        if epoch is None:
            return False
        lease = read_lease(self.store.root)
        if lease is None or lease.get("released"):
            return False
        return int(epoch) == int(lease.get("epoch", -1)) and int(epoch) != self.epoch

    def _last_generation(self, key: RunKey) -> int:
        return max(
            (
                e.get("generation", 0)
                for e in self.store.read_events(key)
                if e.get("type") == "progress"
            ),
            default=0,
        )

    def wait(self, tenant: str, run_id: str, timeout: float | None = None) -> JobStatus:
        """Block until the run reaches a terminal state; returns its status.

        Raises :class:`~repro.errors.ServiceError` if ``timeout`` elapses
        first.
        """
        key = self.store.key(tenant, run_id)
        with self._lock:
            job = self._jobs.get(key)
        if job is None:
            return self.status(tenant, run_id)
        if not job.done_event.wait(timeout):
            raise ServiceError(f"run {key} still {job.state} after {timeout:g} s")
        return self.status(tenant, run_id)

    def list_jobs(self, tenant: str | None = None) -> list[JobStatus]:
        """Snapshots of every job this queue knows, submission order."""
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.seq)
            return [
                self._status_locked(j)
                for j in jobs
                if tenant is None or j.key.tenant == tenant
            ]

    @property
    def draining(self) -> bool:
        """Whether the queue has stopped admitting work (drain or close)."""
        return self._draining or self._closed

    @property
    def fenced(self) -> bool:
        """Whether a newer queue has claimed this store (writes rejected)."""
        return self._fenced

    def close(
        self, *, kill: bool = True, drain: float | None = None, timeout: float = 60.0
    ) -> None:
        """Stop the scheduler; by default also reclaims live workers.

        ``drain`` adds a graceful phase first: admission stops immediately
        (:meth:`submit`/:meth:`resume` raise
        :class:`~repro.errors.DrainingError` — HTTP 503 material), queued
        jobs stay queued, and running workers get up to ``drain`` seconds
        to finish (long enough to reach their next checkpoint); whatever
        still runs is then killed and journaled as resumable — a later
        queue's :meth:`recover` re-adopts it.  ``kill=True`` without a
        drain kills immediately with the same resumable bookkeeping (a
        close-kill is free, like a preemption: it never spends the requeue
        budget).

        ``kill=False`` waits for running workers to finish on their own,
        bounded by ``timeout`` seconds; if they have not finished by then
        the scheduler thread cannot exit and this method raises
        :class:`~repro.errors.ServiceError` (loudly, instead of silently
        leaking the thread as it once did).  After such a timeout a second
        ``close(kill=True)`` reclaims the stragglers; :meth:`close` only
        becomes a no-op once the lease has actually been released.
        """
        with self._lock:
            if self._released:
                return
            if drain is not None and not self._draining:
                self._draining = True
                self._journal_locked("drain", None, grace=float(drain))
                self.tracer.instant("service.drain", rank=0, args={"grace": float(drain)})
        if drain is not None:
            deadline = time.monotonic() + drain
            while time.monotonic() < deadline:
                with self._lock:
                    if not any(j.state == "running" for j in self._jobs.values()):
                        break
                time.sleep(min(self._poll, 0.05))
        with self._lock:
            self._closed = True
            if kill or drain is not None:
                for job in self._jobs.values():
                    if job.state == "running":
                        # Journaled-as-resumable: the reap requeues it for
                        # free and the status record says so.
                        job.preempt_requested = True
                        job.drain_requested = drain is not None
                        self._kill_locked(job)
            waiting = [
                job.proc
                for job in self._jobs.values()
                if job.state == "running" and job.proc is not None
            ]
        self._wake.set()
        if not kill and drain is None:
            # Wait (bounded) for running workers so the scheduler thread can
            # reap them and exit, instead of leaking it.
            deadline = time.monotonic() + timeout
            for proc in waiting:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            leaked = [p for p in waiting if p.is_alive()]
            if leaked:
                msg = (
                    f"JobQueue.close(kill=False) timed out: {len(leaked)} worker(s)"
                    f" still running after {timeout:g} s (pids"
                    f" {[p.pid for p in leaked]}); close(kill=True) reclaims them"
                )
                _LOG.error(msg)
                raise ServiceError(msg)
        self._thread.join(timeout=10.0)
        with self._lock:
            for job in self._jobs.values():
                if job.proc is not None:
                    job.proc.join(timeout=5.0)
        if self._thread.is_alive():
            msg = "JobQueue.close() could not stop its scheduler thread"
            _LOG.error(msg)
            raise ServiceError(msg)
        with self._lock:
            self._journal_locked("released", None)
            self._released = True
        self.lease.release()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_admitting_locked(self) -> None:
        if self._closed:
            raise ServiceError("this JobQueue is closed")
        if self._draining:
            raise DrainingError(
                "this JobQueue is draining and admits no new work; retry against"
                " the next service instance"
            )
        if self._fenced:
            raise StaleLeaseError(
                f"queue epoch {self.epoch} has been fenced by a newer queue on"
                f" {self.store.root}",
                epoch=self.epoch,
            )
        try:
            self.lease.check()
        except StaleLeaseError as exc:
            self._fence_locked(exc)
            raise

    # Backwards-compatible name (pre-drain API).
    _check_open = _check_admitting_locked

    # -- fencing & fenced-safe writes ----------------------------------------

    def _fence_locked(self, exc: StaleLeaseError) -> None:
        if self._fenced:
            return
        self._fenced = True
        _LOG.error("queue epoch %d is fenced: %s", self.epoch, exc)
        self.tracer.metrics.inc("service.fenced")
        self.tracer.instant(
            "service.fenced", rank=0, args={"epoch": self.epoch, "current": exc.current}
        )

    def _journal_locked(self, type: str, key: RunKey | None, **fields) -> bool:  # noqa: A002
        """Append a fenced journal record; on a stale lease, fence and drop."""
        if self._fenced:
            return False
        durable = fields.pop("durable", type in ("dispatched", "terminal", "recovered",
                                                 "reconciled"))
        try:
            self.journal.record(type, key, durable=durable, **fields)
            return True
        except StaleLeaseError as exc:
            self._fence_locked(exc)
            return False

    def _persist_status_locked(self, job: Job) -> bool:
        """Write ``status.json`` under our epoch; fenced writes are dropped."""
        return self._write_status_record_locked(job.key, self._status_locked(job))

    def _write_status_record_locked(self, key: RunKey, status: JobStatus) -> bool:
        if self._fenced:
            return False
        try:
            self.lease.check()
        except StaleLeaseError as exc:
            self._fence_locked(exc)
            return False
        record = status.to_dict()
        record["epoch"] = self.epoch
        self.store.write_status(key, record)
        return True

    # -- the scheduler thread ------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            self._wake.wait(self._poll)
            self._wake.clear()
            with self._lock:
                try:
                    self._reap_locked()
                    self._watchdog_locked()
                except Exception:  # noqa: BLE001 - the scheduler must survive
                    _LOG.exception("scheduler tick failed; continuing")
                if self._closed:
                    if self._fenced or not any(
                        j.state == "running" for j in self._jobs.values()
                    ):
                        return
                    continue
                if self._draining or self._fenced:
                    continue
                try:
                    self._dispatch_locked()
                except Exception:  # noqa: BLE001
                    _LOG.exception("dispatch failed; continuing")

    def _reap_locked(self) -> None:
        for job in self._jobs.values():
            if job.state != "running" or job.proc is None or job.proc.is_alive():
                continue
            job.proc.join()
            exitcode = job.proc.exitcode
            job.proc = None
            if self._fenced:
                # The run belongs to the store's new owner now; record the
                # local truth without touching the store.
                job.state = "failed"
                job.error = (
                    f"queue epoch {self.epoch} was fenced; the run continues under"
                    " the store's current owner"
                )
                job.done_event.set()
                continue
            outcome = self.store.read_outcome(job.key)
            if outcome is not None:
                # The worker finished and said so — success or a supervisor
                # give-up, either way its word is terminal.
                job.state = "done" if outcome.get("state") == "done" else "failed"
                job.error = outcome.get("error")
                self._journal_locked("terminal", job.key, state=job.state, error=job.error)
            elif job.preempt_requested:
                job.preempt_requested = False
                reason = "drain" if job.drain_requested else "preempt"
                job.drain_requested = False
                job.state = "queued"
                self._journal_locked("preempted", job.key, reason=reason, durable=True)
                if reason == "drain":
                    self.tracer.metrics.inc("service.drain_kills")
                _LOG.info("run %s preempted (%s); requeued (free)", job.key, reason)
            elif job.requeues < job.spec.fault.max_requeues:
                reason = "stall" if job.stalled else "worker-death"
                job.stalled = False
                job.requeues += 1
                job.state = "queued"
                self._journal_locked(
                    "requeued", job.key, reason=reason, exitcode=exitcode,
                    requeues=job.requeues, durable=True,
                )
                _LOG.warning(
                    "worker for %s died (exit %s, %s) without an outcome;"
                    " requeue %d/%d from latest checkpoint",
                    job.key, exitcode, reason, job.requeues, job.spec.fault.max_requeues,
                )
            else:
                cause = "stalled past its progress watchdog" if job.stalled else "died"
                job.stalled = False
                job.state = "failed"
                job.error = (
                    f"worker {cause} (exit {exitcode}) with no outcome and the"
                    f" requeue budget ({job.spec.fault.max_requeues}) spent"
                )
                self._journal_locked("terminal", job.key, state="failed", error=job.error)
                _LOG.error("run %s failed: %s", job.key, job.error)
            self._persist_status_locked(job)
            if job.state in ("done", "failed"):
                job.done_event.set()

    def _watchdog_locked(self) -> None:
        """Kill running workers that have made no progress past their
        :attr:`~repro.parallel.spec.FaultPolicy.stall_timeout`."""
        now = time.monotonic()
        if now < self._next_watchdog:
            return
        self._next_watchdog = now + 0.25
        for job in self._jobs.values():
            stall = job.spec.fault.stall_timeout
            if stall is None or job.state != "running" or job.proc is None:
                continue
            generation = self._last_generation(job.key)
            if generation > job.last_progress_gen:
                job.last_progress_gen = generation
                job.last_progress_time = now
            elif now - job.last_progress_time > stall:
                job.stalled = True
                self._journal_locked(
                    "stalled", job.key, generation=generation, stall_timeout=stall
                )
                self.tracer.metrics.inc("service.stall_kills")
                self.tracer.instant(
                    "service.stall_kill", rank=0,
                    args={"run": str(job.key), "generation": generation},
                )
                _LOG.warning(
                    "run %s made no progress for %.1f s (generation stuck at %d);"
                    " killing the worker",
                    job.key, stall, generation,
                )
                self._kill_locked(job)

    def _dispatch_locked(self) -> None:
        while True:
            running = sum(1 for j in self._jobs.values() if j.state == "running")
            if running >= self.max_workers:
                return
            job = self._pick_locked()
            if job is None:
                return
            self._launch_locked(job)
            if self._fenced:
                return

    def _pick_locked(self) -> Job | None:
        """Fair share: fewest running wins, stalest tenant breaks ties,
        FIFO within the tenant."""
        queued = [j for j in self._jobs.values() if j.state == "queued"]
        if not queued:
            return None
        running_by_tenant: dict[str, int] = {}
        for j in self._jobs.values():
            if j.state == "running":
                running_by_tenant[j.key.tenant] = running_by_tenant.get(j.key.tenant, 0) + 1

        def rank(job: Job) -> tuple:
            tenant = job.key.tenant
            return (
                running_by_tenant.get(tenant, 0),
                self._last_served.get(tenant, -1),
                job.seq,
            )

        return min(queued, key=rank)

    def _launch_locked(self, job: Job) -> None:
        # The fence check comes BEFORE the process starts: a superseded
        # queue must never double-dispatch a run the current owner may
        # already be executing.
        try:
            self.lease.check()
        except StaleLeaseError as exc:
            self._fence_locked(exc)
            return
        # A stale outcome from a prior incarnation (none should exist, but a
        # crashed queue could leave one) must not be read as this launch's.
        (self.store.run_dir(job.key) / "outcome.json").unlink(missing_ok=True)
        proc = self._mp.Process(
            target=_child_entry,
            args=(str(self.store.root), job.key.tenant, job.key.run_id),
            name=f"repro-worker-{job.key.tenant}-{job.key.run_id}",
            daemon=False,
        )
        proc.start()
        job.proc = proc
        job.state = "running"
        job.incarnations += 1
        job.last_progress_gen = self._last_generation(job.key)
        job.last_progress_time = time.monotonic()
        self._last_served[job.key.tenant] = next(self._seq)
        self._journal_locked(
            "dispatched", job.key, pid=proc.pid, incarnation=job.incarnations
        )
        self._persist_status_locked(job)
        _LOG.info(
            "dispatched %s (pid %s, incarnation %d)", job.key, proc.pid, job.incarnations
        )
