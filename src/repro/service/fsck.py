"""``repro-store fsck``: offline inspection and repair of a run store.

A run store survives SIGKILLed services because every writer follows one
of two disciplines — atomic replace or append-only — and every reader
tolerates the debris those disciplines can leave (torn trailing JSONL
lines, orphaned ``.tmp-*`` files, checkpoints missing their digest).  The
readers route *around* damage; fsck is the tool that finds it, names it,
and (where provably safe) removes it.

:func:`fsck_store` walks every run and classifies it:

``healthy``
    All records parse, agree with each other, and any result passes its
    digest check.
``torn``
    Crash debris: a torn trailing line in ``events.jsonl``, orphaned
    ``.tmp-*`` files from an interrupted atomic replace, an unparseable
    ``status.json``, or a checkpoint that fails to load.  All repairable:
    the torn tail is truncated, debris and broken checkpoints deleted,
    the unparseable status rewritten from the outcome (or removed).
``orphaned``
    The record claims ``running`` but no outcome or result exists and
    no live queue owns the store — the service died under it.  Repair
    rewrites the status to say ``orphaned`` honestly; a restarted service
    (or :meth:`~repro.service.queue.JobQueue.recover`) re-adopts it.
``digest-mismatch``
    ``result.npz`` exists but fails its content check.  Report-only:
    the matrix cannot be trusted and fsck never deletes data it cannot
    regenerate — resume the run to recompute it.

Store-level damage (a torn tail on the service journal, an unreadable
lease file) is reported and repaired the same way.  The CLI::

    repro-store fsck --root /var/lib/repro/runs            # report
    repro-store fsck --root /var/lib/repro/runs --repair   # and fix
    repro-store fsck --root /var/lib/repro/runs --json     # machine-readable

exits 0 when the store is clean, 1 when any problem was found (repaired
or not), so it slots into cron and CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import RunStoreError
from repro.io.checkpoints import load_parallel_checkpoint
from repro.io.runstore import RunKey, RunStore
from repro.logging_util import get_logger
from repro.service.journal import journal_path, read_lease

__all__ = ["RunFsck", "StoreFsck", "fsck_store", "main"]

_LOG = get_logger("service.fsck")

#: Classification precedence, worst first: one run gets one verdict.
_SEVERITY = ("digest-mismatch", "torn", "orphaned", "healthy")


@dataclass
class RunFsck:
    """One run's verdict: its classification, issues found, repairs made."""

    run: str
    state: str = "healthy"
    issues: list[str] = field(default_factory=list)
    repairs: list[str] = field(default_factory=list)

    def flag(self, state: str, issue: str) -> None:
        """Record an issue, keeping the worst classification seen."""
        self.issues.append(issue)
        if _SEVERITY.index(state) < _SEVERITY.index(self.state):
            self.state = state

    def to_dict(self) -> dict:
        return {
            "run": self.run,
            "state": self.state,
            "issues": list(self.issues),
            "repairs": list(self.repairs),
        }


@dataclass
class StoreFsck:
    """The whole store's verdict (per-run reports + store-level issues)."""

    root: str
    runs: list[RunFsck] = field(default_factory=list)
    store_issues: list[str] = field(default_factory=list)
    store_repairs: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether nothing at all was wrong (before any repairs)."""
        return not self.store_issues and all(r.state == "healthy" for r in self.runs)

    def counts(self) -> dict[str, int]:
        out = {state: 0 for state in _SEVERITY}
        for run in self.runs:
            out[run.state] += 1
        return out

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "clean": self.clean,
            "counts": self.counts(),
            "runs": [r.to_dict() for r in self.runs],
            "store_issues": list(self.store_issues),
            "store_repairs": list(self.store_repairs),
        }


def _torn_tail_length(path: Path) -> int:
    """Bytes of unparseable trailing line in a JSONL file (0 = none)."""
    try:
        raw = path.read_bytes()
    except OSError:
        return 0
    if not raw or raw.endswith(b"\n"):
        return 0
    tail = raw[raw.rfind(b"\n") + 1 :]
    try:
        json.loads(tail.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return len(tail)
    return 0  # a parseable last line merely lost its newline; readers cope


def _truncate_torn_tail(path: Path, tail_len: int) -> None:
    size = path.stat().st_size
    with open(path, "rb+") as fh:
        fh.truncate(size - tail_len)
        fh.flush()
        os.fsync(fh.fileno())


def _pid_alive(pid) -> bool:
    try:
        os.kill(int(pid), 0)
    except (ProcessLookupError, ValueError, TypeError):
        return False
    except PermissionError:
        return True  # exists, just not ours
    return True


def _store_owner_live(root: Path) -> bool:
    """Whether a live queue currently owns this store's lease."""
    lease = read_lease(root)
    if lease is None or lease.get("released"):
        return False
    return _pid_alive(lease.get("pid"))


def _check_jsonl(report, path: Path, label: str, repair: bool, *, run=True) -> None:
    tail = _torn_tail_length(path)
    if not tail:
        return
    issue = f"{label}: torn trailing line ({tail} bytes)"
    if run:
        report.flag("torn", issue)
    else:
        report.store_issues.append(issue)
    if repair:
        _truncate_torn_tail(path, tail)
        fixed = f"{label}: truncated torn tail"
        (report.repairs if run else report.store_repairs).append(fixed)


def _check_debris(report: RunFsck, directory: Path, repair: bool) -> None:
    if not directory.is_dir():
        return
    for debris in sorted(directory.glob(".*.tmp-*")):
        report.flag("torn", f"{debris.name}: orphaned temp file from an interrupted replace")
        if repair:
            debris.unlink(missing_ok=True)
            report.repairs.append(f"{debris.name}: deleted")


def _check_status_record(
    store: RunStore, key: RunKey, report: RunFsck, repair: bool
) -> dict | None:
    path = store.run_dir(key) / "status.json"
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        report.flag("torn", "status.json: unparseable")
        if repair:
            outcome = store.read_outcome(key)
            if outcome is not None:
                store.write_status(
                    key,
                    {
                        "tenant": key.tenant,
                        "run_id": key.run_id,
                        "state": outcome.get("state", "done"),
                        "error": outcome.get("error"),
                    },
                )
                report.repairs.append("status.json: rewritten from outcome.json")
            else:
                path.unlink(missing_ok=True)
                report.repairs.append("status.json: removed (recovery will rebuild it)")
        return None


def _check_checkpoints(store: RunStore, key: RunKey, report: RunFsck, repair: bool) -> None:
    ckpt_dir = store.checkpoint_dir(key)
    if not ckpt_dir.is_dir():
        return
    for path in sorted(ckpt_dir.glob("ckpt_*.npz")):
        try:
            load_parallel_checkpoint(path)
        except Exception:  # noqa: BLE001 - torn/corrupt in any shape
            report.flag("torn", f"checkpoints/{path.name}: fails to load")
            if repair:
                path.unlink(missing_ok=True)
                report.repairs.append(f"checkpoints/{path.name}: deleted (earlier checkpoints remain)")


def _fsck_run(
    store: RunStore, key: RunKey, *, repair: bool, owner_live: bool
) -> RunFsck:
    report = RunFsck(run=str(key))
    run_dir = store.run_dir(key)
    _check_debris(report, run_dir, repair)
    _check_jsonl(report, store.events_path(key), "events.jsonl", repair)
    _check_checkpoints(store, key, report, repair)
    status = _check_status_record(store, key, report, repair)
    try:
        outcome = store.read_outcome(key)
    except RunStoreError:
        outcome = None
        report.flag("torn", "outcome.json: unreadable")

    if store.has_result(key):
        try:
            store.load_result(key)
        except RunStoreError as exc:
            report.flag("digest-mismatch", f"result.npz: {exc}")
            # Report-only: never delete a result; resume the run to recompute.

    # A "queued" record with no owner is normal (a cleanly stopped queue
    # leaves pending work behind); only a "running" record with neither an
    # outcome nor a live owner proves the service died under the run.
    recorded_state = (status or {}).get("state")
    if (
        recorded_state == "running"
        and outcome is None
        and not store.has_result(key)
        and not owner_live
    ):
        report.flag(
            "orphaned",
            f"status.json says {recorded_state!r} but no queue owns the store",
        )
        if repair:
            record = dict(status or {})
            record.update(
                {"tenant": key.tenant, "run_id": key.run_id, "state": "orphaned"}
            )
            record.pop("pid", None)
            store.write_status(key, record)
            report.repairs.append("status.json: state rewritten to 'orphaned'")
    return report


def fsck_store(root: str | Path, *, repair: bool = False) -> StoreFsck:
    """Check (and with ``repair=True``, fix) every run in the store.

    Returns the full :class:`StoreFsck` report.  Repair only ever touches
    state that is provably crash debris or provably unowned; results are
    never deleted and digest mismatches are report-only.
    """
    store = RunStore(root)
    report = StoreFsck(root=str(store.root))
    owner_live = _store_owner_live(store.root)
    _check_jsonl(report, journal_path(store.root), "journal.jsonl", repair, run=False)
    lease_file = store.root / ".service" / "lease.json"
    if lease_file.exists() and read_lease(store.root) is None:
        report.store_issues.append("lease.json: unreadable")
        if repair:
            lease_file.unlink(missing_ok=True)
            report.store_repairs.append("lease.json: removed (next queue re-claims)")
    for key in store.iter_keys():
        report.runs.append(_fsck_run(store, key, repair=repair, owner_live=owner_live))
    return report


# -- CLI ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-store`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-store", description="Inspect and repair a run store."
    )
    sub = parser.add_subparsers(dest="command", required=True)
    fsck = sub.add_parser("fsck", help="classify every run; --repair fixes safe damage")
    fsck.add_argument("--root", required=True, help="run-store directory")
    fsck.add_argument("--repair", action="store_true", help="fix repairable damage")
    fsck.add_argument("--json", action="store_true", help="emit the report as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exit 0 when clean, 1 when any problem was found."""
    args = build_parser().parse_args(argv)
    report = fsck_store(args.root, repair=args.repair)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        counts = report.counts()
        print(
            f"fsck {report.root}: {len(report.runs)} run(s) — "
            + ", ".join(f"{counts[s]} {s}" for s in _SEVERITY)
        )
        for issue in report.store_issues:
            print(f"  store: {issue}")
        for repaired in report.store_repairs:
            print(f"  store: repaired: {repaired}")
        for run in report.runs:
            if run.state == "healthy":
                continue
            print(f"  {run.run}: {run.state}")
            for issue in run.issues:
                print(f"    - {issue}")
            for repaired in run.repairs:
                print(f"    + {repaired}")
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
