"""The service worker: one process, one supervised run, streamed progress.

:func:`run_job` is the whole life of a worker process.  It loads the run's
stored :class:`~repro.parallel.spec.RunSpec`, attaches an
:class:`~repro.obs.stream.EventTap` that distills the raw trace into
progress records appended to the run's ``events.jsonl``, and drives a
:class:`~repro.parallel.supervisor.SupervisedRun` to completion — so a
worker inherits the entire self-healing stack for free: in-run degradation
and respawn, supervisor restarts from the latest valid checkpoint, and
(because the queue relaunches dead workers) resume-after-SIGKILL.

File ownership is split to keep a SIGKILL-able worker honest:

* the **queue** (parent) owns ``status.json`` — lifecycle it can always
  write truthfully because it outlives the worker;
* the **worker** (child) owns ``outcome.json`` and ``result.npz`` — the
  completion record and the digest-verified matrix, both atomically
  replaced, so they exist if and only if the run actually finished.

Progress records are monotone in ``generation`` even across worker deaths:
a relaunched worker seeds its high-water mark from the events already on
disk, so a run resumed from generation 120's checkpoint never re-announces
generations a subscriber has already seen.
"""

from __future__ import annotations

import os
import sys
import time
import traceback

from repro.io.runstore import RunKey, RunStore
from repro.obs.stream import EventTap, jsonl_event_writer
from repro.obs.tracer import TraceEvent
from repro.parallel.supervisor import SupervisedRun

__all__ = ["run_job", "progress_transform"]


def progress_transform(events_so_far: list[dict]):
    """Build the trace→progress distiller for one worker incarnation.

    Returns a callback for :func:`~repro.obs.stream.jsonl_event_writer`'s
    ``transform`` that keeps only what a subscriber needs:

    * ``{"type": "progress", "generation": g}`` — Nature (rank 0) finished
      generation ``g``; emitted only when ``g`` exceeds every generation
      already announced, *including by previous incarnations* (seeded from
      ``events_so_far``), so the stream is strictly increasing.
    * ``{"type": "restart", ...}`` — a supervisor-level restart.

    Everything else (play spans, message flows, heartbeats) is dropped —
    the full trace is the tracer's business, not the progress feed's.
    """
    last_gen = max(
        (e.get("generation", 0) for e in events_so_far if e.get("type") == "progress"),
        default=0,
    )

    def transform(event: TraceEvent) -> dict | None:
        nonlocal last_gen
        if event.name == "generation" and event.ph == "X" and event.rank == 0:
            gen = int((event.args or {}).get("gen", 0))
            if gen <= last_gen:
                return None
            last_gen = gen
            return {"type": "progress", "generation": gen, "time": time.time()}
        if event.name == "recovery.restart":
            args = event.args or {}
            return {
                "type": "restart",
                "attempt": args.get("attempt"),
                "generation": args.get("generation"),
                "error": args.get("error"),
                "time": time.time(),
            }
        return None

    return transform


def run_job(store_root: str, tenant: str, run_id: str) -> int:
    """Execute the stored run ``tenant/run_id`` to completion.

    Returns the process exit code: 0 when the run finished and its result
    was stored, 1 when the supervisor gave up (the failure is recorded in
    ``outcome.json``).  A worker that dies without writing an outcome —
    chaos kill, OOM, preemption — is the queue's problem: it relaunches
    within the spec's requeue budget and this function resumes from the
    latest valid checkpoint via the supervisor's normal scan.
    """
    store = RunStore(store_root)
    key = RunKey(tenant, run_id)
    spec = store.load_spec(key)
    if getattr(spec, "kind", "evolution") == "spatial":
        return _run_spatial_job(store, key, spec)

    write = jsonl_event_writer(
        store.events_path(key), transform=progress_transform(store.read_events(key))
    )
    tap = EventTap([write], keep_events=False)
    store.append_event(
        key,
        {"type": "worker-started", "pid": os.getpid(), "time": time.time()},
        durable=True,
    )

    try:
        supervised = SupervisedRun.from_spec(
            spec,
            checkpoint_dir=store.checkpoint_dir(key),
            run_id=str(key),
            trace=tap,
        ).run(timeout=spec.attempt_timeout)
    except Exception as exc:
        store.write_outcome(
            key,
            {
                "state": "failed",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "time": time.time(),
            },
        )
        store.append_event(
            key,
            {"type": "failed", "error": f"{type(exc).__name__}: {exc}", "time": time.time()},
            durable=True,
        )
        return 1
    finally:
        write.close()

    store.save_result(key, supervised.result, attempts=supervised.attempts)
    store.write_outcome(
        key,
        {
            "state": "done",
            "generation": int(supervised.result.generation),
            "attempts": supervised.attempts,
            "restarts": len(supervised.restarts),
            "time": time.time(),
        },
    )
    store.append_event(
        key,
        {
            "type": "done",
            "generation": int(supervised.result.generation),
            "attempts": supervised.attempts,
            "time": time.time(),
        },
        durable=True,
    )
    return 0


def _run_spatial_job(store: RunStore, key: RunKey, spec) -> int:
    """Drive one :class:`~repro.spatial.spec.SpatialRunSpec` to completion.

    Spatial runs are exact and comparatively short, so there is no
    supervisor or checkpoint layer: the run either finishes (result saved,
    per-generation progress appended after the fact, final shares in the
    outcome) or fails with the error recorded in ``outcome.json`` — and a
    worker killed mid-run is relaunched by the queue within the spec's
    requeue budget and simply recomputes from the start.
    """
    from repro.spatial.parallel import run_partitioned

    store.append_event(
        key,
        {"type": "worker-started", "pid": os.getpid(), "time": time.time()},
        durable=True,
    )
    try:
        result = run_partitioned(spec)
    except Exception as exc:
        store.write_outcome(
            key,
            {
                "state": "failed",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "time": time.time(),
            },
        )
        store.append_event(
            key,
            {"type": "failed", "error": f"{type(exc).__name__}: {exc}", "time": time.time()},
            durable=True,
        )
        return 1

    now = time.time()
    for gen, counts in enumerate(result.history, start=1):
        store.append_event(
            key, {"type": "progress", "generation": gen, "counts": counts, "time": now}
        )
    store.save_result(key, result, attempts=1)
    store.write_outcome(
        key,
        {
            "state": "done",
            "generation": int(result.generation),
            "attempts": 1,
            "restarts": 0,
            "shares": result.shares(),
            "time": time.time(),
        },
    )
    store.append_event(
        key,
        {
            "type": "done",
            "generation": int(result.generation),
            "attempts": 1,
            "shares": result.shares(),
            "time": time.time(),
        },
        durable=True,
    )
    return 0


def _child_entry(store_root: str, tenant: str, run_id: str) -> None:
    """``multiprocessing.Process`` target: exit code = :func:`run_job`'s."""
    sys.exit(run_job(store_root, tenant, run_id))
