"""The run service and its REST/SSE front door.

:class:`RunService` is the service proper — submit/resume/preempt/fetch
against a :class:`~repro.io.runstore.RunStore` and
:class:`~repro.service.queue.JobQueue`, with experiment-registry ids
accepted as spec templates (:mod:`repro.experiments.templates`).  It has no
HTTP in it, so tests and embedders drive it directly.

The HTTP layer is a deliberately thin stdlib ``ThreadingHTTPServer``
translation of that API:

====== =========================================== ===========================
Method Path                                        Meaning
====== =========================================== ===========================
POST   ``/v1/runs``                                submit (spec or template)
GET    ``/v1/runs``                                list runs
GET    ``/v1/runs/{tenant}``                       list one tenant's runs
GET    ``/v1/runs/{tenant}/{run}``                 status
POST   ``/v1/runs/{tenant}/{run}/preempt``         preempt (requeues, free)
POST   ``/v1/runs/{tenant}/{run}/resume``          resume a stored run
GET    ``/v1/runs/{tenant}/{run}/result``          final matrix + counters
GET    ``/v1/runs/{tenant}/{run}/events``          event log so far
GET    ``/v1/runs/{tenant}/{run}/stream``          live SSE progress feed
GET    ``/v1/templates``                           templatable experiment ids
GET    ``/v1/healthz``                             liveness
GET    ``/v1/readyz``                              admitting work? (503 if not)
====== =========================================== ===========================

The SSE stream replays the run's event log from the start, then tails it
(:func:`repro.obs.stream.follow_events`) until the run is terminal — each
frame is ``event: <type>`` + ``data: <json>``, closing with ``event: end``.
Errors map onto status codes: unknown key 404, duplicate key 409, quota
429, bad spec/template 400, draining 503 (with a ``Retry-After`` header).

Durability: :class:`RunService` claims the store's epoch lease and replays
the service journal at construction (``recover=True``), so a service
restarted on the store of a SIGKILLed predecessor re-adopts its
interrupted runs automatically; :meth:`RunService.begin_drain` /
``close(drain=...)`` implement graceful shutdown (admission stops, workers
get a grace window, leftovers are journaled as resumable).  See
``docs/service.md``.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import (
    ConfigError,
    DrainingError,
    ExperimentError,
    QuotaError,
    ReproError,
    RunStoreError,
    ServiceError,
    StaleLeaseError,
    UnknownRunError,
)
from repro.experiments.templates import spec_template, template_ids
from repro.io.runstore import RunStore
from repro.logging_util import get_logger
from repro.obs.stream import follow_events
from repro.obs.tracer import Tracer
from repro.parallel.spec import RunSpec, spec_from_dict
from repro.service.queue import JobQueue, JobStatus, RecoveryReport

__all__ = ["RunService", "RunServer", "serve"]

_LOG = get_logger("service.server")

_TERMINAL = ("done", "failed")


class RunService:
    """Submit, watch, preempt and fetch runs — the HTTP-free service core.

    Construction claims the store's epoch lease (fencing any earlier
    service still pointed at it) and, unless ``recover=False``, replays
    the service journal against the store: interrupted runs of a dead
    predecessor are re-adopted and resume from their latest valid
    checkpoint, stale status records are reconciled.  The report lands in
    :attr:`recovery`.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_workers: int = 2,
        quota: int = 4,
        quotas: dict[str, int] | None = None,
        recover: bool = True,
        tracer: Tracer | None = None,
    ) -> None:
        self.store = RunStore(root)
        self.queue = JobQueue(
            self.store,
            max_workers=max_workers,
            quota=quota,
            quotas=quotas,
            tracer=tracer,
        )
        self.recovery: RecoveryReport = (
            self.queue.recover() if recover else RecoveryReport()
        )

    # -- submission ----------------------------------------------------------

    def submit(self, tenant: str, run_id: str, spec: RunSpec) -> JobStatus:
        """Queue ``spec`` under ``tenant/run_id`` and return its status."""
        self.queue.submit(tenant, run_id, spec)
        return self.queue.status(tenant, run_id)

    def submit_payload(self, payload: dict) -> JobStatus:
        """Submit from a JSON payload (what POST ``/v1/runs`` carries).

        Two shapes: ``{"tenant", "run_id", "spec": {...}}`` with a full
        spec dict (``kind`` selects the family — evolution
        :class:`RunSpec` or :class:`~repro.spatial.spec.SpatialRunSpec`),
        or ``{"tenant", "run_id", "template": "fig2", "config": {...},
        "spec": {...}}`` expanding a registry template with config-factory
        and spec-field overrides.
        """
        if not isinstance(payload, dict):
            raise ConfigError("the submission payload must be a JSON object")
        tenant = payload.get("tenant")
        run_id = payload.get("run_id")
        if not tenant or not run_id:
            raise ConfigError("a submission needs 'tenant' and 'run_id'")
        template = payload.get("template")
        if template is not None:
            spec = spec_template(
                template,
                config_overrides=payload.get("config") or {},
                **(payload.get("spec") or {}),
            )
        else:
            if "spec" not in payload:
                raise ConfigError("a submission needs a 'spec' or a 'template'")
            spec = spec_from_dict(payload["spec"])
        return self.submit(tenant, run_id, spec)

    def resume(self, tenant: str, run_id: str) -> JobStatus:
        """Re-drive a stored run from its latest valid checkpoint."""
        self.queue.resume(tenant, run_id)
        return self.queue.status(tenant, run_id)

    def preempt(self, tenant: str, run_id: str) -> JobStatus:
        """Preempt a running job (it requeues, budget untouched)."""
        self.queue.preempt(tenant, run_id)
        return self.queue.status(tenant, run_id)

    # -- reading back --------------------------------------------------------

    def status(self, tenant: str, run_id: str) -> JobStatus:
        return self.queue.status(tenant, run_id)

    def result_payload(self, tenant: str, run_id: str) -> dict:
        """The stored result as JSON-safe primitives (404 material if absent)."""
        key = self.store.key(tenant, run_id)
        if not self.store.exists(key):
            raise UnknownRunError(f"no run {key} in the store")
        if not self.store.has_result(key):
            raise ServiceError(f"run {key} has no result yet")
        stored = self.store.load_result(key)
        return {
            "tenant": tenant,
            "run_id": run_id,
            "generation": stored.generation,
            "attempts": stored.attempts,
            "n_pc_events": stored.n_pc_events,
            "n_adoptions": stored.n_adoptions,
            "n_mutations": stored.n_mutations,
            "dtype": str(stored.matrix.dtype),
            "matrix": stored.matrix.tolist(),
            "digest": stored.meta.get("digest"),
        }

    def events(self, tenant: str, run_id: str) -> list[dict]:
        key = self.store.key(tenant, run_id)
        if not self.store.exists(key):
            raise UnknownRunError(f"no run {key} in the store")
        return self.store.read_events(key)

    def stream(self, tenant: str, run_id: str, *, poll: float = 0.05, timeout: float | None = None):
        """The run's events live: replay, then tail until terminal.

        Returns an iterator; the unknown-key check happens *here*, eagerly,
        so the HTTP layer can 404 before committing to a 200 SSE response.
        """
        key = self.store.key(tenant, run_id)
        if not self.store.exists(key):
            raise UnknownRunError(f"no run {key} in the store")

        def terminal() -> bool:
            try:
                return self.queue.status(tenant, run_id).state in _TERMINAL
            except ReproError:
                return True

        return follow_events(
            self.store.events_path(key), poll=poll, stop=terminal, timeout=timeout
        )

    def list_runs(self, tenant: str | None = None) -> list[dict]:
        """Every stored run's status (live where the queue knows it)."""
        out = []
        tenants = [tenant] if tenant is not None else self.store.list_tenants()
        for t in tenants:
            for run_id in self.store.list_runs(t):
                out.append(self.queue.status(t, run_id).to_dict())
        return out

    # -- lifecycle -----------------------------------------------------------

    @property
    def ready(self) -> bool:
        """Whether the service admits new work (not draining, not fenced)."""
        return not (self.queue.draining or self.queue.fenced)

    def begin_drain(self, grace: float = 30.0) -> None:
        """Stop admission now; shut down after ``grace`` seconds (async).

        Submissions raise :class:`~repro.errors.DrainingError` (503 over
        HTTP) immediately; running workers get the grace window to finish,
        then are killed and journaled as resumable — the next service on
        this store re-adopts them.  Returns at once; the drain runs on a
        background thread (the SIGTERM handler's shape).
        """
        threading.Thread(
            target=self.close, kwargs={"drain": grace},
            name="repro-service-drain", daemon=True,
        ).start()

    def close(self, *, drain: float | None = None) -> None:
        self.queue.close(drain=drain)

    def __enter__(self) -> "RunService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- HTTP layer ---------------------------------------------------------------

_RUN_PATH = re.compile(
    r"^/v1/runs/(?P<tenant>[^/]+)/(?P<run_id>[^/]+)(?:/(?P<verb>[a-z]+))?$"
)


def _error_status(exc: Exception) -> int:
    if isinstance(exc, UnknownRunError):
        return 404
    if isinstance(exc, QuotaError):
        return 429
    if isinstance(exc, DrainingError):
        return 503
    if isinstance(exc, (RunStoreError, StaleLeaseError)):
        return 409
    if isinstance(exc, (ConfigError, ExperimentError)):
        return 400
    return 400 if isinstance(exc, ServiceError) else 500


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP onto the owning :class:`RunService`."""

    protocol_version = "HTTP/1.1"
    service: RunService  # set by RunServer

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # route to our logger
        _LOG.debug("%s %s", self.address_string(), fmt % args)

    def _send_json(
        self, payload, status: int = 200, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, exc: Exception) -> None:
        headers = None
        if isinstance(exc, DrainingError):
            # Tell well-behaved clients when the *next* service instance is
            # worth trying (roughly the drain grace window).
            headers = {"Retry-After": str(max(1, round(exc.retry_after)))}
        self._send_json(
            {"error": f"{type(exc).__name__}: {exc}"},
            status=_error_status(exc),
            headers=headers,
        )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}") from exc

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        try:
            if self.path == "/v1/healthz":
                self._send_json({"ok": True})
            elif self.path == "/v1/readyz":
                if self.service.ready:
                    self._send_json({"ready": True})
                else:
                    self._send_json(
                        {"ready": False, "reason": "draining or fenced"},
                        status=503,
                        headers={"Retry-After": "30"},
                    )
            elif self.path == "/v1/templates":
                self._send_json({"templates": template_ids()})
            elif self.path == "/v1/runs":
                self._send_json({"runs": self.service.list_runs()})
            elif (m := re.match(r"^/v1/runs/(?P<tenant>[^/]+)$", self.path)) is not None:
                self._send_json({"runs": self.service.list_runs(m["tenant"])})
            elif (m := _RUN_PATH.match(self.path)) is not None:
                self._get_run(m["tenant"], m["run_id"], m["verb"])
            else:
                self._send_json({"error": f"no route {self.path}"}, status=404)
        except Exception as exc:  # noqa: BLE001 - every error becomes a response
            self._send_error_json(exc)

    def _get_run(self, tenant: str, run_id: str, verb: str | None) -> None:
        if verb is None:
            self._send_json(self.service.status(tenant, run_id).to_dict())
        elif verb == "result":
            self._send_json(self.service.result_payload(tenant, run_id))
        elif verb == "events":
            self._send_json({"events": self.service.events(tenant, run_id)})
        elif verb == "stream":
            self._stream_run(tenant, run_id)
        else:
            self._send_json({"error": f"no GET verb {verb!r}"}, status=404)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        try:
            if self.path == "/v1/runs":
                status = self.service.submit_payload(self._read_body())
                self._send_json(status.to_dict(), status=201)
                return
            m = _RUN_PATH.match(self.path)
            if m is None or m["verb"] not in ("preempt", "resume"):
                self._send_json({"error": f"no route {self.path}"}, status=404)
                return
            action = self.service.preempt if m["verb"] == "preempt" else self.service.resume
            self._send_json(action(m["tenant"], m["run_id"]).to_dict())
        except Exception as exc:  # noqa: BLE001
            self._send_error_json(exc)

    # -- SSE -----------------------------------------------------------------

    def _stream_run(self, tenant: str, run_id: str) -> None:
        events = self.service.stream(tenant, run_id)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE has no length; close delimits the stream.
        self.send_header("Connection", "close")
        self.end_headers()
        seq = 0
        try:
            for event in events:
                frame = (
                    f"id: {seq}\n"
                    f"event: {event.get('type', 'message')}\n"
                    f"data: {json.dumps(event)}\n\n"
                )
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                seq += 1
            self.wfile.write(b"id: %d\nevent: end\ndata: {}\n\n" % seq)
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # subscriber hung up; the run does not care
        finally:
            self.close_connection = True


class RunServer:
    """A :class:`RunService` behind a threading stdlib HTTP server.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`),
    which is how the tests run many servers side by side.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 2,
        quota: int = 4,
        quotas: dict[str, int] | None = None,
        recover: bool = True,
        tracer: Tracer | None = None,
    ) -> None:
        self.service = RunService(
            root,
            max_workers=max_workers,
            quota=quota,
            quotas=quotas,
            recover=recover,
            tracer=tracer,
        )
        handler = type("_BoundHandler", (_Handler,), {"service": self.service})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "RunServer":
        """Serve in a background thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("run service listening on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's mode)."""
        _LOG.info("run service listening on %s", self.url)
        self.httpd.serve_forever(poll_interval=0.05)

    def drain(self, grace: float = 30.0) -> None:
        """Graceful shutdown: 503 new submissions now, stop after ``grace``.

        The HTTP listener stays up through the grace window so clients can
        still poll status, stream events and fetch results; only admission
        is refused.  Blocks until the drain completes, then closes.
        """
        self.service.close(drain=grace)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.service.close()

    def __enter__(self) -> "RunServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(
    root: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    max_workers: int = 2,
    quota: int = 4,
    quotas: dict[str, int] | None = None,
) -> RunServer:
    """Build and start a background :class:`RunServer` (the embedding API)."""
    return RunServer(
        root, host=host, port=port, max_workers=max_workers, quota=quota, quotas=quotas
    ).start()
