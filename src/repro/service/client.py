"""The service client: the run server's API as plain Python calls.

:class:`ServiceClient` speaks the REST/SSE surface of
:mod:`repro.service.server` over stdlib ``urllib`` — no extra
dependencies, same wire shapes.  Results come back as real arrays
(:class:`FetchedResult`), and :meth:`ServiceClient.stream` turns the SSE
feed into an iterator of ``(event_type, payload)`` pairs, so::

    client = ServiceClient("http://127.0.0.1:8642")
    client.submit("alice", "demo", template="fig2", config={"generations": 200})
    for kind, payload in client.stream("alice", "demo"):
        if kind == "progress":
            print(payload["generation"])
    matrix = client.result("alice", "demo").matrix

Server-side errors surface as :class:`ServiceHTTPError` carrying the HTTP
status and the server's rendered message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ServiceError

__all__ = ["ServiceClient", "ServiceHTTPError", "FetchedResult"]


class ServiceHTTPError(ServiceError):
    """A non-2xx response from the run server (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)


@dataclass(frozen=True)
class FetchedResult:
    """A run result fetched over the wire, rehydrated to arrays."""

    matrix: np.ndarray
    generation: int
    attempts: int
    n_pc_events: int
    n_adoptions: int
    n_mutations: int
    digest: str | None


class ServiceClient:
    """Talk to one run server at ``base_url``."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
            except Exception:  # noqa: BLE001 - any unparsable body
                message = str(exc)
            raise ServiceHTTPError(exc.code, message) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach run server at {self.base_url}: {exc.reason}") from exc

    # -- API -----------------------------------------------------------------

    def health(self) -> bool:
        """Whether the server answers its liveness probe."""
        try:
            return bool(self._request("GET", "/v1/healthz").get("ok"))
        except ServiceError:
            return False

    def ready(self) -> bool:
        """Whether the server currently admits new submissions.

        ``False`` while the server drains (it answers ``/v1/readyz`` with
        503 + ``Retry-After``) or cannot be reached; a draining server may
        still serve status, events and results.
        """
        try:
            return bool(self._request("GET", "/v1/readyz").get("ready"))
        except ServiceError:
            return False

    def templates(self) -> list[str]:
        """Experiment ids the server accepts as spec templates."""
        return list(self._request("GET", "/v1/templates")["templates"])

    def submit(
        self,
        tenant: str,
        run_id: str,
        *,
        spec=None,
        template: str | None = None,
        config: dict | None = None,
        spec_overrides: dict | None = None,
    ) -> dict:
        """Submit a run: either a full ``spec`` (a
        :class:`~repro.parallel.spec.RunSpec` or its dict form) or a
        ``template`` id with optional ``config``/``spec_overrides``."""
        payload: dict = {"tenant": tenant, "run_id": run_id}
        if template is not None:
            payload["template"] = template
            if config:
                payload["config"] = config
            if spec_overrides:
                payload["spec"] = spec_overrides
        elif spec is not None:
            payload["spec"] = spec if isinstance(spec, dict) else spec.to_dict()
        else:
            raise ServiceError("submit needs a spec or a template id")
        return self._request("POST", "/v1/runs", payload)

    def status(self, tenant: str, run_id: str) -> dict:
        return self._request("GET", f"/v1/runs/{tenant}/{run_id}")

    def preempt(self, tenant: str, run_id: str) -> dict:
        return self._request("POST", f"/v1/runs/{tenant}/{run_id}/preempt", {})

    def resume(self, tenant: str, run_id: str) -> dict:
        return self._request("POST", f"/v1/runs/{tenant}/{run_id}/resume", {})

    def runs(self, tenant: str | None = None) -> list[dict]:
        path = "/v1/runs" if tenant is None else f"/v1/runs/{tenant}"
        return list(self._request("GET", path)["runs"])

    def events(self, tenant: str, run_id: str) -> list[dict]:
        return list(self._request("GET", f"/v1/runs/{tenant}/{run_id}/events")["events"])

    def result(self, tenant: str, run_id: str) -> FetchedResult:
        """Fetch the stored result, rebuilt as a real matrix."""
        payload = self._request("GET", f"/v1/runs/{tenant}/{run_id}/result")
        return FetchedResult(
            matrix=np.array(payload["matrix"], dtype=np.dtype(payload["dtype"])),
            generation=int(payload["generation"]),
            attempts=int(payload["attempts"]),
            n_pc_events=int(payload["n_pc_events"]),
            n_adoptions=int(payload["n_adoptions"]),
            n_mutations=int(payload["n_mutations"]),
            digest=payload.get("digest"),
        )

    def stream(
        self, tenant: str, run_id: str, *, timeout: float | None = None
    ) -> Iterator[tuple[str, dict]]:
        """Follow the run's SSE feed, yielding ``(event_type, payload)``.

        Replays the event log from the start, then yields live until the
        server sends its ``end`` frame (the run reached a terminal state).
        ``timeout`` is the socket read timeout — it must exceed the longest
        silent stretch you expect between events.
        """
        req = urllib.request.Request(f"{self.base_url}/v1/runs/{tenant}/{run_id}/stream")
        try:
            resp = urllib.request.urlopen(
                req, timeout=self.timeout if timeout is None else timeout
            )
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
            except Exception:  # noqa: BLE001
                message = str(exc)
            raise ServiceHTTPError(exc.code, message) from exc
        with resp:
            kind = "message"
            data_lines: list[str] = []
            for raw in resp:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("event:"):
                    kind = line.split(":", 1)[1].strip()
                elif line.startswith("data:"):
                    data_lines.append(line.split(":", 1)[1].strip())
                elif line == "":
                    if data_lines:
                        payload = json.loads("\n".join(data_lines))
                        if kind == "end":
                            return
                        yield kind, payload
                    kind, data_lines = "message", []

    def wait(self, tenant: str, run_id: str, *, timeout: float | None = None) -> dict:
        """Stream until the run is terminal, then return its final status."""
        for _kind, _payload in self.stream(tenant, run_id, timeout=timeout):
            pass
        return self.status(tenant, run_id)
