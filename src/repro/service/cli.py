"""Command-line entry point: ``repro-serve``.

One binary, both sides of the wire::

    repro-serve serve --root /tmp/runs --port 8642 --max-workers 2
    repro-serve submit --tenant alice --run-id demo --template fig2 \\
        --config generations=200 n_ssets=16
    repro-serve watch  --tenant alice --run-id demo
    repro-serve result --tenant alice --run-id demo --out demo.npz
    repro-serve runs
    repro-serve preempt --tenant alice --run-id demo
    repro-serve resume  --tenant alice --run-id demo

``serve`` hosts the run service in the foreground; every other subcommand
is a thin :class:`~repro.service.client.ServiceClient` call against
``--url`` (default ``http://127.0.0.1:8642``).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _parse_kv(pairs: list[str], what: str) -> dict:
    """``k=v`` pairs to a dict, values decoded as JSON when they parse."""
    out: dict = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad {what} {pair!r}: expected key=value")
        try:
            out[key] = json.loads(value)
        except json.JSONDecodeError:
            out[key] = value
    return out


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Host or talk to the multi-tenant simulation run service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="host the run service (foreground)")
    serve.add_argument("--root", required=True, help="run-store directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--max-workers", type=int, default=2, help="worker-process pool size")
    serve.add_argument("--quota", type=int, default=4, help="default active runs per tenant")
    serve.add_argument(
        "--tenant-quota",
        action="append",
        default=[],
        metavar="TENANT=N",
        help="per-tenant quota override (repeatable)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        help="seconds running workers get to finish on SIGTERM before being"
        " killed (journaled as resumable either way)",
    )
    serve.add_argument(
        "--no-recover",
        action="store_true",
        help="skip the automatic startup recovery pass over the store",
    )

    def client_parser(name: str, help_text: str, *, run_key: bool = True):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--url", default="http://127.0.0.1:8642", help="run-server base URL")
        if run_key:
            p.add_argument("--tenant", required=True)
            p.add_argument("--run-id", required=True)
        return p

    submit = client_parser("submit", "submit a run (template or spec file)")
    group = submit.add_mutually_exclusive_group(required=True)
    group.add_argument("--template", help="experiment id to expand (see 'templates')")
    group.add_argument("--spec-file", help="path to a RunSpec JSON file")
    submit.add_argument(
        "--config",
        nargs="*",
        default=[],
        metavar="K=V",
        help="config-factory overrides for --template (e.g. generations=200)",
    )
    submit.add_argument(
        "--spec",
        nargs="*",
        default=[],
        metavar="K=V",
        help="RunSpec field overrides for --template (e.g. n_ranks=4)",
    )

    client_parser("status", "print a run's status")
    watch = client_parser("watch", "follow a run's progress stream to completion")
    watch.add_argument(
        "--timeout", type=float, default=None, help="socket read timeout in seconds"
    )
    result = client_parser("result", "fetch a finished run's result")
    result.add_argument("--out", default=None, help="also save matrix+summary to this .npz")
    client_parser("preempt", "preempt a running job (it requeues)")
    client_parser("resume", "resume a stored run from its latest checkpoint")
    runs = client_parser("runs", "list runs", run_key=False)
    runs.add_argument("--tenant", default=None, help="restrict to one tenant")
    client_parser("templates", "list template ids the server accepts", run_key=False)
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service.server import RunServer

    quotas = {k: int(v) for k, v in _parse_kv(args.tenant_quota, "--tenant-quota").items()}
    server = RunServer(
        args.root,
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
        quota=args.quota,
        quotas=quotas,
        recover=not args.no_recover,
    )
    recovery = server.service.recovery
    if recovery.requeued or recovery.reconciled:
        print(
            f"recovered store {args.root}: {len(recovery.requeued)} run(s) requeued,"
            f" {len(recovery.reconciled)} reconciled"
        )

    def _on_sigterm(signum, frame):  # noqa: ARG001 - signal handler shape
        # Graceful drain: stop admitting (503 + Retry-After), give workers
        # the grace window, then shut the listener down.  Runs on a thread
        # because httpd.shutdown() deadlocks if called from serve_forever's
        # own thread, where the signal handler executes.
        print(f"SIGTERM: draining (grace {args.drain_grace:g} s)", flush=True)
        import threading

        threading.Thread(
            target=server.drain, args=(args.drain_grace,), daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _on_sigterm)
    print(f"serving run store {args.root} on {server.url}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_submit(client, args: argparse.Namespace) -> int:
    if args.template is not None:
        status = client.submit(
            args.tenant,
            args.run_id,
            template=args.template,
            config=_parse_kv(args.config, "--config"),
            spec_overrides=_parse_kv(args.spec, "--spec"),
        )
    else:
        with open(args.spec_file, "r", encoding="utf-8") as fh:
            status = client.submit(args.tenant, args.run_id, spec=json.load(fh))
    print(json.dumps(status, indent=2))
    return 0


def _cmd_watch(client, args: argparse.Namespace) -> int:
    for kind, payload in client.stream(args.tenant, args.run_id, timeout=args.timeout):
        if kind == "progress":
            print(f"generation {payload['generation']}")
        else:
            print(f"[{kind}] {json.dumps(payload)}")
    status = client.status(args.tenant, args.run_id)
    print(f"final state: {status['state']}")
    return 0 if status["state"] == "done" else 1


def _cmd_result(client, args: argparse.Namespace) -> int:
    fetched = client.result(args.tenant, args.run_id)
    print(
        f"run {args.tenant}/{args.run_id}: generation {fetched.generation},"
        f" {fetched.attempts} attempt(s), matrix {fetched.matrix.shape}"
        f" {fetched.matrix.dtype}"
    )
    if args.out:
        np.savez(
            args.out,
            matrix=fetched.matrix,
            generation=fetched.generation,
            attempts=fetched.attempts,
        )
        print(f"saved {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)

    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.command == "submit":
            return _cmd_submit(client, args)
        if args.command == "status":
            print(json.dumps(client.status(args.tenant, args.run_id), indent=2))
            return 0
        if args.command == "watch":
            return _cmd_watch(client, args)
        if args.command == "result":
            return _cmd_result(client, args)
        if args.command == "preempt":
            print(json.dumps(client.preempt(args.tenant, args.run_id), indent=2))
            return 0
        if args.command == "resume":
            print(json.dumps(client.resume(args.tenant, args.run_id), indent=2))
            return 0
        if args.command == "runs":
            for run in client.runs(args.tenant):
                print(
                    f"{run['tenant']}/{run['run_id']}: {run['state']}"
                    f" (generation {run['generation']})"
                )
            return 0
        if args.command == "templates":
            for tid in client.templates():
                print(tid)
            return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise SystemExit(f"unknown command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
