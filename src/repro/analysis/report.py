"""Plain-text table rendering for experiment drivers and benches.

Every table/figure bench prints its rows through these helpers so the
output reads like the paper's tables next to our measured/modelled values.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "format_seconds"]


def format_seconds(value: float) -> str:
    """Compact time formatting: µs/ms/s picked by magnitude."""
    if value < 0:
        return f"-{format_seconds(-value)}"
    if value < 1e-3:
        return f"{value * 1e6:.2f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    if value < 600:
        return f"{value:.2f}s"
    return f"{value / 60:.1f}min"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Align ``rows`` under ``headers`` (first column left, rest right)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(cells):
        parts = [
            row[0].ljust(widths[0]) if len(row) > 0 else "",
        ] + [row[i].rjust(widths[i]) for i in range(1, len(row))]
        lines.append("  ".join(parts))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series(
    pairs: Sequence[tuple[object, object]], x_label: str = "x", y_label: str = "y",
    title: str | None = None,
) -> str:
    """Two-column rendering of an (x, y) series — figure data in text form."""
    return render_table([x_label, y_label], pairs, title=title)
