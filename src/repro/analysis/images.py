"""Image export: population snapshots and lattices as portable graymaps.

The paper's Fig. 2 is literally a picture of the population matrix.  These
writers produce the same pictures as binary PGM files (viewable everywhere,
zero dependencies): defection probability 0 (cooperate) renders white,
1 (defect) renders black, and each matrix cell becomes a ``scale x scale``
pixel block so small populations are still visible.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ExperimentError

__all__ = ["write_pgm", "population_image", "lattice_image"]


def write_pgm(gray: np.ndarray, path: str | Path) -> Path:
    """Write a (rows, cols) uint8 array as a binary PGM (P5) file."""
    arr = np.asarray(gray)
    if arr.ndim != 2 or arr.size == 0:
        raise ExperimentError(f"image array must be non-empty 2-D, got {arr.shape}")
    if arr.dtype != np.uint8:
        raise ExperimentError(f"image array must be uint8, got {arr.dtype}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = f"P5\n{arr.shape[1]} {arr.shape[0]}\n255\n".encode()
    path.write_bytes(header + arr.tobytes())
    return path


def _upscale(arr: np.ndarray, scale: int) -> np.ndarray:
    if scale < 1:
        raise ExperimentError(f"scale must be >= 1, got {scale}")
    return np.repeat(np.repeat(arr, scale, axis=0), scale, axis=1)


def population_image(
    matrix: np.ndarray, path: str | Path, scale: int = 8
) -> Path:
    """Render a population strategy matrix like the paper's Fig. 2 panels.

    Rows are SSets, columns are states; cell brightness is the cooperation
    probability (white = always cooperate, black = always defect).
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise ExperimentError(f"population matrix must be non-empty 2-D, got {arr.shape}")
    if arr.min() < 0 or arr.max() > 1:
        raise ExperimentError("population matrix entries must lie in [0, 1]")
    gray = np.round((1.0 - arr) * 255).astype(np.uint8)
    return write_pgm(_upscale(gray, scale), path)


def lattice_image(grid: np.ndarray, path: str | Path, scale: int = 4) -> Path:
    """Render a spatial 0/1 (C/D) grid: cooperators white, defectors black."""
    arr = np.asarray(grid)
    if arr.ndim != 2 or arr.size == 0:
        raise ExperimentError(f"grid must be non-empty 2-D, got {arr.shape}")
    if arr.size and set(np.unique(arr)) - {0, 1}:
        raise ExperimentError("grid entries must be 0 (C) or 1 (D)")
    gray = np.where(arr == 0, 255, 0).astype(np.uint8)
    return write_pgm(_upscale(gray, scale), path)
