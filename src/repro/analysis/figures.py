"""Figure-series export: the data behind each figure, as CSV.

The benches render every figure as a text table; for downstream plotting
(matplotlib, gnuplot, a spreadsheet) these helpers write the underlying
series as plain CSV.  Each writer returns the path it wrote.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import ExperimentError

__all__ = ["write_series_csv", "write_matrix_csv", "scaling_points_to_rows"]


def write_series_csv(
    path: str | Path,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write an (x, y, ...) series with a header row; returns the path."""
    if not header:
        raise ExperimentError("header must not be empty")
    for row in rows:
        if len(row) != len(header):
            raise ExperimentError(
                f"row width {len(row)} does not match header width {len(header)}"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def write_matrix_csv(
    path: str | Path,
    row_label: str,
    col_labels: Sequence[object],
    rows: Mapping[object, Sequence[object]],
) -> Path:
    """Write a labelled table (e.g. memory x processors) as CSV."""
    header = [row_label, *[str(c) for c in col_labels]]
    body = []
    for key in rows:
        values = rows[key]
        if len(values) != len(col_labels):
            raise ExperimentError(
                f"row {key!r} has {len(values)} values for {len(col_labels)} columns"
            )
        body.append([key, *values])
    return write_series_csv(path, header, body)


def scaling_points_to_rows(points) -> list[tuple[int, float, float, float]]:
    """Flatten :class:`~repro.perf.scaling.ScalingPoint` series for CSV."""
    return [(pt.n_ranks, pt.seconds, pt.speedup, pt.efficiency) for pt in points]
