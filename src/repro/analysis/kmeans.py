"""Lloyd's k-means clustering (paper §VI-A, ref. [36]).

The paper clusters the final population's strategy vectors with Lloyd
k-means so dominant strategies stand out in the Fig. 2 rendering ("the data
has been clustered using Lloyd k-means clustering, allowing strategies that
are more prevalent to be more easily identified").  We implement the
algorithm from scratch: k-means++ seeding, alternating assignment and
centroid updates, empty clusters reseeded to the farthest point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

__all__ = ["KMeansResult", "lloyd_kmeans"]


class KMeansError(ReproError, ValueError):
    """Invalid k-means inputs."""


@dataclass(frozen=True)
class KMeansResult:
    """Clustering outcome.

    Attributes
    ----------
    centroids:
        (k, d) cluster centres.
    labels:
        (n,) cluster index per point.
    inertia:
        Sum of squared distances of points to their centroids.
    iterations:
        Lloyd iterations executed.
    converged:
        True when assignments stopped changing before the iteration cap.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    converged: bool

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centroids.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Points per cluster."""
        return np.bincount(self.labels, minlength=self.k)


def _kmeanspp_init(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n))
    centroids[0] = data[first]
    d2 = ((data - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = d2.sum()
        if total <= 0:
            centroids[j:] = data[int(rng.integers(0, n))]
            break
        probs = d2 / total
        choice = int(rng.choice(n, p=probs))
        centroids[j] = data[choice]
        d2 = np.minimum(d2, ((data - centroids[j]) ** 2).sum(axis=1))
    return centroids


def lloyd_kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator | None = None,
    max_iter: int = 300,
    n_init: int = 3,
) -> KMeansResult:
    """Cluster ``data`` into ``k`` groups with Lloyd's algorithm.

    Parameters
    ----------
    data:
        (n, d) float array of points (strategy vectors here).
    k:
        Cluster count, 1 <= k <= n.
    rng:
        Seeding randomness; defaults to a fixed-seed generator so the
        clustering itself is reproducible.
    max_iter:
        Iteration cap per restart.
    n_init:
        Independent k-means++ restarts; the lowest-inertia run wins.

    Returns
    -------
    KMeansResult
    """
    pts = np.asarray(data, dtype=np.float64)
    if pts.ndim != 2 or pts.size == 0:
        raise KMeansError(f"data must be a non-empty 2-D array, got shape {pts.shape}")
    n = pts.shape[0]
    if not 1 <= k <= n:
        raise KMeansError(f"k must be in [1, {n}], got {k}")
    if max_iter < 1 or n_init < 1:
        raise KMeansError("max_iter and n_init must be positive")
    if rng is None:
        rng = np.random.default_rng(0)

    best: KMeansResult | None = None
    for _restart in range(n_init):
        centroids = _kmeanspp_init(pts, k, rng)
        labels = np.zeros(n, dtype=np.intp)
        converged = False
        it = 0
        for it in range(1, max_iter + 1):
            # Assignment step.
            d2 = ((pts[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            new_labels = d2.argmin(axis=1)
            # Update step, reseeding empty clusters to the farthest point.
            for j in range(k):
                members = pts[new_labels == j]
                if members.size:
                    centroids[j] = members.mean(axis=0)
                else:
                    worst = int(d2.min(axis=1).argmax())
                    centroids[j] = pts[worst]
                    new_labels[worst] = j
            if np.array_equal(new_labels, labels) and it > 1:
                converged = True
                labels = new_labels
                break
            labels = new_labels
        d2 = ((pts - centroids[labels]) ** 2).sum(axis=1)
        result = KMeansResult(
            centroids=centroids.copy(),
            labels=labels.copy(),
            inertia=float(d2.sum()),
            iterations=it,
            converged=converged,
        )
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
