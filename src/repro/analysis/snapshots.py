"""Population snapshot views — the data behind the paper's Figure 2.

Fig. 2 renders the population as a matrix: one row per SSet's strategy, one
column per state, colour = move (yellow C / blue D).  Panel (a) is the
random initial population; panel (b) the final population with rows grouped
by Lloyd k-means cluster so the dominant (WSLS) block is visible.

Terminals don't do colour reliably, so :func:`render_population` draws the
same matrix in characters ('.' = cooperate, '#' = defect, digits for
intermediate probabilities), and :func:`cluster_sorted` produces the
cluster-grouped row order of panel (b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.kmeans import KMeansResult, lloyd_kmeans
from repro.errors import PopulationError

__all__ = ["ClusteredSnapshot", "cluster_sorted", "render_population"]


@dataclass(frozen=True)
class ClusteredSnapshot:
    """A population matrix reordered by cluster (Fig. 2(b)'s layout).

    Attributes
    ----------
    matrix:
        Rows reordered so same-cluster SSets are adjacent, largest cluster
        first.
    order:
        Original row index of each reordered row.
    kmeans:
        The clustering that produced the order.
    """

    matrix: np.ndarray
    order: np.ndarray
    kmeans: KMeansResult

    def cluster_blocks(self) -> list[tuple[int, int, np.ndarray]]:
        """(cluster_label, size, centroid) per block, in display order."""
        sizes = self.kmeans.cluster_sizes()
        by_size = np.argsort(-sizes, kind="stable")
        return [(int(j), int(sizes[j]), self.kmeans.centroids[j]) for j in by_size if sizes[j]]


def cluster_sorted(matrix: np.ndarray, k: int = 8, rng: np.random.Generator | None = None) -> ClusteredSnapshot:
    """Group the population's rows by k-means cluster, largest first."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise PopulationError(f"population matrix must be non-empty 2-D, got {arr.shape}")
    k = min(k, arr.shape[0])
    result = lloyd_kmeans(arr, k, rng=rng)
    sizes = result.cluster_sizes()
    by_size = np.argsort(-sizes, kind="stable")
    order = np.concatenate(
        [np.flatnonzero(result.labels == j) for j in by_size if sizes[j]]
    )
    return ClusteredSnapshot(matrix=arr[order], order=order, kmeans=result)


_GLYPHS = ".123456789#"


def _glyph(value: float) -> str:
    """Character for a defection probability: '.'=C ... '#'=D."""
    idx = int(round(float(value) * 10))
    return _GLYPHS[max(0, min(10, idx))]


def render_population(
    matrix: np.ndarray, max_rows: int = 40, header: bool = True
) -> str:
    """ASCII rendering of a population matrix (rows = SSets, cols = states).

    Large populations are row-subsampled evenly to ``max_rows``.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise PopulationError(f"population matrix must be non-empty 2-D, got {arr.shape}")
    n, d = arr.shape
    if n > max_rows:
        rows = arr[np.linspace(0, n - 1, max_rows).astype(int)]
        note = f"  ({n} SSets, showing {max_rows} evenly sampled rows)"
    else:
        rows = arr
        note = f"  ({n} SSets)"
    lines = []
    if header:
        lines.append(f"states 0..{d - 1}  ('.'=cooperate, '#'=defect){note}")
    for row in rows:
        lines.append("".join(_glyph(v) for v in row))
    return "\n".join(lines)
