"""Strategy traits: the qualitative properties the IPD literature scores.

The paper's related work (§II) points at Golbeck's trait analysis of
memory-three strategies; Axelrod's classic tournament analysis named the
properties that make strategies succeed.  This module computes those traits
for any memory-*n* strategy (pure or mixed), so evolved populations can be
characterised the way the literature does:

* **niceness** — never the first to defect, scored *behaviourally*: the
  strategy's expected cooperation rate against an unconditional cooperator
  starting from the clean history (states only reachable after one's own
  defection do not count against it — WSLS and GRIM are nice).
* **retaliation** — probability of defecting right after the opponent's
  defection, averaged over states where the opponent just defected.
* **forgiveness** — probability of returning to cooperation after the
  opponent resumes cooperating following a defection (memory >= 2; for
  memory-one it degrades to cooperating on CC... states after exploitation).
* **contrition** — probability of cooperating after one's *own* unprovoked
  defection (the opponent had cooperated).

Each trait is in [0, 1].  The classics land where they should: TFT is nice,
fully retaliatory and fully forgiving; GRIM is nice, fully retaliatory and
unforgiving; ALLD is maximally retaliatory and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StrategyError
from repro.game.markov import stationary_cooperation
from repro.game.states import StateSpace
from repro.game.strategy import Strategy

__all__ = ["StrategyTraits", "traits_of", "population_traits"]


@dataclass(frozen=True)
class StrategyTraits:
    """Trait scores of one strategy (all in [0, 1])."""

    niceness: float
    retaliation: float
    forgiveness: float
    contrition: float

    @property
    def is_nice(self) -> bool:
        """Never the first to defect (within the memory window)."""
        return self.niceness >= 1.0 - 1e-12

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form for tables/CSV."""
        return {
            "niceness": self.niceness,
            "retaliation": self.retaliation,
            "forgiveness": self.forgiveness,
            "contrition": self.contrition,
        }


def _round_bits(state: int, k: int) -> tuple[int, int]:
    """(my, opp) moves k rounds ago in ``state``."""
    chunk = (state >> (2 * k)) & 0b11
    return (chunk >> 1) & 1, chunk & 1


def _states_where(space: StateSpace, predicate) -> list[int]:
    return [s for s in space.iter_states() if predicate(s)]


def traits_of(strategy: Strategy) -> StrategyTraits:
    """Compute the four trait scores for a strategy of any memory depth."""
    space = strategy.space
    if space.memory < 1:
        raise StrategyError("traits need memory >= 1")
    table = np.asarray(strategy.table, dtype=np.float64)
    n = space.memory

    def opp_just_defected(s: int) -> bool:
        return _round_bits(s, 0)[1] == 1

    def opp_resumed_cooperating(s: int) -> bool:
        # Most recent round: opponent cooperated; some earlier round in the
        # window: opponent defected.
        if _round_bits(s, 0)[1] != 0:
            return False
        return any(_round_bits(s, k)[1] == 1 for k in range(1, n))

    def own_unprovoked_defection(s: int) -> bool:
        my, opp = _round_bits(s, 0)
        return my == 1 and opp == 0

    allc = np.zeros(space.n_states, dtype=np.float64)
    niceness = float(stationary_cooperation(space, table, allc, rounds=100))

    retaliate_states = _states_where(space, opp_just_defected)
    retaliation = float(table[retaliate_states].mean())

    if n >= 2:
        forgive_states = _states_where(space, opp_resumed_cooperating)
        forgiveness = float(1.0 - table[forgive_states].mean())
    else:
        # Memory-one cannot see "resumed": score cooperation after the
        # opponent's cooperation regardless of own last move.
        forgive_states = _states_where(space, lambda s: _round_bits(s, 0)[1] == 0)
        forgiveness = float(1.0 - table[forgive_states].mean())

    contrite_states = _states_where(space, own_unprovoked_defection)
    contrition = float(1.0 - table[contrite_states].mean())

    return StrategyTraits(
        niceness=niceness,
        retaliation=retaliation,
        forgiveness=forgiveness,
        contrition=contrition,
    )


def population_traits(matrix: np.ndarray, memory: int | None = None) -> StrategyTraits:
    """Population-mean traits of a strategy matrix (one row per SSet)."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise StrategyError(f"matrix must be non-empty 2-D, got {arr.shape}")
    if memory is None:
        memory = int(round(np.log(arr.shape[1]) / np.log(4)))
    space = StateSpace(memory)
    scores = [traits_of(Strategy(space, row)) for row in arr]
    return StrategyTraits(
        niceness=float(np.mean([t.niceness for t in scores])),
        retaliation=float(np.mean([t.retaliation for t in scores])),
        forgiveness=float(np.mean([t.forgiveness for t in scores])),
        contrition=float(np.mean([t.contrition for t in scores])),
    )
