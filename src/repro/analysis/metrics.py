"""Population-level metrics: who plays what, how cooperative is the world.

These are the quantities the paper's validation study reads off Fig. 2 —
"85% of all SSets have adopted the strategy of [0101], which is WSLS" —
plus standard summaries (cooperativeness, strategy entropy, distance to
named classics).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import PopulationError
from repro.game.strategy import Strategy, named_strategy

__all__ = [
    "strategy_distances",
    "fraction_matching",
    "wsls_fraction",
    "dominant_strategy",
    "mean_defection_probability",
    "strategy_entropy",
    "classify_against_named",
]


def _check_matrix(matrix: np.ndarray) -> np.ndarray:
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise PopulationError(f"population matrix must be non-empty 2-D, got {arr.shape}")
    return arr


def strategy_distances(matrix: np.ndarray, target: Strategy | np.ndarray) -> np.ndarray:
    """Mean absolute per-state deviation of each SSet's strategy from ``target``."""
    arr = _check_matrix(matrix)
    tgt = np.asarray(target.table if isinstance(target, Strategy) else target, dtype=np.float64)
    if tgt.shape != (arr.shape[1],):
        raise PopulationError(
            f"target has {tgt.shape} entries, matrix rows have {arr.shape[1]}"
        )
    return np.abs(arr - tgt).mean(axis=1)


def fraction_matching(
    matrix: np.ndarray, target: Strategy | np.ndarray, tolerance: float = 0.15
) -> float:
    """Fraction of SSets whose strategy sits within ``tolerance`` of ``target``.

    For mixed strategies the tolerance absorbs the probabilistic fuzz around
    a pure attractor (the paper's near-WSLS cluster); for pure strategies
    use a tolerance below ``1 / n_states`` to demand exact equality.
    """
    if not 0 <= tolerance < 1:
        raise PopulationError(f"tolerance must lie in [0, 1), got {tolerance}")
    return float((strategy_distances(matrix, target) <= tolerance).mean())


def wsls_fraction(matrix: np.ndarray, tolerance: float = 0.15) -> float:
    """Fraction of SSets playing (approximately) Win-Stay Lose-Shift.

    The memory depth is inferred from the matrix width.
    """
    arr = _check_matrix(matrix)
    memory = int(round(math.log(arr.shape[1], 4)))
    return fraction_matching(arr, named_strategy("WSLS", memory), tolerance)


def dominant_strategy(matrix: np.ndarray, decimals: int = 2) -> tuple[np.ndarray, float]:
    """The most common strategy (rounded to ``decimals``) and its frequency."""
    arr = _check_matrix(matrix)
    rounded = np.round(arr, decimals)
    uniq, counts = np.unique(rounded, axis=0, return_counts=True)
    best = int(counts.argmax())
    return uniq[best], float(counts[best] / arr.shape[0])


def mean_defection_probability(matrix: np.ndarray) -> float:
    """Population mean of per-state defection probability (0 = saintly)."""
    return float(_check_matrix(matrix).mean())


def strategy_entropy(matrix: np.ndarray, decimals: int = 2) -> float:
    """Shannon entropy (bits) of the rounded-strategy distribution.

    0 for a monomorphic population, ``log2(n_ssets)`` when every SSet is
    unique — a convergence diagnostic for the evolution runs.
    """
    arr = _check_matrix(matrix)
    _, counts = np.unique(np.round(arr, decimals), axis=0, return_counts=True)
    probs = counts / counts.sum()
    return float(-(probs * np.log2(probs)).sum())


def classify_against_named(
    matrix: np.ndarray, tolerance: float = 0.15
) -> dict[str, float]:
    """Fraction of SSets near each classic named strategy.

    Buckets are not exclusive (a strategy can be near two classics at loose
    tolerance); the ``"other"`` entry counts SSets near none of them.
    """
    arr = _check_matrix(matrix)
    memory = int(round(math.log(arr.shape[1], 4)))
    names = ["ALLC", "ALLD", "TFT", "WSLS", "GRIM"]
    out: dict[str, float] = {}
    near_any = np.zeros(arr.shape[0], dtype=bool)
    for name in names:
        dist = strategy_distances(arr, named_strategy(name, memory))
        hit = dist <= tolerance
        out[name] = float(hit.mean())
        near_any |= hit
    out["other"] = float((~near_any).mean())
    return out
