"""Analysis tools: clustering, population metrics, snapshot rendering, reports.

* :mod:`repro.analysis.kmeans` — Lloyd k-means (paper ref. [36]).
* :mod:`repro.analysis.metrics` — WSLS fractions, entropy, cooperativeness.
* :mod:`repro.analysis.snapshots` — Fig. 2-style population matrix views.
* :mod:`repro.analysis.report` — text table rendering for benches.
"""

from repro.analysis.kmeans import KMeansResult, lloyd_kmeans
from repro.analysis.metrics import (
    classify_against_named,
    dominant_strategy,
    fraction_matching,
    mean_defection_probability,
    strategy_distances,
    strategy_entropy,
    wsls_fraction,
)
from repro.analysis.figures import scaling_points_to_rows, write_matrix_csv, write_series_csv
from repro.analysis.images import lattice_image, population_image, write_pgm
from repro.analysis.report import format_seconds, render_series, render_table
from repro.analysis.snapshots import ClusteredSnapshot, cluster_sorted, render_population
from repro.analysis.traits import StrategyTraits, population_traits, traits_of

__all__ = [
    "KMeansResult",
    "lloyd_kmeans",
    "classify_against_named",
    "dominant_strategy",
    "fraction_matching",
    "mean_defection_probability",
    "strategy_distances",
    "strategy_entropy",
    "wsls_fraction",
    "format_seconds",
    "render_series",
    "render_table",
    "ClusteredSnapshot",
    "cluster_sorted",
    "render_population",
    "scaling_points_to_rows",
    "write_matrix_csv",
    "write_series_csv",
    "lattice_image",
    "population_image",
    "write_pgm",
    "StrategyTraits",
    "population_traits",
    "traits_of",
]
