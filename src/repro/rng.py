"""Deterministic random-number management.

The paper's simulations are stochastic in three places: the Nature Agent's
pairwise-comparison draws, the mutation draws, and (for mixed strategies or
noisy play) the per-round move draws.  To make runs reproducible — and to
make the serial and parallel executions produce *bit-identical* population
trajectories — every consumer of randomness gets its own named stream
derived from a single root seed via :class:`numpy.random.SeedSequence`.

Streams are addressed by a hierarchical key such as ``("nature",)`` or
``("rank", 7, "games")``.  The same key always yields the same stream for a
given root seed, regardless of creation order, because the key is hashed
into ``spawn_key`` material rather than relying on sequential ``spawn()``
calls.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["StreamFactory", "stream_for", "derive_seed"]

_U32_MASK = 0xFFFFFFFF


def _key_words(key: Iterable[object]) -> tuple[int, ...]:
    """Hash a hierarchical key into a tuple of uint32 words.

    The textual form of each component feeds a BLAKE2 digest, so distinct
    keys get independent entropy and the mapping is stable across runs and
    Python versions (no reliance on ``hash()``).
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in key:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")  # separator so ("ab",) != ("a","b")
    raw = digest.digest()
    return tuple(
        int.from_bytes(raw[i : i + 4], "little") & _U32_MASK for i in range(0, len(raw), 4)
    )


def derive_seed(root_seed: int, *key: object) -> np.random.SeedSequence:
    """Return the :class:`~numpy.random.SeedSequence` for ``key`` under ``root_seed``."""
    return np.random.SeedSequence(entropy=root_seed, spawn_key=_key_words(key))


def stream_for(root_seed: int, *key: object) -> np.random.Generator:
    """Return a PCG64 generator for the named stream ``key`` under ``root_seed``."""
    return np.random.Generator(np.random.PCG64(derive_seed(root_seed, *key)))


class StreamFactory:
    """Factory of named, independent random streams under one root seed.

    Parameters
    ----------
    root_seed:
        Integer seed controlling the entire simulation.

    Examples
    --------
    >>> f = StreamFactory(42)
    >>> nature = f.stream("nature")
    >>> games0 = f.stream("rank", 0, "games")
    >>> bool((StreamFactory(42).stream("nature").integers(0, 1 << 30, 8)
    ...       == StreamFactory(42).stream("nature").integers(0, 1 << 30, 8)).all())
    True
    """

    __slots__ = ("root_seed", "_prefix", "_cache")

    def __init__(self, root_seed: int, _prefix: tuple[object, ...] = ()) -> None:
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = int(root_seed)
        self._prefix = tuple(_prefix)
        self._cache: dict[tuple[object, ...], np.random.Generator] = {}

    def stream(self, *key: object) -> np.random.Generator:
        """Return the generator for ``key``, creating and caching it on first use.

        Repeated calls with the same key return the *same* generator object,
        so consumers share position in the stream — which is what you want
        when e.g. the Nature Agent draws repeatedly across generations.
        """
        k = self._prefix + tuple(key)
        gen = self._cache.get(k)
        if gen is None:
            gen = stream_for(self.root_seed, *k)
            self._cache[k] = gen
        return gen

    def fresh(self, *key: object) -> np.random.Generator:
        """Return a brand-new generator for ``key``, rewound to the stream start."""
        return stream_for(self.root_seed, *self._prefix, *key)

    def child(self, *key: object) -> "StreamFactory":
        """Return a factory whose streams live under the ``key`` namespace.

        ``factory.child("rank", r).stream("games")`` draws from the same
        stream as ``factory.stream("rank", r, "games")`` (independent cache,
        identical seed derivation).
        """
        return StreamFactory(self.root_seed, self._prefix + tuple(key))

    def __repr__(self) -> str:
        return (
            f"StreamFactory(root_seed={self.root_seed}, prefix={self._prefix!r},"
            f" cached={len(self._cache)})"
        )
