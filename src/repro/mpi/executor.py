"""SPMD launcher for the virtual MPI runtime.

:func:`run_spmd` is the stand-in for ``mpiexec -n P``: it spins up ``P``
threads, hands each its :class:`~repro.mpi.comm.Comm`, runs the same
function everywhere, and collects the per-rank return values.  A crash on
any rank aborts the whole world (like ``MPI_Abort``) and re-raises the first
failure in the caller, with the other ranks' blocked operations unwound via
:class:`~repro.errors.CommAbortError`.

Threads give concurrency, not parallelism (the GIL serialises pure-Python
sections) — which is exactly what a *correctness* substrate needs: identical
message-passing semantics at any rank count that fits in memory.  For true
multi-core execution pass ``backend="process"``, which delegates to
:mod:`repro.mpi.procexec` (ranks as OS processes, same ``Comm`` API, same
results).  Modelled performance at Blue Gene scale is the job of
:mod:`repro.perf`.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import CommAbortError, MPIError, RankCrashError
from repro.logging_util import get_logger
from repro.mpi.comm import Comm, World
from repro.mpi.faults import FaultInjector
from repro.obs.tracer import Tracer, activate

__all__ = ["run_spmd", "SPMDResult", "RespawnRecord"]

_LOG = get_logger("mpi.executor")

#: Keep virtual worlds to a size threads can sustain; larger scales belong
#: to the performance model.
MAX_THREAD_RANKS = 1024


@dataclass(frozen=True)
class RespawnRecord:
    """One replacement process launched under ``on_rank_failure="respawn"``.

    Attributes
    ----------
    rank:
        The rank that was replaced.
    incarnation:
        The replacement's incarnation number (the original process is
        incarnation 0, its first replacement 1, and so on).
    reason:
        Why the previous incarnation was declared dead.
    """

    rank: int
    incarnation: int
    reason: str


@dataclass(frozen=True)
class SPMDResult:
    """Outcome of one SPMD execution.

    Attributes
    ----------
    returns:
        Per-rank return values, indexed by rank.  Under
        ``on_rank_failure="respawn"`` a healed rank's slot holds the value
        returned by its *latest* incarnation.
    world:
        The world the program ran in (counters remain readable).
    failed_ranks:
        Ranks still marked dead when the run finished — died to injected
        faults under ``on_rank_failure="continue"``, or died and were never
        successfully replaced under ``"respawn"`` (empty otherwise).
    respawns:
        Replacement processes launched under ``on_rank_failure="respawn"``
        (empty otherwise); a rank may appear several times if it died
        repeatedly.
    """

    returns: list[Any]
    world: World
    failed_ranks: tuple[int, ...] = ()
    respawns: tuple[RespawnRecord, ...] = ()


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    timeout: float | None = 300.0,
    fault_injector: FaultInjector | None = None,
    on_rank_failure: str = "abort",
    tracer: Tracer | None = None,
    backend: str = "thread",
    shared_memory: bool = True,
    shm_threshold: int | None = None,
    max_respawns: int = 8,
) -> SPMDResult:
    """Run ``fn(comm, *args)`` on ``n_ranks`` virtual ranks and join them.

    Parameters
    ----------
    n_ranks:
        World size (1..1024; bigger scales are modelled, not executed).
    fn:
        The rank program.  Its first argument is the rank's ``Comm``.
    args:
        Extra positional arguments passed to every rank.
    timeout:
        Seconds to wait for completion before aborting the world; ``None``
        waits forever.
    fault_injector:
        Optional chaos: a :class:`~repro.mpi.faults.FaultInjector` attached
        to the world's message delivery and the ranks' ``fault_point`` calls.
    on_rank_failure:
        ``"abort"`` (default): any rank death aborts the world, like
        ``MPI_Abort``.  ``"continue"``: a rank killed by an injected fault
        (:class:`~repro.errors.RankCrashError`) is recorded in
        ``world.failed_ranks`` and the survivors keep running — the
        fault-tolerant runner's mode.  ``"respawn"`` (process backend only):
        like ``"continue"``, but each dead rank's process is additionally
        replaced by a fresh incarnation of the same rank program, which may
        rejoin the computation (see
        :func:`repro.mpi.procexec.run_spmd_process`).
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When given, every network
        operation and every instrumented phase lands on the tracer as
        per-rank timed events (each rank thread is bound to its rank, and
        the tracer is the process-active one for the duration of the run,
        so engine-level instrumentation is attributed too).  ``None``
        (default) keeps tracing off at near-zero cost.
    backend:
        ``"thread"`` (default) runs ranks as threads in this process — the
        correctness substrate.  ``"process"`` delegates to
        :func:`repro.mpi.procexec.run_spmd_process`: ranks as OS processes
        with their own GILs, for real multi-core throughput.  Rank programs
        that follow the deterministic-RNG contract produce bit-identical
        results under either backend.
    shared_memory, shm_threshold:
        Process-backend transport tuning (see
        :func:`repro.mpi.procexec.run_spmd_process`): ndarray/``bytes``
        payload leaves of at least ``shm_threshold`` bytes travel through
        pooled shared-memory segments; ``shared_memory=False`` forces the
        pickle path.  Ignored under the thread backend, whose network is
        zero-copy already.
    max_respawns:
        Total replacement-process budget under
        ``on_rank_failure="respawn"`` (process backend only; ignored
        otherwise).

    Raises
    ------
    The first rank exception, re-raised in the caller, or
    :class:`~repro.errors.MPIError` on timeout.
    """
    if backend == "process":
        from repro.mpi.procexec import run_spmd_process
        from repro.mpi.shm import DEFAULT_THRESHOLD

        return run_spmd_process(
            n_ranks,
            fn,
            args=args,
            timeout=timeout,
            fault_injector=fault_injector,
            on_rank_failure=on_rank_failure,
            tracer=tracer,
            shared_memory=shared_memory,
            shm_threshold=DEFAULT_THRESHOLD if shm_threshold is None else shm_threshold,
            max_respawns=max_respawns,
        )
    if backend != "thread":
        raise MPIError(f"backend must be 'thread' or 'process', got {backend!r}")
    if not 1 <= n_ranks <= MAX_THREAD_RANKS:
        raise MPIError(f"n_ranks must be in [1, {MAX_THREAD_RANKS}], got {n_ranks}")
    if on_rank_failure == "respawn":
        raise MPIError(
            "on_rank_failure='respawn' needs real processes to replace —"
            " use backend='process'"
        )
    if on_rank_failure not in ("abort", "continue"):
        raise MPIError(f"on_rank_failure must be 'abort' or 'continue', got {on_rank_failure!r}")
    world = World(n_ranks, injector=fault_injector, tracer=tracer)
    returns: list[Any] = [None] * n_ranks
    failures: list[tuple[int, BaseException]] = []
    failures_lock = threading.Lock()
    if tracer is not None and tracer.enabled:
        named = tracer.rank_names()
        for rank in range(n_ranks):
            if rank not in named:
                tracer.name_rank(rank, f"rank {rank}")

    def run_rank(rank: int) -> None:
        comm = world.comm(rank)
        if tracer is not None and tracer.enabled:
            tracer.set_rank(rank)
        try:
            returns[rank] = fn(comm, *args)
        except CommAbortError:
            # Secondary casualty of another rank's failure; keep quiet.
            pass
        except RankCrashError as exc:
            if on_rank_failure == "continue":
                # Injected death: this rank is gone, the job survives.
                _LOG.debug("rank %d died to injected fault: %r", rank, exc)
                world.mark_failed(rank, str(exc))
            else:
                with failures_lock:
                    failures.append((rank, exc))
                world.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")
        except BaseException as exc:  # noqa: BLE001 - must not lose rank errors
            with failures_lock:
                failures.append((rank, exc))
            _LOG.debug("rank %d failed: %r", rank, exc)
            world.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=run_rank, args=(rank,), name=f"vmpi-rank-{rank}", daemon=True)
        for rank in range(n_ranks)
    ]
    # While the world runs, the run's tracer is also the process-active one,
    # so rank-agnostic instrumentation (the game engines) reaches it.
    scope = activate(tracer) if tracer is not None else nullcontext()
    with scope:
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout)
            if t.is_alive():
                world.abort("executor timeout")
                for t2 in threads:
                    t2.join(timeout=5.0)
                raise MPIError(f"SPMD program timed out after {timeout} s")

    if failures:
        failures.sort(key=lambda item: item[0])
        rank, exc = failures[0]
        raise exc
    if world.abort_event.is_set():
        # A rank called abort() deliberately (no other exception to blame):
        # surface it — like MPI_Abort, the job did not complete normally.
        raise CommAbortError(world.abort_reason or "world aborted")
    return SPMDResult(
        returns=returns, world=world, failed_ranks=tuple(sorted(world.failed_ranks))
    )
