"""SPMD launcher for the virtual MPI runtime.

:func:`run_spmd` is the stand-in for ``mpiexec -n P``: it spins up ``P``
threads, hands each its :class:`~repro.mpi.comm.Comm`, runs the same
function everywhere, and collects the per-rank return values.  A crash on
any rank aborts the whole world (like ``MPI_Abort``) and re-raises the first
failure in the caller, with the other ranks' blocked operations unwound via
:class:`~repro.errors.CommAbortError`.

Threads give concurrency, not parallelism (the GIL serialises pure-Python
sections) — which is exactly what a *correctness* substrate needs: identical
message-passing semantics at any rank count that fits in memory.  For true
multi-core execution pass ``backend="process"``, which delegates to
:mod:`repro.mpi.procexec` (ranks as OS processes, same ``Comm`` API, same
results).  Modelled performance at Blue Gene scale is the job of
:mod:`repro.perf`.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import CommAbortError, MPIError, RankCrashError
from repro.logging_util import get_logger
from repro.mpi.comm import Comm, World
from repro.mpi.faults import FaultInjector
from repro.obs.tracer import Tracer, activate

__all__ = ["run_spmd", "SPMDResult", "RespawnRecord"]

_LOG = get_logger("mpi.executor")

#: Keep virtual worlds to a size threads can sustain; larger scales belong
#: to the performance model.
MAX_THREAD_RANKS = 1024


@dataclass(frozen=True)
class RespawnRecord:
    """One replacement process launched under ``on_rank_failure="respawn"``.

    Attributes
    ----------
    rank:
        The rank that was replaced.
    incarnation:
        The replacement's incarnation number (the original process is
        incarnation 0, its first replacement 1, and so on).
    reason:
        Why the previous incarnation was declared dead.
    """

    rank: int
    incarnation: int
    reason: str


@dataclass(frozen=True)
class SPMDResult:
    """Outcome of one SPMD execution.

    Attributes
    ----------
    returns:
        Per-rank return values, indexed by rank.  Under
        ``on_rank_failure="respawn"`` a healed rank's slot holds the value
        returned by its *latest* incarnation.
    world:
        The world the program ran in (counters remain readable).
    failed_ranks:
        Ranks still marked dead when the run finished — died to injected
        faults under ``on_rank_failure="continue"``, or died and were never
        successfully replaced under ``"respawn"`` (empty otherwise).
    respawns:
        Replacement processes launched under ``on_rank_failure="respawn"``
        (empty otherwise); a rank may appear several times if it died
        repeatedly.
    """

    returns: list[Any]
    world: World
    failed_ranks: tuple[int, ...] = ()
    respawns: tuple[RespawnRecord, ...] = ()


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    timeout: float | None = 300.0,
    fault_injector: FaultInjector | None = None,
    on_rank_failure: str = "abort",
    tracer: Tracer | None = None,
    backend: str = "thread",
    shared_memory: bool = True,
    shm_threshold: int | None = None,
    max_respawns: int = 8,
    n_hosts: int = 2,
    tcp_options: Any | None = None,
) -> SPMDResult:
    """Run ``fn(comm, *args)`` on ``n_ranks`` virtual ranks and join them.

    Parameters
    ----------
    n_ranks:
        World size (1..1024; bigger scales are modelled, not executed).
    fn:
        The rank program.  Its first argument is the rank's ``Comm``.
    args:
        Extra positional arguments passed to every rank.
    timeout:
        Seconds to wait for completion before aborting the world; ``None``
        waits forever.
    fault_injector:
        Optional chaos: a :class:`~repro.mpi.faults.FaultInjector` attached
        to the world's message delivery and the ranks' ``fault_point`` calls.
    on_rank_failure:
        ``"abort"`` (default): any rank death aborts the world, like
        ``MPI_Abort``.  ``"continue"``: a rank killed by an injected fault
        (:class:`~repro.errors.RankCrashError`) is recorded in
        ``world.failed_ranks`` and the survivors keep running — the
        fault-tolerant runner's mode.  ``"respawn"`` (process backend only):
        like ``"continue"``, but each dead rank's process is additionally
        replaced by a fresh incarnation of the same rank program, which may
        rejoin the computation (see
        :func:`repro.mpi.procexec.run_spmd_process`).
    tracer:
        Optional :class:`~repro.obs.Tracer`.  When given, every network
        operation and every instrumented phase lands on the tracer as
        per-rank timed events (each rank thread is bound to its rank, and
        the tracer is the process-active one for the duration of the run,
        so engine-level instrumentation is attributed too).  ``None``
        (default) keeps tracing off at near-zero cost.
    backend:
        ``"thread"`` (default) runs ranks as threads in this process — the
        correctness substrate.  ``"process"`` delegates to
        :func:`repro.mpi.procexec.run_spmd_process`: ranks as OS processes
        with their own GILs, for real multi-core throughput.  ``"tcp"``
        delegates to :func:`repro.mpi.hostexec.run_spmd_tcp`: ranks spread
        over ``n_hosts`` OS-process "hosts" talking length-prefixed frames
        over loopback TCP sockets — the multi-host substrate with
        partition-tolerant reconnection.  Rank programs that follow the
        deterministic-RNG contract produce bit-identical results under any
        backend.
    shared_memory, shm_threshold:
        Process-backend transport tuning (see
        :func:`repro.mpi.procexec.run_spmd_process`): ndarray/``bytes``
        payload leaves of at least ``shm_threshold`` bytes travel through
        pooled shared-memory segments; ``shared_memory=False`` forces the
        pickle path.  Ignored under the thread backend, whose network is
        zero-copy already.
    max_respawns:
        Total replacement budget under ``on_rank_failure="respawn"``
        (process and tcp backends; ignored otherwise).
    n_hosts, tcp_options:
        TCP-backend tuning: the number of host processes the ranks are
        dealt across, and a :class:`repro.mpi.tcp.TcpOptions` bundle of
        socket knobs (heartbeats, reconnect backoff, unreachability
        grace).  Ignored under the other backends.

    Raises
    ------
    The first rank exception, re-raised in the caller, or
    :class:`~repro.errors.MPIError` on timeout.
    """
    if backend == "process":
        from repro.mpi.procexec import run_spmd_process
        from repro.mpi.shm import DEFAULT_THRESHOLD

        return run_spmd_process(
            n_ranks,
            fn,
            args=args,
            timeout=timeout,
            fault_injector=fault_injector,
            on_rank_failure=on_rank_failure,
            tracer=tracer,
            shared_memory=shared_memory,
            shm_threshold=DEFAULT_THRESHOLD if shm_threshold is None else shm_threshold,
            max_respawns=max_respawns,
        )
    if backend == "tcp":
        from repro.mpi.hostexec import run_spmd_tcp

        return run_spmd_tcp(
            n_ranks,
            fn,
            args=args,
            timeout=timeout,
            fault_injector=fault_injector,
            on_rank_failure=on_rank_failure,
            tracer=tracer,
            n_hosts=n_hosts,
            tcp_options=tcp_options,
            max_respawns=max_respawns,
        )
    if backend != "thread":
        raise MPIError(f"backend must be 'thread', 'process' or 'tcp', got {backend!r}")
    if not 1 <= n_ranks <= MAX_THREAD_RANKS:
        raise MPIError(f"n_ranks must be in [1, {MAX_THREAD_RANKS}], got {n_ranks}")
    if on_rank_failure == "respawn":
        raise MPIError(
            "on_rank_failure='respawn' needs real processes to replace —"
            " use backend='process'"
        )
    if on_rank_failure not in ("abort", "continue"):
        raise MPIError(f"on_rank_failure must be 'abort' or 'continue', got {on_rank_failure!r}")
    world = World(n_ranks, injector=fault_injector, tracer=tracer)
    returns: dict[int, Any] = {}
    failures: list[tuple[int, BaseException]] = []
    failures_lock = threading.Lock()
    if tracer is not None and tracer.enabled:
        named = tracer.rank_names()
        for rank in range(n_ranks):
            if rank not in named:
                tracer.name_rank(rank, f"rank {rank}")

    def run_rank(rank: int) -> None:
        comm = world.comm(rank)
        if tracer is not None and tracer.enabled:
            tracer.set_rank(rank)
        try:
            value = fn(comm, *args)
            with failures_lock:
                returns[rank] = value
        except CommAbortError:
            # Secondary casualty of another rank's failure; keep quiet.
            pass
        except RankCrashError as exc:
            if on_rank_failure == "continue":
                # Injected death: this rank is gone, the job survives.
                _LOG.debug("rank %d died to injected fault: %r", rank, exc)
                world.mark_failed(rank, str(exc))
            else:
                with failures_lock:
                    failures.append((rank, exc))
                world.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")
        except BaseException as exc:  # noqa: BLE001 - must not lose rank errors
            with failures_lock:
                failures.append((rank, exc))
            _LOG.debug("rank %d failed: %r", rank, exc)
            world.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")

    threads: list[threading.Thread] = []
    threads_lock = threading.Lock()

    def _launch(rank: int) -> None:
        t = threading.Thread(
            target=run_rank, args=(rank,), name=f"vmpi-rank-{rank}", daemon=True
        )
        with threads_lock:
            threads.append(t)
        t.start()

    def _spawn_joiners(new_ranks: tuple[int, ...]) -> None:
        # World.grow() landed: give each new rank its own thread running the
        # same program (it will detect joiner status and rejoin).
        if tracer is not None and tracer.enabled:
            for rank in new_ranks:
                if rank not in tracer.rank_names():
                    tracer.name_rank(rank, f"rank {rank}")
        for rank in new_ranks:
            _launch(rank)

    world.spawn_hook = _spawn_joiners
    deadline = None if timeout is None else time.monotonic() + timeout
    # While the world runs, the run's tracer is also the process-active one,
    # so rank-agnostic instrumentation (the game engines) reaches it.
    scope = activate(tracer) if tracer is not None else nullcontext()
    with scope:
        for rank in range(n_ranks):
            _launch(rank)
        # The thread list can grow mid-run (World.grow spawns joiners), so
        # the join loop polls a snapshot instead of iterating once.
        while True:
            with threads_lock:
                snapshot = list(threads)
            if not any(t.is_alive() for t in snapshot):
                with threads_lock:
                    if len(threads) == len(snapshot):
                        break
                continue  # a joiner raced in; re-snapshot
            if deadline is not None and time.monotonic() >= deadline:
                world.abort("executor timeout")
                for t in snapshot:
                    t.join(timeout=5.0)
                raise MPIError(f"SPMD program timed out after {timeout} s")
            time.sleep(0.01)

    if failures:
        failures.sort(key=lambda item: item[0])
        rank, exc = failures[0]
        raise exc
    if world.abort_event.is_set():
        # A rank called abort() deliberately (no other exception to blame):
        # surface it — like MPI_Abort, the job did not complete normally.
        raise CommAbortError(world.abort_reason or "world aborted")
    return SPMDResult(
        returns=[returns.get(rank) for rank in range(world.size)],
        world=world,
        failed_ranks=tuple(sorted(world.failed_ranks)),
    )
