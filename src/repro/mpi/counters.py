"""Communication counters: the virtual network's observable traffic.

The paper's scaling behaviour is a story about communication structure —
how many messages the Nature Agent's broadcasts and fitness gathers put on
the collective tree and torus networks.  Because our MPI is virtual, we can
count *exactly*: every point-to-point message, every collective call, every
byte.  The tests assert the algorithm's communication pattern (e.g. a PC
event costs one broadcast plus two point-to-point fitness returns), and the
performance model is calibrated against these counts.

Fault injection and fault tolerance report through the same tallies:

* ``fault_drop`` / ``fault_delay`` / ``fault_duplicate`` / ``fault_corrupt``
  — injected message faults, one call per fired fault;
* ``fault_crash`` / ``fault_hang`` — injected rank deaths at
  :meth:`~repro.mpi.comm.Comm.fault_point`;
* ``reliable_send`` / ``reliable_retry`` / ``reliable_dedup`` /
  ``reliable_corrupt`` — the acknowledged-messaging layer's traffic
  (successful sends, resends after missing acks, duplicate frames
  re-acknowledged and discarded, frames failing their checksum);
* ``heartbeat`` / ``degradation`` — the fault-tolerant runner's liveness
  checks and graceful-degradation steps;
* ``net.*`` — the TCP transport's socket-level traffic
  (:mod:`repro.mpi.tcp`): ``net.connect`` / ``net.reconnect`` (dial-ins,
  with bytes = 0), ``net.frames`` / ``net.frames_resent`` (data frames on
  the wire, bytes = framed length), ``net.dedup`` (resumed frames dropped
  by the receiver's sequence window), ``net.heartbeat`` (keepalive pings),
  ``net.partition`` / ``net.conn_reset`` / ``net.slow_link`` (injected
  network faults that fired), and ``net.peer_unreachable`` (a peer host
  crossed its grace deadline).  Absorbed into run metrics as
  ``mpi.net.*`` and rendered by ``python -m repro.obs.report``.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["OpCount", "CommCounters"]


@dataclass
class OpCount:
    """Message and byte tally for one operation type."""

    calls: int = 0
    messages: int = 0
    bytes: int = 0

    def add(self, messages: int, nbytes: int) -> None:
        self.calls += 1
        self.messages += messages
        self.bytes += nbytes


@dataclass
class CommCounters:
    """Thread-safe per-communicator traffic statistics.

    Point-to-point traffic is tallied under ``"send"``; each collective is
    tallied both as its own logical operation (``"bcast"``, ``"gather"``,
    ...) and through the point-to-point messages it is built from.
    """

    ops: dict[str, OpCount] = field(default_factory=lambda: defaultdict(OpCount))
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, op: str, messages: int = 1, nbytes: int = 0) -> None:
        """Tally one call of ``op`` carrying ``messages`` messages / ``nbytes`` bytes."""
        with self._lock:
            self.ops[op].add(messages, nbytes)

    def get(self, op: str) -> OpCount:
        """The tally for ``op`` (zeros when never recorded)."""
        with self._lock:
            found = self.ops.get(op)
            return OpCount(found.calls, found.messages, found.bytes) if found else OpCount()

    def total_point_to_point(self) -> OpCount:
        """All point-to-point traffic, including collective-internal messages."""
        return self.get("send")

    def snapshot(self) -> dict[str, OpCount]:
        """A consistent copy of all tallies."""
        with self._lock:
            return {k: OpCount(v.calls, v.messages, v.bytes) for k, v in self.ops.items()}

    def absorb(self, snapshot: dict[str, OpCount]) -> None:
        """Fold another counter set's :meth:`snapshot` into this one.

        The process-backend executor tallies traffic per rank process and
        merges the per-process snapshots into the world's counters here.
        """
        with self._lock:
            for op, count in snapshot.items():
                tally = self.ops[op]
                tally.calls += count.calls
                tally.messages += count.messages
                tally.bytes += count.bytes

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{k}={v.calls}c/{v.messages}m/{v.bytes}B" for k, v in sorted(self.snapshot().items())
        )
        return f"CommCounters({parts})"
