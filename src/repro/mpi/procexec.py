"""Process-based SPMD executor: ranks as OS processes, true multi-core play.

The thread executor (:mod:`repro.mpi.executor`) is the *correctness*
substrate — faithful message-passing semantics at any rank count, but the
GIL serialises pure-Python sections, so game play gains no wall-clock
parallelism.  This module is the *throughput* substrate: the same rank
programs, the same :class:`~repro.mpi.comm.Comm` API (tagged p2p,
collectives, reliable delivery, timeouts, fault points), but every rank is
a real operating-system process with its own interpreter and its own GIL.

Transport
---------
Each rank owns one :class:`multiprocessing.Queue` as its inbound wire.  A
rank's :class:`~repro.mpi.comm.Comm` sees a world whose remote mailboxes
pickle ``(source, tag, payload, nbytes, msg_id)`` frames onto the
destination's queue; a pump thread in the destination process drains its
queue into a regular in-process :class:`~repro.mpi.comm._Mailbox`, so tag
matching, wildcards, timeouts and non-overtaking order are byte-for-byte
the thread backend's logic.  Abort, shutdown and failed-rank state live in
shared memory (:class:`multiprocessing.Event` plus a flag array), which
blocked receives already poll.

Unlike the thread backend's zero-copy network, every payload crosses a
process boundary by value: payloads must be picklable, and senders get a
private copy semantics for free (mutating a buffer after ``send`` cannot
corrupt the message).

Large ndarray (and ``bytes``) leaves skip the pipe entirely by default:
the zero-copy shared-memory path (:mod:`repro.mpi.shm`) writes them into
pooled, ref-counted ``multiprocessing.shared_memory`` segments and ships
only small ``(shape, dtype, segment, offset)`` descriptors in the pickled
frame — a broadcast of a big strategy table writes one segment total
instead of re-serialising per destination.  The pump thread materialises a
private copy on delivery, so application semantics (and trajectories) are
bit-identical to the pickle path; ``shared_memory=False`` disables the
path, and the parent unlinks every segment after the join, so injected
process crashes cannot leak ``/dev/shm`` entries.

Determinism
-----------
Rank programs that derive all randomness from their rank and seed (the
:class:`~repro.rng.StreamFactory` contract) produce bit-identical results
under either backend — the backend-parity tests assert identical
population trajectories from :class:`~repro.parallel.runner.ParallelSimulation`.
Fault injection stays deterministic too: each process evaluates the same
pure ``(seed, kind, key)`` hash schedule against its own send counter, and
the fired-fault logs are merged back into the caller's injector.  Under
``on_rank_failure="continue"`` an injected ``crash``/``hang`` kills the
*process* (a real ``os._exit``), which is exactly the failure mode the
fault-tolerant runner is built to survive.

Respawn
-------
``on_rank_failure="respawn"`` goes one step further than ``"continue"``:
when a non-zero rank's process dies (injected crash, SIGKILL, a hang the
protocol layer declared dead), the parent launches a *replacement
incarnation* — a fresh process running the same rank program with
``world.incarnation`` incremented, on a **fresh inbound queue**.  The fresh
queue matters twice over: a process killed while blocked in
``Queue.get`` can leave the queue's reader lock held (poisoning it for any
successor), and the old queue may hold frames addressed to the dead
incarnation.  The parent therefore pre-creates spare queues and retargets
the rank via a shared ``queue_index`` array that senders consult on every
delivery.  What a replacement *does* is the rank program's business: the
fault-tolerant runner's workers see ``incarnation > 0`` and perform a
rejoin handshake with the Nature rank instead of starting from scratch.
Replacements are budgeted by ``max_respawns``; a rank that cannot be
replaced stays degraded exactly as under ``"continue"``.

Observability
-------------
When a tracer is passed, every rank process records into a private tracer
sharing the parent's clock epoch and a rank-striped flow-id space; the
per-process buffers are shipped back with the rank results and merged into
the caller's tracer, so one Perfetto export shows all rank tracks with
send→recv arrows intact.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as stdlib_queue
import threading
import time
from typing import Any, Callable, Sequence

from repro.errors import CommAbortError, MPIError, RankCrashError
from repro.logging_util import get_logger
from repro.mpi import shm as _shm
from repro.mpi.comm import Comm, World, _Mailbox
from repro.mpi.counters import CommCounters
from repro.mpi.executor import RespawnRecord, SPMDResult
from repro.mpi.faults import FaultInjector, FaultPlan
from repro.obs.tracer import NULL_TRACER, Tracer, activate

__all__ = ["run_spmd_process", "MAX_PROCESS_RANKS"]

_LOG = get_logger("mpi.procexec")

#: OS processes are far heavier than threads; virtual worlds beyond this
#: belong to the thread backend or the performance model.
MAX_PROCESS_RANKS = 256

#: Exit code of a rank process killed by an injected fault under
#: ``on_rank_failure="continue"`` — a deliberate, recognisable process death.
_CRASH_EXIT = 70

#: Extra seconds granted after the deadline for result-queue stragglers.
_DRAIN_GRACE = 0.5

#: How long a rank reported failed (e.g. declared hung by the protocol
#: layer) may stay alive before the respawn path terminates its process.
_RESPAWN_HANG_GRACE = 1.0


class _RemoteMailbox:
    """A peer rank's mailbox as seen from this process: deliver-only.

    Frames are pre-pickled *in the sending thread*, so an unpicklable
    payload raises in the sender (where the bug is) instead of killing the
    queue's feeder thread asynchronously.  With a shared-memory pool
    attached, large leaves are swapped for segment descriptors first, so
    the frame that crosses the pipe stays small.

    The destination's physical queue is resolved *per delivery* through the
    shared ``queue_index`` array: when a rank is respawned onto a spare
    queue, in-flight senders immediately address the replacement's wire and
    the dead incarnation's (possibly lock-poisoned) queue is abandoned.
    """

    __slots__ = ("_dest", "_queues", "_index", "_pool")

    def __init__(self, dest: int, queues, index, pool=None) -> None:
        self._dest = dest
        self._queues = queues
        self._index = index
        self._pool = pool

    def deliver(
        self, source: int, tag: int, payload: Any, nbytes: int, msg_id: int = 0
    ) -> None:
        if self._pool is not None:
            payload = _shm.encode_payload(payload, self._pool)
        try:
            frame = pickle.dumps(
                (source, tag, payload, nbytes, msg_id), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            # The frame never reaches the wire: hand back the segment
            # references the encode just charged, or the slots stay busy
            # (and the pool silently shrinks) for the rest of the run.
            if self._pool is not None:
                _shm.release_payload(payload, self._pool)
            raise MPIError(
                f"payload for tag={tag} is not picklable, which the process"
                f" backend requires: {exc!r}"
            ) from exc
        try:
            self._queues[self._index[self._dest]].put(frame)
        except Exception:
            if self._pool is not None:
                _shm.release_payload(payload, self._pool)
            raise


#: Sentinel frame that stops a pump thread.
_PUMP_STOP = b""


def _pump(queue, mailbox: _Mailbox, pool=None, world=None) -> None:
    """Drain one rank's inbound queue into its in-process mailbox.

    Shared-memory descriptors are materialised here — before tag matching —
    so the mailbox (and everything above it) only ever sees ordinary
    payloads, exactly as on the pickle path.
    """
    while True:
        frame = queue.get()
        if frame == _PUMP_STOP:
            return
        source, tag, payload, nbytes, msg_id = pickle.loads(frame)
        if pool is not None:
            try:
                payload = _shm.decode_payload(payload, pool)
            except Exception as exc:  # pragma: no cover - defensive
                _LOG.exception("shm materialisation failed")
                if world is not None:
                    world.abort(f"shm materialisation failed: {exc!r}")
                continue
        mailbox.deliver(source, tag, payload, nbytes, msg_id)


class _KillSafeEvent:
    """Event over a lock-free shared byte: survives waiters dying mid-wait.

    ``multiprocessing.Event`` hides a condition variable whose sleeper
    bookkeeping a killed waiter corrupts permanently: ``set()`` then blocks
    forever waiting for the dead process to acknowledge its wakeup.  Under
    ``on_rank_failure="respawn"`` hung ranks are terminated while blocked on
    exactly these events (``fault_point``'s hang loop sleeps on the stop
    event), so the process world signals stop/abort through a raw shared
    byte and waiters poll it — no cross-process locks to poison.
    """

    _POLL = 0.02

    def __init__(self, ctx) -> None:
        self._flag = ctx.Value("b", 0, lock=False)

    def is_set(self) -> bool:
        return bool(self._flag.value)

    def set(self) -> None:
        self._flag.value = 1

    def wait(self, timeout: float | None = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._flag.value:
            pause = self._POLL
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    return False
                pause = min(pause, remaining)
            time.sleep(pause)
        return True


class _SharedState:
    """The cross-process slice of world state (picklable, spawn-safe)."""

    def __init__(
        self, ctx, size: int, shm_table=None, shm_threshold: int = _shm.DEFAULT_THRESHOLD
    ) -> None:
        self.abort_event = _KillSafeEvent(ctx)
        self.stop_event = _KillSafeEvent(ctx)
        self.failed_flags = ctx.Array("b", size, lock=False)
        self.abort_reason_buf = ctx.Array("c", 1024)
        # queue_index[r] is the slot (into the run's queue list) currently
        # serving as rank r's inbound wire; respawn retargets it to a spare.
        self.queue_index = ctx.Array("i", list(range(size)), lock=False)
        self.shm_table = shm_table
        self.shm_threshold = shm_threshold


class _ProcWorld:
    """One rank process's view of the world — duck-types :class:`World`.

    Everything :class:`~repro.mpi.comm.Comm` and the rank programs touch is
    here: local mailbox + remote deliver-only mailboxes, per-process
    counters/tracer/injector, and the shared abort/stop/failure state.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        queues,
        shared: _SharedState,
        result_queue,
        injector: FaultInjector | None,
        tracer: Tracer,
        incarnation: int = 0,
    ) -> None:
        self.rank = rank
        self.size = size
        #: 0 for an original rank process; respawned replacements count up.
        #: Rank programs use this to tell a cold start from a rejoin.
        self.incarnation = incarnation
        self.counters = CommCounters()
        self.tracer = tracer
        self.injector = injector
        self._shared = shared
        self._result_queue = result_queue
        self.abort_event = shared.abort_event
        self.stop_event = shared.stop_event
        self.shm_pool = (
            _shm.ShmPool(
                shared.shm_table,
                threshold=shared.shm_threshold,
                counters=self.counters,
                tracer=tracer if tracer.enabled else None,
            )
            if shared.shm_table is not None and _shm.SHM_AVAILABLE
            else None
        )
        self.local_mailbox = _Mailbox()
        self.mailboxes: list[Any] = [
            self.local_mailbox
            if r == rank
            else _RemoteMailbox(r, queues, shared.queue_index, self.shm_pool)
            for r in range(size)
        ]

    @property
    def abort_reason(self) -> str | None:
        raw = self._shared.abort_reason_buf.value
        return raw.decode("utf-8", "replace") if raw else None

    def abort(self, reason: str) -> None:
        """Poison the world: every blocked or future operation raises."""
        buf = self._shared.abort_reason_buf
        with buf.get_lock():
            if not buf.value:
                buf.value = reason.encode("utf-8", "replace")[:1023]
        self.abort_event.set()
        self._wake_local()

    def shutdown(self) -> None:
        """Gracefully end the job: wake hung/blocked ranks without poisoning."""
        self.stop_event.set()
        self._wake_local()

    def mark_failed(self, rank: int, reason: str = "") -> None:
        """Record ``rank`` as dead; receivers waiting on it fail fast.

        Idempotent: once the flag is set, further declarations are silent —
        the parent hears about each death exactly once, so a Nature-side
        re-declaration cannot make the respawn path suspect a (by then
        healthy) replacement.
        """
        if self._shared.failed_flags[rank]:
            self._wake_local()
            return
        self._shared.failed_flags[rank] = 1
        self._result_queue.put(("failed", rank, reason))
        self._wake_local()

    def mark_alive(self, rank: int) -> None:
        """Clear ``rank``'s failed flag: a replacement incarnation rejoined."""
        self._shared.failed_flags[rank] = 0
        self._wake_local()

    def is_failed(self, rank: int) -> bool:
        """Whether ``rank`` has been marked dead (shared across processes)."""
        return bool(self._shared.failed_flags[rank])

    def is_unreachable(self, rank: int) -> bool:
        """Queues between local processes never partition."""
        return False

    def grow(self, n: int) -> tuple[int, ...]:
        raise MPIError(
            "the process backend cannot grow mid-run: its queue fabric is"
            " sized at launch — use backend='thread' or backend='tcp' for"
            " elastic membership"
        )

    def shrink(self, ranks) -> tuple[int, ...]:
        raise MPIError(
            "the process backend cannot shrink mid-run: use backend='thread'"
            " or backend='tcp' for elastic membership"
        )

    def _wake_local(self) -> None:
        with self.local_mailbox.lock:
            self.local_mailbox.ready.notify_all()


def _ship(result_queue, message: tuple) -> None:
    """Put a control message and make a best effort to flush it."""
    try:
        result_queue.put(message)
    except Exception:  # pragma: no cover - the parent will see a hard death
        _LOG.exception("rank result could not be shipped")


def _rank_main(
    rank: int,
    n_ranks: int,
    fn: Callable[..., Any],
    args: Sequence[Any],
    queues,
    shared: _SharedState,
    result_queue,
    fault_plan: FaultPlan | None,
    on_rank_failure: str,
    trace_epoch: float | None,
    rank_name: str | None,
    flow_start: int,
    incarnation: int = 0,
) -> None:
    """Entry point of one rank process (module-level for spawn support)."""
    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    tracing = trace_epoch is not None
    tracer = (
        Tracer(epoch=trace_epoch, flow_start=flow_start) if tracing else None
    )
    world = _ProcWorld(
        rank, n_ranks, queues, shared, result_queue,
        injector, tracer if tracer is not None else NULL_TRACER,
        incarnation=incarnation,
    )
    # The queue slot serving this rank is fixed for this incarnation's
    # lifetime (the parent only retargets it after the process dies).
    pump = threading.Thread(
        target=_pump,
        args=(queues[shared.queue_index[rank]], world.local_mailbox, world.shm_pool, world),
        name=f"vmpi-pump-{rank}",
        daemon=True,
    )
    pump.start()
    comm = Comm(world, rank)
    if tracer is not None:
        tracer.set_rank(rank)
        if rank_name:
            tracer.name_rank(rank, rank_name)

    def _epilogue() -> tuple[dict, list, list]:
        counters = world.counters.snapshot()
        fault_log = list(injector.log) if injector is not None else []
        events = tracer.events() if tracer is not None else []
        return counters, fault_log, events

    scope = activate(tracer) if tracer is not None else None
    try:
        if scope is not None:
            scope.__enter__()
        try:
            value = fn(comm, *args)
        finally:
            if scope is not None:
                scope.__exit__(None, None, None)
    except CommAbortError:
        # Secondary casualty of another rank's failure; keep quiet.
        counters, fault_log, events = _epilogue()
        _ship(result_queue, ("quiet", rank, incarnation, None, counters, fault_log, events))
    except RankCrashError as exc:
        counters, fault_log, events = _epilogue()
        if on_rank_failure in ("continue", "respawn"):
            # Injected death becomes real death: mark the rank failed in
            # shared memory (survivors' receives fail fast), ship the
            # bookkeeping, then kill the process for real.
            _LOG.debug("rank %d dying to injected fault: %r", rank, exc)
            world.mark_failed(rank, str(exc))
            _ship(
                result_queue,
                ("selfdead", rank, incarnation, str(exc), counters, fault_log, events),
            )
            result_queue.close()
            result_queue.join_thread()
            os._exit(_CRASH_EXIT)
        world.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")
        _ship(
            result_queue,
            ("err", rank, incarnation, _pickle_exc(exc), counters, fault_log, events),
        )
    except BaseException as exc:  # noqa: BLE001 - must not lose rank errors
        _LOG.debug("rank %d failed: %r", rank, exc)
        counters, fault_log, events = _epilogue()
        world.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")
        _ship(
            result_queue,
            ("err", rank, incarnation, _pickle_exc(exc), counters, fault_log, events),
        )
    else:
        counters, fault_log, events = _epilogue()
        try:
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            err = MPIError(f"rank {rank} returned an unpicklable value: {exc!r}")
            world.abort(str(err))
            _ship(
                result_queue,
                ("err", rank, incarnation, _pickle_exc(err), counters, fault_log, events),
            )
        else:
            _ship(
                result_queue,
                ("done", rank, incarnation, value, counters, fault_log, events),
            )
    result_queue.close()
    result_queue.join_thread()


def _pickle_exc(exc: BaseException) -> bytes:
    """Exception as a pickle blob, degraded to ``MPIError(repr)`` if needed."""
    try:
        return pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return pickle.dumps(
            MPIError(f"unpicklable rank exception: {exc!r}"),
            protocol=pickle.HIGHEST_PROTOCOL,
        )


def _pick_context(start_method: str | None):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    # fork keeps closures and non-module functions working and starts far
    # faster; spawn is the portable fallback.
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_spmd_process(
    n_ranks: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    timeout: float | None = 300.0,
    fault_injector: FaultInjector | None = None,
    on_rank_failure: str = "abort",
    tracer: Tracer | None = None,
    start_method: str | None = None,
    shared_memory: bool = True,
    shm_threshold: int = _shm.DEFAULT_THRESHOLD,
    max_respawns: int = 8,
) -> SPMDResult:
    """Run ``fn(comm, *args)`` on ``n_ranks`` OS processes and join them.

    The process-backend twin of :func:`repro.mpi.executor.run_spmd` — same
    parameters, same :class:`~repro.mpi.executor.SPMDResult`, same abort /
    timeout / ``on_rank_failure`` semantics — plus ``start_method`` to force
    a :mod:`multiprocessing` start method (default: ``fork`` when available,
    else ``spawn``; under ``spawn`` the rank program, its arguments and all
    payloads must be picklable, and the rank program must be importable at
    module level).

    ``shared_memory`` (default on) routes ndarray/``bytes`` payload leaves
    of at least ``shm_threshold`` bytes through pooled
    :mod:`multiprocessing.shared_memory` segments instead of the frame
    pickle (see :mod:`repro.mpi.shm`); ``shared_memory=False`` is the
    escape hatch that forces every byte through the pipe.  Either way the
    delivered values — and therefore trajectories — are identical.

    ``on_rank_failure="respawn"`` extends ``"continue"``: each non-zero
    rank whose process dies is replaced by a fresh incarnation on a fresh
    inbound queue (see the module docstring), up to ``max_respawns``
    replacements per run.  Rank 0 is never respawned — a dead master is the
    supervisor layer's problem (checkpoint/restart), not the executor's.

    Returns an :class:`SPMDResult` whose ``world`` is a parent-side
    :class:`~repro.mpi.comm.World` container holding the merged traffic
    counters and failure records of all rank processes.
    """
    if not 1 <= n_ranks <= MAX_PROCESS_RANKS:
        raise MPIError(f"n_ranks must be in [1, {MAX_PROCESS_RANKS}], got {n_ranks}")
    if on_rank_failure not in ("abort", "continue", "respawn"):
        raise MPIError(
            "on_rank_failure must be 'abort', 'continue' or 'respawn',"
            f" got {on_rank_failure!r}"
        )
    respawning = on_rank_failure == "respawn"
    if max_respawns < 0:
        raise MPIError(f"max_respawns must be >= 0, got {max_respawns}")
    ctx = _pick_context(start_method)
    tracing = tracer is not None and tracer.enabled
    if tracing:
        named = tracer.rank_names()
        for rank in range(n_ranks):
            if rank not in named:
                tracer.name_rank(rank, f"rank {rank}")
    rank_names = tracer.rank_names() if tracing else {}

    # Respawn needs a fresh wire per replacement (a process killed inside
    # Queue.get can leave the reader lock held, and the old queue may hold
    # frames addressed to the dead incarnation), so spare queues are created
    # up front — multiprocessing queues cannot be minted after the children
    # exist under the spawn start method.
    n_spares = max_respawns if respawning else 0
    queues = [ctx.Queue() for _ in range(n_ranks + n_spares)]
    result_queue = ctx.Queue()
    shm_table = (
        _shm.SegmentTable(ctx)
        if shared_memory and _shm.SHM_AVAILABLE and n_ranks > 1
        else None
    )
    shared = _SharedState(ctx, n_ranks, shm_table=shm_table, shm_threshold=shm_threshold)
    fault_plan = fault_injector.plan if fault_injector is not None else None
    # Stripes are reserved from the parent tracer (never reused across runs),
    # so per-process flow ids stay globally unique even when one tracer
    # accumulates several executor runs (restarts, resumed simulations) —
    # and respawned incarnations reserve a fresh stripe of their own.
    incarnations = [0] * n_ranks
    next_spare = n_ranks
    respawn_log: list[RespawnRecord] = []

    def _spawn(rank: int, incarnation: int):
        proc = ctx.Process(
            target=_rank_main,
            args=(
                rank, n_ranks, fn, tuple(args), queues, shared, result_queue,
                fault_plan, on_rank_failure,
                tracer.epoch if tracing else None,
                rank_names.get(rank),
                tracer.reserve_flow_stripe() if tracing else 0,
                incarnation,
            ),
            name=f"vmpi-rank-{rank}" if incarnation == 0 else f"vmpi-rank-{rank}.{incarnation}",
            daemon=True,
        )
        proc.start()
        return proc

    processes = [_spawn(rank, 0) for rank in range(n_ranks)]

    returns: list[Any] = [None] * n_ranks
    failures: list[tuple[int, BaseException]] = []
    failure_reasons: dict[int, str] = {}
    merged_counters = CommCounters()
    merged_faults: list = []
    merged_events: list = []
    pending = set(range(n_ranks))
    dead_since: dict[int, float] = {}
    # Ranks reported failed (e.g. declared hung by the protocol layer) whose
    # process is still alive: terminated for respawn after a grace period,
    # unless the report turns out stale (flag cleared by a heal).
    suspects: dict[int, float] = {}
    deadline = None if timeout is None else time.monotonic() + timeout
    timed_out = False

    def _respawn(rank: int, reason: str) -> bool:
        """Replace ``rank``'s dead process; False when out of budget."""
        nonlocal next_spare
        if rank == 0 or next_spare >= len(queues):
            return False
        proc = processes[rank]
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - last-resort cleanup
            proc.kill()
            proc.join(timeout=5.0)
        shared.queue_index[rank] = next_spare
        next_spare += 1
        incarnations[rank] += 1
        record = RespawnRecord(rank=rank, incarnation=incarnations[rank], reason=reason)
        respawn_log.append(record)
        merged_counters.record("respawn", messages=0, nbytes=0)
        if tracing:
            tracer.instant(
                "respawn", cat="mpi.fault", rank=rank,
                args={"incarnation": incarnations[rank], "reason": reason},
            )
        suspects.pop(rank, None)
        dead_since.pop(rank, None)
        _LOG.debug("respawning rank %d as incarnation %d (%s)", rank, incarnations[rank], reason)
        processes[rank] = _spawn(rank, incarnations[rank])
        pending.add(rank)
        return True

    def _consume(message) -> None:
        kind, rank = message[0], message[1]
        if kind == "failed":
            failure_reasons.setdefault(rank, message[2])
            if respawning and rank != 0:
                suspects.setdefault(rank, time.monotonic())
            return
        _kind, _rank, incarnation, payload, counters, fault_log, events = message
        merged_counters.absorb(counters)
        merged_faults.extend(fault_log)
        merged_events.extend(events)
        if incarnation != incarnations[rank]:
            # A stale incarnation's parting words: keep the bookkeeping
            # (counters, fault log, trace events), ignore the verdict —
            # the replacement owns this rank's slot now.
            return
        if kind == "done":
            returns[rank] = payload
            if incarnation > 0:
                # A replacement ran its program to completion: whatever the
                # rank program's own recovery protocol did, the rank is not
                # failed anymore.  (The FT runner's rejoin handshake usually
                # cleared the flag already; this covers raw rank programs.)
                shared.failed_flags[rank] = 0
        elif kind == "err":
            failures.append((rank, pickle.loads(payload)))
        elif kind == "selfdead":
            failure_reasons.setdefault(rank, payload)
            if respawning:
                if rank == 0:
                    # Nature cannot be respawned: surface the death as a
                    # failure so the supervisor layer can restart the run.
                    failures.append(
                        (0, MPIError(f"the Nature rank (0) died and cannot be respawned:"
                                     f" {payload}"))
                    )
                    shared.abort_event.set()
                else:
                    # Keep the rank pending: the death sweep below respawns
                    # it once the process object reports an exit code.
                    return
        pending.discard(rank)
        dead_since.pop(rank, None)

    while pending:
        try:
            message = result_queue.get(timeout=0.05)
        except stdlib_queue.Empty:
            message = None
        if message is not None:
            _consume(message)
            continue
        now = time.monotonic()
        for rank in sorted(pending):
            proc = processes[rank]
            if proc.is_alive() or proc.exitcode is None:
                if respawning and rank in suspects:
                    if not shared.failed_flags[rank]:
                        suspects.pop(rank, None)  # healed: the report was stale
                    elif now - suspects[rank] >= _RESPAWN_HANG_GRACE:
                        # Declared dead but the process lives (injected
                        # hang): kill it so the sweep can respawn it.  Only
                        # ever reached for ranks flagged failed, so a
                        # healthy replacement is never terminated.
                        _LOG.debug("terminating hung rank %d for respawn", rank)
                        suspects.pop(rank, None)
                        proc.terminate()
                continue
            # Dead without a report: give queue stragglers a short grace,
            # then classify the death from the exit code alone.  A death
            # already reported via selfdead needs no grace.
            first_seen = dead_since.setdefault(rank, now)
            if now - first_seen < _DRAIN_GRACE and rank not in failure_reasons:
                continue
            pending.discard(rank)
            if proc.exitcode == 0:
                continue  # reported result already consumed or rank was quiet
            if respawning and rank != 0:
                shared.failed_flags[rank] = 1
                reason = failure_reasons.setdefault(
                    rank, f"rank process died with exit code {proc.exitcode}"
                )
                if not _respawn(rank, reason):
                    _LOG.debug("respawn budget exhausted; rank %d stays degraded", rank)
                continue
            if proc.exitcode == _CRASH_EXIT and on_rank_failure == "continue":
                shared.failed_flags[rank] = 1
                failure_reasons.setdefault(rank, "rank process died to an injected fault")
            else:
                exc = MPIError(f"rank {rank} process died with exit code {proc.exitcode}")
                failures.append((rank, exc))
                shared.abort_event.set()
        if deadline is not None and now >= deadline:
            timed_out = True
            break

    if timed_out:
        buf = shared.abort_reason_buf
        with buf.get_lock():
            if not buf.value:
                buf.value = b"executor timeout"
        shared.abort_event.set()
        for proc in processes:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
    for proc in processes:
        proc.join(timeout=10.0)
        if proc.is_alive():  # pragma: no cover - last-resort cleanup
            proc.terminate()
            proc.join(timeout=5.0)
    # Late reports (e.g. results racing the deadline) still carry counters.
    while True:
        try:
            _consume(result_queue.get_nowait())
        except stdlib_queue.Empty:
            break
    for queue in queues:
        queue.cancel_join_thread()
        queue.close()
    result_queue.cancel_join_thread()
    result_queue.close()
    if shm_table is not None:
        # Every rank process is joined (or terminated) by now; sweep the
        # whole pool so crashed ranks cannot leak /dev/shm segments.
        destroyed = shm_table.destroy_all()
        if destroyed:
            _LOG.debug("unlinked %d shared-memory segments", destroyed)

    if fault_injector is not None and merged_faults:
        with fault_injector._lock:
            fault_injector.log.extend(merged_faults)
    if tracing and merged_events:
        tracer.absorb_events(merged_events)

    world = World(n_ranks, injector=fault_injector, tracer=tracer)
    world.counters.absorb(merged_counters.snapshot())
    failed = {r for r in range(n_ranks) if shared.failed_flags[r]}
    for rank in sorted(failed):
        world.failed_ranks.add(rank)
        world.failure_reasons.setdefault(rank, failure_reasons.get(rank, ""))
    if shared.abort_event.is_set():
        world.abort_event.set()
        world.abort_reason = shared.abort_reason_buf.value.decode("utf-8", "replace") or None

    if timed_out:
        raise MPIError(f"SPMD program timed out after {timeout} s")
    if failures:
        failures.sort(key=lambda item: item[0])
        _rank, exc = failures[0]
        raise exc
    if world.abort_event.is_set():
        raise CommAbortError(world.abort_reason or "world aborted")
    return SPMDResult(
        returns=returns,
        world=world,
        failed_ranks=tuple(sorted(failed)),
        respawns=tuple(respawn_log),
    )
