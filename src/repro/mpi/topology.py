"""Cartesian rank-to-coordinate mappings.

Blue Gene partitions are 3-D torus blocks; the paper maps MPI ranks onto
them in the default XYZT order.  These helpers convert between linear ranks
and torus coordinates, so both the parallel algorithm (for locality-aware
placement experiments) and the machine model (for hop counting) agree on
where a rank lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MPIError

__all__ = ["CartTopology"]


@dataclass(frozen=True)
class CartTopology:
    """A row-major Cartesian layout of ``prod(dims)`` ranks.

    Parameters
    ----------
    dims:
        Extent along each dimension (any dimensionality >= 1).
    periodic:
        Whether neighbours wrap around (torus); Blue Gene links do.
    """

    dims: tuple[int, ...]
    periodic: bool = True

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise MPIError(f"dims must be positive, got {self.dims}")
        object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))

    @property
    def size(self) -> int:
        """Total rank count."""
        return int(np.prod(self.dims))

    def coords(self, rank: int) -> tuple[int, ...]:
        """Coordinates of ``rank`` (row-major: last dimension fastest)."""
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} out of range [0, {self.size})")
        out = []
        rem = rank
        for extent in reversed(self.dims):
            out.append(rem % extent)
            rem //= extent
        return tuple(reversed(out))

    def rank(self, coords: tuple[int, ...]) -> int:
        """Linear rank of ``coords`` (wrapping when periodic)."""
        if len(coords) != len(self.dims):
            raise MPIError(f"need {len(self.dims)} coordinates, got {len(coords)}")
        rank = 0
        for c, extent in zip(coords, self.dims):
            if self.periodic:
                c %= extent
            elif not 0 <= c < extent:
                raise MPIError(f"coordinate {c} out of range [0, {extent})")
            rank = rank * extent + c
        return rank

    def shift(self, rank: int, dim: int, displacement: int) -> int:
        """Neighbour of ``rank`` displaced along ``dim`` (torus wrap)."""
        if not 0 <= dim < len(self.dims):
            raise MPIError(f"dim {dim} out of range")
        coords = list(self.coords(rank))
        coords[dim] += displacement
        return self.rank(tuple(coords))

    def hop_distance(self, a: int, b: int) -> int:
        """Manhattan hop count between two ranks (shortest torus route)."""
        ca, cb = self.coords(a), self.coords(b)
        hops = 0
        for x, y, extent in zip(ca, cb, self.dims):
            d = abs(x - y)
            hops += min(d, extent - d) if self.periodic else d
        return hops

    def max_hop_distance(self) -> int:
        """Network diameter in hops."""
        if self.periodic:
            return sum(extent // 2 for extent in self.dims)
        return sum(extent - 1 for extent in self.dims)

    def average_hops_from(self, rank: int) -> float:
        """Mean hop distance from ``rank`` to every rank (incl. itself)."""
        per_dim = []
        for x, extent in zip(self.coords(rank), self.dims):
            ds = np.abs(np.arange(extent) - x)
            if self.periodic:
                ds = np.minimum(ds, extent - ds)
            per_dim.append(ds.mean())
        return float(sum(per_dim))
