"""Zero-copy shared-memory transport for the process backend.

The process backend (:mod:`repro.mpi.procexec`) moves every message by
value: frames are pickled onto a :class:`multiprocessing.Queue` and squeezed
through a pipe, so a broadcast of an ndarray strategy table is serialised
once per tree edge and copied through the kernel twice per hop.  Strategy
tables grow as :math:`4^n` with memory depth, and the paper's algorithm
broadcasts them every generation — at memory-4-and-up table sizes the pipe
becomes the dominant cost of a generation.

This module supplies the fast path: payloads whose leaves are large numpy
arrays (or large ``bytes``, which is what the reliable layer's pickled
blobs are) travel as :class:`ShmRef` descriptors — ``(shape, dtype,
segment, offset)`` plus a content digest — while the bytes themselves sit
in a :mod:`multiprocessing.shared_memory` segment written **once**.  The
pickled frame carries only the small control portion; a broadcast shares a
single segment across every destination instead of re-serialising per rank.

Design
------
Segments are *pooled* and *ref-counted* through a :class:`SegmentTable`
created by the parent process and inherited by every rank process:

* a sender placing an array acquires a free slot (reusing an
  existing segment of sufficient size when one is idle), writes the bytes,
  and bumps the slot's refcount once per destination;
* the receiving pump thread materialises a private copy on delivery, so
  application semantics are exactly the pickle path's (mutating a received
  table cannot corrupt anyone else) — the reference is then tied to the
  materialised array's lifetime, which lets a forwarding rank re-share the
  *same* segment with its own subtree children without copying;
* when the refcount returns to zero the slot is reclaimed for reuse —
  segments are recycled, not unlinked, during the run;
* the **parent** unlinks every segment after the join
  (:meth:`SegmentTable.destroy_all`), so a rank killed mid-run by an
  injected crash cannot leak ``/dev/shm`` entries.

Integrity follows the reliable layer's split: the descriptor rides inside
the (checksummed) frame, and carries a BLAKE2 digest of the content
computed at share time.  Digest verification on materialise is opt-in
(``verify=True``) — the reliable layer already re-checksums materialised
blobs end-to-end, and the plain path never verified pickled payloads
either, so the default keeps materialisation memcpy-bound.

Everything degrades gracefully: when the pool is exhausted (or the payload
is below ``threshold``) the leaf simply stays in the pickled frame, and
``shared_memory=False`` on :func:`~repro.mpi.procexec.run_spmd_process`
disables the path entirely.  Trajectories are bit-identical either way —
the transport moves the same values, only through different memory.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import weakref
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any

import numpy as np

from repro.errors import MPIError
from repro.logging_util import get_logger

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds only
    _shared_memory = None

__all__ = [
    "SHM_AVAILABLE",
    "DEFAULT_THRESHOLD",
    "MAX_SEGMENTS",
    "SEGMENT_PREFIX",
    "ShmRef",
    "SegmentTable",
    "ShmPool",
    "register_shareable",
    "shareable_fields",
    "encode_payload",
    "decode_payload",
    "release_payload",
]

_LOG = get_logger("mpi.shm")

#: Whether :mod:`multiprocessing.shared_memory` exists on this platform.
SHM_AVAILABLE = _shared_memory is not None

#: Leaves smaller than this stay in the pickled frame: below ~64 KiB the
#: descriptor round-trip costs more than the pipe does.
DEFAULT_THRESHOLD = 64 * 1024

#: Slots per job.  The pool recycles aggressively (a slot frees as soon as
#: every materialised copy is dropped), so a small table suffices; an
#: exhausted pool falls back to the pickle path rather than blocking.
MAX_SEGMENTS = 64

#: All segment names start with this, so tests (and operators) can audit
#: ``/dev/shm`` for leaks without knowing job ids.
SEGMENT_PREFIX = "repro-shm"

_JOB_SEQ = itertools.count()

#: Segments are sized in powers of two at or above this, so differently
#: sized tables of the same order of magnitude reuse each other's slots.
_MIN_SEGMENT = 64 * 1024


def _segment_size(nbytes: int) -> int:
    size = _MIN_SEGMENT
    while size < nbytes:
        size <<= 1
    return size


def _digest(view) -> bytes:
    return hashlib.blake2b(view, digest_size=8).digest()


_TRACKER_LOCK = threading.RLock()


class _tracker_suppressed:
    """Context manager making resource-tracker (un)registration a no-op.

    Segment lifecycle belongs to the parent's :meth:`SegmentTable.destroy_all`
    sweep; letting each rank's resource tracker also "clean up" would
    double-unlink live segments and warn about "leaks" whenever a rank exits
    first (on Python < 3.13 even plain *attaches* register).  Registration is
    suppressed during construction — and unregistration during ``unlink()``,
    which unregisters unconditionally — rather than balanced with explicit
    unregister calls: the tracker's cache is one set shared by every forked
    process, so unbalanced pairs from different ranks make it spam KeyErrors.
    """

    def __enter__(self):
        _TRACKER_LOCK.acquire()
        try:
            from multiprocessing import resource_tracker
        except ImportError:  # pragma: no cover - exotic builds only
            self._tracker = None
            return self
        self._tracker = resource_tracker
        self._register = resource_tracker.register
        self._unregister = resource_tracker.unregister
        original_register = self._register
        original_unregister = self._unregister

        def _skip_register(rname, rtype):
            if rtype != "shared_memory":  # pragma: no cover - nothing else here
                original_register(rname, rtype)

        def _skip_unregister(rname, rtype):
            if rtype != "shared_memory":  # pragma: no cover - nothing else here
                original_unregister(rname, rtype)

        resource_tracker.register = _skip_register
        resource_tracker.unregister = _skip_unregister
        return self

    def __exit__(self, *exc_info):
        if self._tracker is not None:
            self._tracker.register = self._register
            self._tracker.unregister = self._unregister
        _TRACKER_LOCK.release()
        return False


def _open_segment(name: str, *, create: bool = False, size: int = 0):
    """Construct a ``SharedMemory`` handle the resource tracker never sees."""
    with _tracker_suppressed():
        if create:
            return _shared_memory.SharedMemory(name=name, create=True, size=size)
        return _shared_memory.SharedMemory(name=name)


def _unlink_segment(seg) -> None:
    """Close and unlink ``seg`` without notifying the resource tracker."""
    with _tracker_suppressed():
        seg.close()
        seg.unlink()


@dataclass(frozen=True)
class ShmRef:
    """Wire descriptor of one shared-memory-carried leaf.

    The pickled frame carries this instead of the bytes: which segment
    (``name``/``slot``/``gen``), where in it (``offset`` — always 0 with the
    one-leaf-per-segment pool, kept for wire-format completeness), what to
    rebuild (``shape``/``dtype``/``kind``/``order``) and a content
    ``digest`` for opt-in end-to-end verification.
    """

    slot: int
    gen: int
    name: str
    offset: int
    nbytes: int
    shape: tuple[int, ...]
    dtype: str
    digest: bytes
    kind: str = "ndarray"  # or "bytes"
    #: Memory layout the receiver rebuilds: "C" or "F".  Mirrors pickle's
    #: semantics — F-contiguous arrays keep Fortran order across the wire.
    order: str = "C"


class SegmentTable:
    """Cross-process slot registry: one per job, created by the parent.

    Each slot is (refcount, segment size, generation).  ``size == 0`` means
    the slot has never had a segment; ``refs == 0`` with ``size > 0`` means
    an idle segment is available for reuse.  ``gen`` increments whenever a
    slot's segment is replaced by a larger one, which is how attached
    processes know a cached mapping went stale.
    """

    def __init__(self, ctx, max_segments: int = MAX_SEGMENTS) -> None:
        self.job = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_JOB_SEQ)}"
        self.max_segments = int(max_segments)
        # RLock: release() may run from a GC-triggered finalizer while the
        # same thread already holds the lock inside acquire().
        self.lock = ctx.RLock()
        self.refs = ctx.Array("q", self.max_segments, lock=False)
        self.sizes = ctx.Array("q", self.max_segments, lock=False)
        self.gens = ctx.Array("q", self.max_segments, lock=False)

    def segment_name(self, slot: int) -> str:
        """The OS-level name of ``slot``'s segment."""
        return f"{self.job}-{slot}"

    def release(self, slot: int) -> None:
        """Drop one reference to ``slot`` (idempotence is the caller's job)."""
        with self.lock:
            self.refs[slot] -= 1
            if self.refs[slot] < 0:  # pragma: no cover - double-release guard
                self.refs[slot] = 0

    def destroy_all(self) -> int:
        """Unlink every segment the job ever created; returns the count.

        Called by the parent after the rank processes are joined.  Refcounts
        are ignored deliberately: a crashed rank's references can never be
        released, and at this point no live process will touch the pool
        again — this sweep is what makes injected process death leak-free.
        """
        if _shared_memory is None:  # pragma: no cover - platform gate
            return 0
        destroyed = 0
        with self.lock:
            for slot in range(self.max_segments):
                if self.sizes[slot] <= 0:
                    continue
                try:
                    _unlink_segment(_open_segment(self.segment_name(slot)))
                    destroyed += 1
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
                self.refs[slot] = 0
                self.sizes[slot] = 0
        return destroyed


class _Export:
    """Process-local record of an object currently backed by a slot."""

    __slots__ = ("ref", "slot", "gen", "shmref")

    def __init__(self, obj: Any, slot: int, gen: int, shmref: ShmRef) -> None:
        # bytes cannot be weak-referenced; exports are ndarray-only.
        self.ref = weakref.ref(obj)
        self.slot = slot
        self.gen = gen
        self.shmref = shmref


class ShmPool:
    """One process's handle onto the job's segment pool.

    Owns the process-local attach cache, the export cache that makes
    repeated shares of the same array (broadcast fan-out, tree forwarding)
    reference the segment already written, and the finalizers that return
    references when arrays are garbage-collected.  Thread-safe: the sender
    thread, delayed-delivery timers and the pump thread all use it.

    Lock discipline: the process-local pool lock (``self._lock``) and the
    cross-process ``SegmentTable.lock`` are **never held together** — every
    critical section takes exactly one of the two.  Nesting them in either
    order would let two threads (sender vs. a delayed-delivery timer or a
    GC finalizer) deadlock ABBA-style and hang the run.
    """

    def __init__(
        self,
        table: SegmentTable,
        *,
        threshold: int = DEFAULT_THRESHOLD,
        counters=None,
        tracer=None,
        verify: bool = False,
    ) -> None:
        self.table = table
        self.threshold = max(1, int(threshold))
        self.counters = counters
        self.tracer = tracer
        self.verify = bool(verify)
        self._lock = threading.RLock()
        self._attached: dict[int, tuple[int, Any]] = {}  # slot -> (gen, SharedMemory)
        self._exports: dict[int, _Export] = {}  # id(array) -> export

    # -- bookkeeping ---------------------------------------------------------

    def _count(self, op: str, nbytes: int) -> None:
        if self.counters is not None:
            self.counters.record(op, messages=1, nbytes=nbytes)

    def _instant(self, name: str, args: dict) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(name, cat="mpi.shm", args=args)

    def _prune_exports(self) -> None:
        dead = [key for key, exp in self._exports.items() if exp.ref() is None]
        for key in dead:
            del self._exports[key]

    # -- segment plumbing ----------------------------------------------------

    def _attach(self, slot: int, gen: int):
        with self._lock:
            cached = self._attached.get(slot)
            if cached is not None and cached[0] == gen:
                return cached[1]
            if cached is not None:
                cached[1].close()
                del self._attached[slot]
            try:
                seg = _open_segment(self.table.segment_name(slot))
            except FileNotFoundError as exc:
                raise MPIError(
                    f"shared-memory segment for slot {slot} vanished mid-run"
                    " (descriptor outlived the pool?)"
                ) from exc
            self._attached[slot] = (gen, seg)
            return seg

    def _acquire_slot(self, nbytes: int) -> tuple[int, int] | None:
        """A slot whose segment holds ``nbytes``, refcount pre-set to 1.

        Preference order: smallest idle segment that fits, then a virgin
        slot, then regrowing the smallest idle segment.  Returns
        ``(slot, gen)`` or ``None`` when every slot is busy (caller falls
        back to the pickle path).
        """
        table = self.table
        need = _segment_size(nbytes)
        with table.lock:
            fit = virgin = idle = -1
            for slot in range(table.max_segments):
                if table.refs[slot] != 0:
                    continue
                size = table.sizes[slot]
                if size == 0:
                    if virgin < 0:
                        virgin = slot
                elif size >= nbytes:
                    if fit < 0 or size < table.sizes[fit]:
                        fit = slot
                else:
                    if idle < 0 or size < table.sizes[idle]:
                        idle = slot
            slot = fit if fit >= 0 else (virgin if virgin >= 0 else idle)
            if slot < 0:
                return None
            old_size = table.sizes[slot]
            grow = old_size < nbytes
            table.refs[slot] = 1
            if not grow:
                return slot, table.gens[slot]
            table.sizes[slot] = need
            table.gens[slot] += 1
            gen = table.gens[slot]
        # Virgin slot or regrow: (re)create the segment at `need` bytes.
        # This runs with table.lock *released* — refs[slot] == 1 already
        # reserves the slot against every other acquirer, and taking the
        # pool lock inside table.lock would invert the pool→table order
        # (lock discipline: the two locks are never held together).  No
        # receiver can race the new generation either: its descriptor only
        # exists once share() returns.
        name = table.segment_name(slot)
        if old_size > 0:
            try:
                _unlink_segment(_open_segment(name))
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        try:
            seg = _open_segment(name, create=True, size=need)
        except Exception:
            with table.lock:
                table.refs[slot] = 0
                table.sizes[slot] = 0
            raise
        with self._lock:
            cached = self._attached.pop(slot, None)
            if cached is not None:
                cached[1].close()
            self._attached[slot] = (gen, seg)
        self._count("shm.segments", need)
        return slot, gen

    # -- share / materialise -------------------------------------------------

    def share(self, leaf) -> ShmRef | None:
        """Place ``leaf`` (ndarray or bytes) in the pool; returns a descriptor.

        Adds one reference for the destination this share serves.  A repeat
        share of the same (still-live) ndarray reuses the already written
        segment — that is the broadcast fan-out path.  Returns ``None`` when
        the pool is exhausted; the caller sends the leaf in-frame instead.
        """
        is_array = isinstance(leaf, np.ndarray)
        nbytes = leaf.nbytes if is_array else len(leaf)
        if is_array:
            with self._lock:
                export = self._exports.get(id(leaf))
                if export is not None and export.ref() is not leaf:
                    export = None
            if export is not None:
                # Refcount bump happens outside self._lock (lock discipline:
                # pool and table locks are never held together).  Safe
                # unlocked: the caller's strong reference to ``leaf`` keeps
                # the export's finalizer from firing, so the exporter hold
                # pins refs[slot] >= 1 and the slot cannot be reclaimed
                # between the lookup and this increment.
                with self.table.lock:
                    self.table.refs[export.slot] += 1
                self._count("shm.reuse", nbytes)
                self._instant(
                    "shm_share",
                    {"slot": export.slot, "nbytes": nbytes, "reuse": True},
                )
                return export.shmref
        acquired = self._acquire_slot(nbytes)
        if acquired is None:
            self._count("shm.fallback", nbytes)
            _LOG.debug("shm pool exhausted; %d-byte leaf falls back to pickle", nbytes)
            return None
        slot, gen = acquired
        seg = self._attach(slot, gen)
        if is_array:
            src = np.asarray(leaf)
            # Match the pickle path's layout semantics exactly: F-contiguous
            # arrays cross the wire in Fortran order; everything else
            # (including strided views) arrives as a C-contiguous copy.
            # Layout-sensitive consumers (replica digests hash tobytes())
            # must see the same memory order on both transports.
            order = "F" if src.flags.f_contiguous and not src.flags.c_contiguous else "C"
            dst = np.ndarray(src.shape, dtype=src.dtype, buffer=seg.buf, order=order)
            dst[...] = src
            shmref = ShmRef(
                slot=slot,
                gen=gen,
                name=self.table.segment_name(slot),
                offset=0,
                nbytes=nbytes,
                shape=tuple(src.shape),
                dtype=src.dtype.str,
                digest=_digest(seg.buf[:nbytes]),
                order=order,
            )
        else:
            seg.buf[:nbytes] = leaf
            shmref = ShmRef(
                slot=slot,
                gen=gen,
                name=self.table.segment_name(slot),
                offset=0,
                nbytes=nbytes,
                shape=(nbytes,),
                dtype="bytes",
                digest=_digest(seg.buf[:nbytes]),
                kind="bytes",
            )
        # The acquire ref becomes the receiver's ref.  For ndarrays, add an
        # exporter hold tied to the array's lifetime so fan-out reuses the
        # segment; bytes cannot carry weakrefs, so their shares are one-shot.
        if is_array:
            with self.table.lock:
                self.table.refs[slot] += 1
            with self._lock:
                if len(self._exports) > 256:
                    self._prune_exports()
                self._exports[id(leaf)] = _Export(leaf, slot, gen, shmref)
            weakref.finalize(leaf, self._drop_export, id(leaf), slot)
        self._count("shm", nbytes)
        self._instant("shm_share", {"slot": slot, "nbytes": nbytes, "reuse": False})
        return shmref

    def _drop_export(self, key: int, slot: int) -> None:
        with self._lock:
            export = self._exports.get(key)
            if export is not None and export.slot == slot and export.ref() is None:
                del self._exports[key]
        self.table.release(slot)

    def materialize(self, ref: ShmRef):
        """Rebuild a private copy of a descriptor's content.

        For ndarrays the delivered reference is handed on to the
        materialised copy (released when it is garbage-collected), so a
        forwarding rank can re-share the same segment; ``bytes`` release
        immediately after the copy.
        """
        seg = self._attach(ref.slot, ref.gen)
        if ref.kind == "bytes":
            out: Any = bytes(seg.buf[: ref.nbytes])
            if self.verify and _digest(out) != ref.digest:
                self.table.release(ref.slot)
                raise MPIError(f"shm content digest mismatch for slot {ref.slot}")
            self.table.release(ref.slot)
            return out
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf, order=ref.order)
        out = np.empty(ref.shape, dtype=np.dtype(ref.dtype), order=ref.order)
        out[...] = view
        if self.verify and _digest(seg.buf[: ref.nbytes]) != ref.digest:
            self.table.release(ref.slot)
            raise MPIError(f"shm content digest mismatch for slot {ref.slot}")
        with self._lock:
            self._exports[id(out)] = _Export(out, ref.slot, ref.gen, ref)
        weakref.finalize(out, self._drop_export, id(out), ref.slot)
        return out

    def close(self) -> None:
        """Detach every cached segment mapping (does not unlink)."""
        with self._lock:
            for _gen, seg in self._attached.values():
                try:
                    seg.close()
                except Exception:  # pragma: no cover - buffers may be exported
                    pass
            self._attached.clear()


# -- payload transforms -----------------------------------------------------------

#: Dataclass types whose (listed) fields may carry shareable leaves.  The
#: transform never recurses into unregistered dataclasses — protocol types
#: opt in explicitly (see :mod:`repro.parallel.protocol`).
_SHAREABLE: dict[type, tuple[str, ...]] = {}

#: How deep the transform follows containers before giving up.
_MAX_DEPTH = 4


def register_shareable(cls: type, field_names: tuple[str, ...]) -> None:
    """Declare that ``cls`` (a dataclass) may carry large leaves in ``field_names``."""
    if not is_dataclass(cls):
        raise MPIError(f"register_shareable needs a dataclass, got {cls!r}")
    known = {f.name for f in fields(cls)}
    for name in field_names:
        if name not in known:
            raise MPIError(f"{cls.__name__} has no field {name!r}")
    _SHAREABLE[cls] = tuple(field_names)


def shareable_fields(cls: type) -> tuple[str, ...] | None:
    """The registered shareable fields of ``cls`` (None when unregistered)."""
    return _SHAREABLE.get(cls)


def _rebuild_sequence(obj: Any, out: list) -> Any:
    """Rebuild a list/tuple from transformed items, preserving the type.

    Namedtuple constructors take positional fields, not one iterable, so
    tuple subclasses with ``_fields`` are splatted.
    """
    if not isinstance(obj, tuple):
        return out
    if hasattr(obj, "_fields"):
        return type(obj)(*out)
    return type(obj)(out)


def _encode(obj: Any, pool: ShmPool, depth: int) -> tuple[Any, bool]:
    if isinstance(obj, np.ndarray):
        if obj.nbytes >= pool.threshold:
            ref = pool.share(obj)
            if ref is not None:
                return ref, True
        return obj, False
    if isinstance(obj, bytes):
        if len(obj) >= pool.threshold:
            ref = pool.share(obj)
            if ref is not None:
                return ref, True
        return obj, False
    if depth >= _MAX_DEPTH:
        return obj, False
    if isinstance(obj, (list, tuple)):
        out = []
        changed = False
        for item in obj:
            new, did = _encode(item, pool, depth + 1)
            out.append(new)
            changed = changed or did
        if not changed:
            return obj, False
        return _rebuild_sequence(obj, out), True
    if isinstance(obj, dict):
        changed = False
        out_d = {}
        for key, value in obj.items():
            new, did = _encode(value, pool, depth + 1)
            out_d[key] = new
            changed = changed or did
        return (out_d, True) if changed else (obj, False)
    names = _SHAREABLE.get(type(obj))
    if names:
        updates = {}
        for name in names:
            value = getattr(obj, name)
            if value is None:
                continue
            new, did = _encode(value, pool, depth + 1)
            if did:
                updates[name] = new
        if updates:
            return replace(obj, **updates), True
    return obj, False


def _decode(obj: Any, pool: ShmPool, depth: int) -> tuple[Any, bool]:
    if isinstance(obj, ShmRef):
        return pool.materialize(obj), True
    if depth >= _MAX_DEPTH:
        return obj, False
    if isinstance(obj, (list, tuple)):
        out = []
        changed = False
        for item in obj:
            new, did = _decode(item, pool, depth + 1)
            out.append(new)
            changed = changed or did
        if not changed:
            return obj, False
        return _rebuild_sequence(obj, out), True
    if isinstance(obj, dict):
        changed = False
        out_d = {}
        for key, value in obj.items():
            new, did = _decode(value, pool, depth + 1)
            out_d[key] = new
            changed = changed or did
        return (out_d, True) if changed else (obj, False)
    names = _SHAREABLE.get(type(obj))
    if names:
        updates = {}
        for name in names:
            value = getattr(obj, name)
            if value is None:
                continue
            new, did = _decode(value, pool, depth + 1)
            if did:
                updates[name] = new
        if updates:
            return replace(obj, **updates), True
    return obj, False


def encode_payload(payload: Any, pool: ShmPool) -> Any:
    """Replace large leaves of ``payload`` with :class:`ShmRef` descriptors.

    Leaves are ndarrays and ``bytes`` at or above the pool's threshold,
    found at the top level, inside lists/tuples/dicts (to depth 4), or in
    the registered fields of opted-in dataclasses.  Anything else — and
    anything the pool cannot place — is returned as-is for the pickle path.
    """
    out, _changed = _encode(payload, pool, 0)
    return out


def decode_payload(payload: Any, pool: ShmPool) -> Any:
    """Materialise every :class:`ShmRef` in ``payload`` (inverse of encode)."""
    out, _changed = _decode(payload, pool, 0)
    return out


def _iter_refs(obj: Any, depth: int):
    if isinstance(obj, ShmRef):
        yield obj
        return
    if depth >= _MAX_DEPTH:
        return
    if isinstance(obj, (list, tuple)):
        for item in obj:
            yield from _iter_refs(item, depth + 1)
    elif isinstance(obj, dict):
        for value in obj.values():
            yield from _iter_refs(value, depth + 1)
    else:
        names = _SHAREABLE.get(type(obj))
        if names:
            for name in names:
                value = getattr(obj, name)
                if value is not None:
                    yield from _iter_refs(value, depth + 1)


def release_payload(payload: Any, pool: ShmPool) -> int:
    """Return the destination references of an encoded-but-never-sent payload.

    :func:`encode_payload` charges one segment reference per descriptor for
    the receiver that will materialise it.  If the frame is then lost before
    it reaches the wire — the control portion fails to pickle, or the queue
    rejects it — those references can never be released by a receiver, so
    the slots would stay busy for the rest of the run and the pool would
    silently degrade to the pickle fallback.  Callers hand the *encoded*
    payload back here; every descriptor's reference is released and counted
    under ``shm.abandoned`` so pool attrition stays observable.  Returns the
    number of references released.
    """
    released = 0
    for ref in _iter_refs(payload, 0):
        pool.table.release(ref.slot)
        pool._count("shm.abandoned", ref.nbytes)
        released += 1
    return released
