"""Virtual MPI runtime — the message-passing substrate of the reproduction.

The paper runs C/MPI on Blue Gene; here the same SPMD programs run on an
in-process virtual communicator with faithful semantics and fully observable
traffic:

* :mod:`repro.mpi.comm` — :class:`World` and :class:`Comm` (point-to-point
  + tree-based collectives).
* :mod:`repro.mpi.executor` — :func:`run_spmd`, the ``mpiexec`` stand-in.
* :mod:`repro.mpi.topology` — Cartesian/torus rank layouts.
* :mod:`repro.mpi.counters` — per-operation message/byte tallies.
* :mod:`repro.mpi.status` — matching wildcards and delivery metadata.
* :mod:`repro.mpi.faults` — seeded fault injection (drops, delays,
  duplicates, corruptions, rank crashes and hangs) for chaos testing.
"""

from repro.mpi.comm import Comm, World, payload_nbytes
from repro.mpi.counters import CommCounters, OpCount
from repro.mpi.executor import SPMDResult, run_spmd
from repro.mpi.faults import (
    CorruptedPayload,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRecord,
)
from repro.mpi.status import ANY_SOURCE, ANY_TAG, MAX_USER_TAG, Status
from repro.mpi.topology import CartTopology

__all__ = [
    "Comm",
    "World",
    "payload_nbytes",
    "CommCounters",
    "OpCount",
    "SPMDResult",
    "run_spmd",
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX_USER_TAG",
    "Status",
    "CartTopology",
    "CorruptedPayload",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
]
