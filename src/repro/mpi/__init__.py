"""Virtual MPI runtime — the message-passing substrate of the reproduction.

The paper runs C/MPI on Blue Gene; here the same SPMD programs run on an
in-process virtual communicator with faithful semantics and fully observable
traffic:

* :mod:`repro.mpi.comm` — :class:`World` and :class:`Comm` (point-to-point
  + tree-based collectives).
* :mod:`repro.mpi.executor` — :func:`run_spmd`, the ``mpiexec`` stand-in.
* :mod:`repro.mpi.topology` — Cartesian/torus rank layouts.
* :mod:`repro.mpi.counters` — per-operation message/byte tallies.
* :mod:`repro.mpi.status` — matching wildcards and delivery metadata.
* :mod:`repro.mpi.faults` — seeded fault injection (drops, delays,
  duplicates, corruptions, rank crashes, hangs and network link faults:
  partitions, slow links, connection resets) for chaos testing.
* :mod:`repro.mpi.tcp` — length-prefixed framed socket transport with
  rendezvous bootstrap, heartbeat keepalive and session resumption.
* :mod:`repro.mpi.hostexec` — :func:`run_spmd_tcp`, the multi-host
  launcher (ranks dealt across OS-process "hosts" over loopback TCP).
"""

from repro.mpi.comm import Comm, World, backoff_wait, payload_nbytes
from repro.mpi.counters import CommCounters, OpCount
from repro.mpi.executor import SPMDResult, run_spmd
from repro.mpi.faults import (
    CorruptedPayload,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRecord,
)
from repro.mpi.hostexec import run_spmd_tcp
from repro.mpi.status import ANY_SOURCE, ANY_TAG, MAX_USER_TAG, Status
from repro.mpi.tcp import NetHello, NetWelcome, TcpOptions
from repro.mpi.topology import CartTopology

__all__ = [
    "Comm",
    "World",
    "backoff_wait",
    "payload_nbytes",
    "CommCounters",
    "OpCount",
    "SPMDResult",
    "run_spmd",
    "run_spmd_tcp",
    "TcpOptions",
    "NetHello",
    "NetWelcome",
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX_USER_TAG",
    "Status",
    "CartTopology",
    "CorruptedPayload",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
]
