"""Deterministic fault injection for the virtual MPI runtime.

At Blue Gene scale (the paper runs on up to 262,144 processors) rank
failures and flaky links are routine, so the runtime they stand on must make
those failure modes *injectable*, *detectable*, and *survivable*.  This
module supplies the first third: a seeded, serialisable
:class:`FaultPlan` and the :class:`FaultInjector` that executes it against
:class:`~repro.mpi.comm.World` message delivery and the rank programs.

Fault kinds
-----------
``drop``
    The message never reaches the destination mailbox.
``delay``
    Delivery is deferred by ``delay_seconds`` (a timer delivers it late).
``duplicate``
    The message is delivered twice (the reliable layer deduplicates).
``corrupt``
    The payload is replaced by a :class:`CorruptedPayload` sentinel carrying
    a checksum-mismatched husk of the original (the reliable layer detects
    and discards it, forcing a resend).
``crash``
    The victim rank raises :class:`~repro.errors.RankCrashError` at its next
    :meth:`~repro.mpi.comm.Comm.fault_point`.
``hang``
    The victim rank goes permanently silent: it blocks until the world is
    shut down or aborted, then dies quietly.
``kill_during_checkpoint``
    The victim dies *mid-checkpoint-write*: the checkpointing rank consults
    :meth:`~repro.mpi.comm.Comm.checkpoint_fault_point` before each write,
    and when the fault fires it leaves a torn file at the final checkpoint
    path and dies.  Exercises the crash-consistent checkpoint machinery
    (atomic writes, content digests, ``latest_valid_parallel_checkpoint``)
    and the recovery supervisor.  Note: ``immune_ranks`` does *not* exempt
    a rank from this kind — checkpoints are written by the Nature rank,
    which is immune to ``crash``/``hang`` by default.
``conn_reset``
    Network kind (TCP transport only): the socket carrying the targeted
    frame is closed abruptly just before the frame is written — a TCP RST
    mid-stream.  The connection supervisor reconnects with capped+jittered
    backoff and resends the unacknowledged window, so the simulation never
    notices (transparent session resumption).
``partition``
    Network kind: like ``conn_reset``, but reconnection attempts on that
    directed host link are refused for ``partition_seconds``.  Short
    partitions heal by resumption; past the transport's grace deadline the
    peer's ranks become locally unreachable
    (:class:`~repro.errors.PeerUnreachableError`) and the usual degradation
    machinery takes over (SSet redistribution or cross-host FTRejoin).
``slow_link``
    Network kind: the targeted frame (and, queued behind it, its
    successors) is delayed ``slow_link_seconds`` before hitting the wire —
    a congested or lossy-and-retransmitting link.

Network kinds are injected at the socket layer by :mod:`repro.mpi.tcp`;
the thread and process backends have no sockets and silently ignore them.
They are keyed by the directed pair's data-frame ordinal — the
``op_index``-th frame sent from ``rank`` to ``dest`` — which is
deterministic whenever each rank's send sequence is.

Determinism
-----------
Every decision is a pure function of ``(plan.seed, kind, key)`` hashed
through BLAKE2 — no shared RNG state, no draw-order races between rank
threads.  Message faults are keyed by the sender's per-rank send counter, so
a rank whose send sequence is deterministic gets a bit-identical fault
schedule on every run; rank faults are keyed by ``(rank, generation)`` and
are *always* bit-reproducible.  Fired faults are recorded as
:class:`FaultRecord` rows — :meth:`FaultInjector.schedule` returns them in a
canonical order so chaos tests can assert two runs saw the same faults.

Plans serialise to plain dicts/JSON (:meth:`FaultPlan.to_json`), so a
failing chaos run can be attached to a bug report and replayed exactly.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field, replace

from repro.errors import FaultPlanError

__all__ = [
    "MESSAGE_FAULT_KINDS",
    "RANK_FAULT_KINDS",
    "CHECKPOINT_FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultRecord",
    "FaultInjector",
    "CorruptedPayload",
]

#: Fault kinds that act on a single message in flight.
MESSAGE_FAULT_KINDS = ("drop", "delay", "duplicate", "corrupt")

#: Fault kinds that act on a whole rank at a generation boundary.
RANK_FAULT_KINDS = ("crash", "hang")

#: Fault kinds that kill the checkpointing rank mid-write.
CHECKPOINT_FAULT_KINDS = ("kill_during_checkpoint",)

#: Fault kinds that act on the socket carrying a directed host link
#: (TCP transport only; other backends have no sockets and ignore them).
NETWORK_FAULT_KINDS = ("partition", "slow_link", "conn_reset")

_ALL_KINDS = (
    MESSAGE_FAULT_KINDS + RANK_FAULT_KINDS + CHECKPOINT_FAULT_KINDS + NETWORK_FAULT_KINDS
)


class CorruptedPayload:
    """Sentinel payload installed by an injected ``corrupt`` fault.

    Carries the estimated byte size of the payload it destroyed, so
    counters still see realistic traffic.  The reliable-messaging layer
    recognises the sentinel (and any checksum mismatch) and treats the
    message as lost.
    """

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int = 0) -> None:
        self.nbytes = int(nbytes)

    def __repr__(self) -> str:
        return f"CorruptedPayload(nbytes={self.nbytes})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CorruptedPayload) and other.nbytes == self.nbytes


@dataclass(frozen=True)
class FaultEvent:
    """One explicitly scheduled fault.

    Message faults (``drop``/``delay``/``duplicate``/``corrupt``) target the
    ``op_index``-th send of ``rank`` (0-based, counted per sender; ``dest``
    optionally narrows the match).  Rank faults (``crash``/``hang``) fire at
    ``generation`` on ``rank``.  Network faults
    (``partition``/``slow_link``/``conn_reset``) target the ``op_index``-th
    *data frame* of the directed link from ``rank`` to ``dest`` (both
    required — a link has two ends).
    """

    kind: str
    rank: int
    op_index: int | None = None
    dest: int | None = None
    generation: int | None = None
    delay: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _ALL_KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r} (know {_ALL_KINDS})")
        if self.kind in MESSAGE_FAULT_KINDS and self.op_index is None:
            raise FaultPlanError(f"{self.kind} events need op_index (nth send of the rank)")
        if self.kind in RANK_FAULT_KINDS + CHECKPOINT_FAULT_KINDS and self.generation is None:
            raise FaultPlanError(f"{self.kind} events need a generation")
        if self.kind in NETWORK_FAULT_KINDS and (self.op_index is None or self.dest is None):
            raise FaultPlanError(
                f"{self.kind} events need op_index (nth frame of the link) and dest"
            )

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "kind": self.kind,
            "rank": self.rank,
            "op_index": self.op_index,
            "dest": self.dest,
            "generation": self.generation,
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            rank=int(data["rank"]),
            op_index=None if data.get("op_index") is None else int(data["op_index"]),
            dest=None if data.get("dest") is None else int(data["dest"]),
            generation=None if data.get("generation") is None else int(data["generation"]),
            delay=None if data.get("delay") is None else float(data["delay"]),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, reproducible chaos schedule.

    Combines per-message fault probabilities, per-(rank, generation) rank
    fault probabilities, and explicitly scheduled :class:`FaultEvent` rows.
    All probabilistic decisions derive from ``seed`` alone (see module
    docstring), so the same plan replays the same chaos.

    ``immune_ranks`` are exempt from ``crash``/``hang`` (probabilistic *and*
    explicit); by default rank 0 — the Nature Agent — is immune, because the
    runner recovers from worker loss but a dead master needs
    checkpoint/restart instead.  ``kill_during_checkpoint`` deliberately
    ignores ``immune_ranks``: it exists to kill the checkpointing (Nature)
    rank mid-write, which is exactly what the recovery supervisor heals.
    """

    seed: int = 0
    drop_p: float = 0.0
    delay_p: float = 0.0
    duplicate_p: float = 0.0
    corrupt_p: float = 0.0
    crash_p: float = 0.0
    hang_p: float = 0.0
    ckpt_kill_p: float = 0.0
    partition_p: float = 0.0
    slow_link_p: float = 0.0
    conn_reset_p: float = 0.0
    delay_seconds: float = 0.05
    partition_seconds: float = 0.5
    slow_link_seconds: float = 0.05
    events: tuple[FaultEvent, ...] = ()
    immune_ranks: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        for name in (
            "drop_p", "delay_p", "duplicate_p", "corrupt_p", "crash_p", "hang_p",
            "ckpt_kill_p", "partition_p", "slow_link_p", "conn_reset_p",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultPlanError(f"{name} must lie in [0, 1], got {p}")
        for name in ("delay_seconds", "partition_seconds", "slow_link_seconds"):
            if getattr(self, name) < 0:
                raise FaultPlanError(f"{name} must be >= 0, got {getattr(self, name)}")
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "immune_ranks", tuple(self.immune_ranks))

    @property
    def is_trivial(self) -> bool:
        """True when the plan can never fire a fault."""
        return not self.events and not any(
            (self.drop_p, self.delay_p, self.duplicate_p, self.corrupt_p, self.crash_p,
             self.hang_p, self.ckpt_kill_p, self.partition_p, self.slow_link_p,
             self.conn_reset_p)
        )

    def with_events(self, *events: FaultEvent) -> "FaultPlan":
        """A copy of the plan with ``events`` appended."""
        return replace(self, events=self.events + tuple(events))

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "seed": self.seed,
            "drop_p": self.drop_p,
            "delay_p": self.delay_p,
            "duplicate_p": self.duplicate_p,
            "corrupt_p": self.corrupt_p,
            "crash_p": self.crash_p,
            "hang_p": self.hang_p,
            "ckpt_kill_p": self.ckpt_kill_p,
            "partition_p": self.partition_p,
            "slow_link_p": self.slow_link_p,
            "conn_reset_p": self.conn_reset_p,
            "delay_seconds": self.delay_seconds,
            "partition_seconds": self.partition_seconds,
            "slow_link_seconds": self.slow_link_seconds,
            "events": [e.to_dict() for e in self.events],
            "immune_ranks": list(self.immune_ranks),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(data.get("seed", 0)),
            drop_p=float(data.get("drop_p", 0.0)),
            delay_p=float(data.get("delay_p", 0.0)),
            duplicate_p=float(data.get("duplicate_p", 0.0)),
            corrupt_p=float(data.get("corrupt_p", 0.0)),
            crash_p=float(data.get("crash_p", 0.0)),
            hang_p=float(data.get("hang_p", 0.0)),
            ckpt_kill_p=float(data.get("ckpt_kill_p", 0.0)),
            partition_p=float(data.get("partition_p", 0.0)),
            slow_link_p=float(data.get("slow_link_p", 0.0)),
            conn_reset_p=float(data.get("conn_reset_p", 0.0)),
            delay_seconds=float(data.get("delay_seconds", 0.05)),
            partition_seconds=float(data.get("partition_seconds", 0.5)),
            slow_link_seconds=float(data.get("slow_link_seconds", 0.05)),
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", ())),
            immune_ranks=tuple(int(r) for r in data.get("immune_ranks", (0,))),
        )

    def to_json(self) -> str:
        """JSON form, suitable for attaching to a failing chaos run."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True, order=True)
class FaultRecord:
    """One fault that actually fired (the injector's structured log row)."""

    kind: str
    rank: int
    op_index: int = -1
    dest: int = -1
    generation: int = -1

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "kind": self.kind,
            "rank": self.rank,
            "op_index": self.op_index,
            "dest": self.dest,
            "generation": self.generation,
        }


@dataclass(frozen=True)
class _Delivery:
    """One physical delivery the network should perform for a logical send."""

    delay: float = 0.0
    corrupt: bool = False


def _uniform(seed: int, kind: str, *key: object) -> float:
    """Deterministic uniform in [0, 1) for a decision key (no shared state)."""
    digest = hashlib.blake2b(digest_size=8)
    digest.update(repr((seed, kind) + key).encode("utf-8"))
    return int.from_bytes(digest.digest(), "little") / float(1 << 64)


@dataclass
class FaultInjector:
    """Executes a :class:`FaultPlan` against a live world.

    The :class:`~repro.mpi.comm.World` consults :meth:`plan_send` on every
    point-to-point transmission and rank programs call
    :meth:`~repro.mpi.comm.Comm.fault_point` (which delegates to
    :meth:`rank_fault`) at generation boundaries.  Fired faults accumulate
    in :attr:`log`; :meth:`schedule` returns them canonically ordered.
    """

    plan: FaultPlan
    log: list[FaultRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._send_counts: dict[int, int] = {}
        by_op: dict[tuple[int, int], list[FaultEvent]] = {}
        by_gen: dict[tuple[int, int], list[FaultEvent]] = {}
        by_ckpt: dict[tuple[int, int], list[FaultEvent]] = {}
        by_link: dict[tuple[int, int, int], list[FaultEvent]] = {}
        for event in self.plan.events:
            if event.kind in MESSAGE_FAULT_KINDS:
                by_op.setdefault((event.rank, event.op_index), []).append(event)
            elif event.kind in CHECKPOINT_FAULT_KINDS:
                by_ckpt.setdefault((event.rank, event.generation), []).append(event)
            elif event.kind in NETWORK_FAULT_KINDS:
                by_link.setdefault(
                    (event.rank, event.dest, event.op_index), []
                ).append(event)
            else:
                by_gen.setdefault((event.rank, event.generation), []).append(event)
        self._events_by_op = by_op
        self._events_by_gen = by_gen
        self._events_by_ckpt = by_ckpt
        self._events_by_link = by_link

    # -- message faults -----------------------------------------------------------

    def plan_send(
        self, source: int, dest: int, tag: int
    ) -> tuple[list[_Delivery], list[FaultRecord]]:
        """Decide the fate of the ``source`` rank's next send.

        Returns the physical deliveries to perform (empty list = dropped)
        and the fault records that fired.  Thread-safe; advances the
        sender's op counter exactly once per call.
        """
        with self._lock:
            op_index = self._send_counts.get(source, 0)
            self._send_counts[source] = op_index + 1

        kinds: set[str] = set()
        for event in self._events_by_op.get((source, op_index), ()):
            if event.dest is None or event.dest == dest:
                kinds.add(event.kind)
        plan = self.plan
        for kind, p in (
            ("drop", plan.drop_p),
            ("delay", plan.delay_p),
            ("duplicate", plan.duplicate_p),
            ("corrupt", plan.corrupt_p),
        ):
            if p > 0.0 and _uniform(plan.seed, kind, source, op_index) < p:
                kinds.add(kind)

        fired = [
            FaultRecord(kind=k, rank=source, op_index=op_index, dest=dest)
            for k in sorted(kinds)
        ]
        if fired:
            with self._lock:
                self.log.extend(fired)

        if "drop" in kinds:
            return [], fired
        delay = 0.0
        if "delay" in kinds:
            explicit = [
                e.delay
                for e in self._events_by_op.get((source, op_index), ())
                if e.kind == "delay" and e.delay is not None
            ]
            delay = explicit[0] if explicit else plan.delay_seconds
        corrupt = "corrupt" in kinds
        deliveries = [_Delivery(delay=delay, corrupt=corrupt)]
        if "duplicate" in kinds:
            deliveries.append(_Delivery(delay=delay, corrupt=corrupt))
        return deliveries, fired

    # -- network faults -----------------------------------------------------------

    def link_fault(self, source: int, dest: int, frame_index: int) -> str | None:
        """The network fault due on the ``frame_index``-th data frame of the
        directed link ``source → dest``, if any.

        Consulted by the TCP transport once per data frame it is about to
        put on the wire.  A pure function of ``(seed, kind, source, dest,
        frame_index)`` — the caller supplies the frame ordinal, so the
        schedule is bit-reproducible whenever each rank's send sequence is.
        At most one kind fires per frame (explicit events win; then
        ``partition`` > ``conn_reset`` > ``slow_link``, since a partition
        subsumes a reset).  Fired faults are logged as
        :class:`FaultRecord` rows with ``op_index=frame_index``.
        """
        kind: str | None = None
        for event in self._events_by_link.get((source, dest, frame_index), ()):
            kind = event.kind
            break
        if kind is None:
            plan = self.plan
            for candidate, p in (
                ("partition", plan.partition_p),
                ("conn_reset", plan.conn_reset_p),
                ("slow_link", plan.slow_link_p),
            ):
                if p > 0.0 and _uniform(plan.seed, candidate, source, dest, frame_index) < p:
                    kind = candidate
                    break
        if kind is not None:
            with self._lock:
                self.log.append(
                    FaultRecord(kind=kind, rank=source, op_index=frame_index, dest=dest)
                )
        return kind

    # -- rank faults --------------------------------------------------------------

    def rank_fault(self, rank: int, generation: int) -> str | None:
        """The rank fault (``"crash"``/``"hang"``) due at this generation, if any."""
        if rank in self.plan.immune_ranks:
            return None
        kind: str | None = None
        for event in self._events_by_gen.get((rank, generation), ()):
            kind = event.kind
            break
        if kind is None:
            plan = self.plan
            if plan.crash_p > 0.0 and (
                _uniform(plan.seed, "crash", rank, generation) < plan.crash_p
            ):
                kind = "crash"
            elif plan.hang_p > 0.0 and _uniform(plan.seed, "hang", rank, generation) < plan.hang_p:
                kind = "hang"
        if kind is not None:
            with self._lock:
                self.log.append(FaultRecord(kind=kind, rank=rank, generation=generation))
        return kind

    def checkpoint_fault(self, rank: int, generation: int) -> bool:
        """Whether ``rank`` should die mid-write of this generation's checkpoint.

        Keyed by ``(rank, generation)`` like :meth:`rank_fault`, so the
        decision is bit-reproducible.  ``immune_ranks`` is intentionally
        *not* consulted: the checkpointing rank is Nature, which is immune
        to ``crash``/``hang`` by default, and this fault exists precisely
        to kill it mid-write.
        """
        fires = any(
            e.kind == "kill_during_checkpoint"
            for e in self._events_by_ckpt.get((rank, generation), ())
        )
        plan = self.plan
        if not fires and plan.ckpt_kill_p > 0.0:
            fires = _uniform(plan.seed, "kill_during_checkpoint", rank, generation) < (
                plan.ckpt_kill_p
            )
        if fires:
            with self._lock:
                self.log.append(
                    FaultRecord(kind="kill_during_checkpoint", rank=rank, generation=generation)
                )
        return fires

    # -- observability ------------------------------------------------------------

    def schedule(self) -> tuple[FaultRecord, ...]:
        """Every fired fault, in a canonical (run-independent) order."""
        with self._lock:
            return tuple(sorted(self.log))
