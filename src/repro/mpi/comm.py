"""The virtual MPI communicator.

This is the message-passing substrate standing in for the paper's C/MPI on
Blue Gene: tagged point-to-point ``send``/``recv`` (blocking and
non-blocking) between ranks that live as threads in one process, plus the
collectives the paper's algorithm uses — ``bcast`` (binomial tree, the
stand-in for Blue Gene's collective network), ``gather``, ``scatter``,
``reduce``, ``allreduce``, ``allgather`` and ``barrier`` — all built from
the same point-to-point layer so the traffic counters see every hop.

Semantics follow MPI closely enough that the algorithm code reads like its
C original: messages between a (source, dest) pair are non-overtaking per
tag, ``recv`` accepts wildcards, collectives must be entered by every rank
of the communicator in the same order.

The runtime is cooperative, not preemptive — ranks block on condition
variables, so thousands of virtual ranks work, bounded by thread memory.
For the paper's 262,144-rank scales use the performance model
(:mod:`repro.perf`), which consumes the same cost structure analytically.
"""

from __future__ import annotations

import pickle
import threading
import time
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import CommAbortError, MPIError, RankError
from repro.mpi.counters import CommCounters
from repro.mpi.status import ANY_SOURCE, ANY_TAG, MAX_USER_TAG, Status

__all__ = ["World", "Comm", "payload_nbytes"]

# Internal tag bases (above MAX_USER_TAG, per-collective-call sequenced).
_TAG_BCAST = 1 << 28
_TAG_GATHER = 2 << 28
_TAG_SCATTER = 3 << 28
_TAG_REDUCE = 4 << 28
_TAG_BARRIER = 5 << 28
_TAG_ALLGATHER = 6 << 28
_SEQ_MASK = (1 << 28) - 1


def payload_nbytes(payload: Any) -> int:
    """Estimated wire size of a message payload.

    Exact for ndarrays and bytes; pickled length otherwise.  Used for
    counters and the machine model's transfer costs.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


class _Mailbox:
    """One rank's incoming message queue with tag matching."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.ready = threading.Condition(self.lock)
        self.messages: list[tuple[int, int, Any, int]] = []  # (source, tag, payload, nbytes)

    def deliver(self, source: int, tag: int, payload: Any, nbytes: int) -> None:
        with self.lock:
            self.messages.append((source, tag, payload, nbytes))
            self.ready.notify_all()

    def _match_index(self, source: int, tag: int) -> int | None:
        for i, (src, tg, _payload, _n) in enumerate(self.messages):
            if (source == ANY_SOURCE or src == source) and (tag == ANY_TAG or tg == tag):
                return i
        return None

    def take(
        self, source: int, tag: int, abort: threading.Event, timeout: float | None
    ) -> tuple[int, int, Any, int]:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.lock:
            while True:
                if abort.is_set():
                    raise CommAbortError("communicator aborted while waiting for a message")
                idx = self._match_index(source, tag)
                if idx is not None:
                    return self.messages.pop(idx)
                if deadline is not None and time.monotonic() >= deadline:
                    raise MPIError(f"recv timed out waiting for source={source} tag={tag}")
                # Wake periodically to observe aborts even with no traffic.
                self.ready.wait(timeout=0.05)

    def probe(self, source: int, tag: int) -> Status | None:
        with self.lock:
            idx = self._match_index(source, tag)
            if idx is None:
                return None
            src, tg, _payload, nbytes = self.messages[idx]
            return Status(source=src, tag=tg, nbytes=nbytes)


class World:
    """Shared state of one virtual MPI job: mailboxes, counters, abort flag.

    Create one :class:`World` per SPMD program (the executor does this) and
    hand each rank its :class:`Comm` via :meth:`comm`.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise MPIError(f"world size must be >= 1, got {size}")
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.counters = CommCounters()
        self.abort_event = threading.Event()
        self.abort_reason: str | None = None
        self._comms: dict[int, "Comm"] = {}
        self._comms_lock = threading.Lock()

    def comm(self, rank: int) -> "Comm":
        """The communicator handle for ``rank`` (cached: collective sequence
        numbers live on the handle, so every caller must share it)."""
        if not 0 <= rank < self.size:
            raise RankError(f"rank {rank} out of range [0, {self.size})")
        with self._comms_lock:
            comm = self._comms.get(rank)
            if comm is None:
                comm = Comm(self, rank)
                self._comms[rank] = comm
            return comm

    def abort(self, reason: str) -> None:
        """Poison the world: every blocked or future operation raises."""
        self.abort_reason = reason
        self.abort_event.set()
        for box in self.mailboxes:
            with box.lock:
                box.ready.notify_all()



class _Request:
    """Handle for a non-blocking operation."""

    def __init__(self, wait_fn: Callable[[], Any]) -> None:
        self._wait_fn = wait_fn
        self._done = False
        self._value: Any = None

    def wait(self) -> Any:
        """Block until the operation completes; returns recv payloads."""
        if not self._done:
            self._value = self._wait_fn()
            self._done = True
        return self._value

    def test(self) -> bool:
        """True when already completed (does not block for sends)."""
        return self._done


class Comm:
    """One rank's endpoint into a :class:`World`.

    Mirrors the mpi4py lower-case object API: payloads are arbitrary Python
    objects (ndarrays pass by reference — the virtual network is
    zero-copy, so senders must not mutate buffers after sending, exactly
    like MPI's no-touch rule for non-blocking sends).
    """

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size
        self._collective_seq: dict[int, int] = {}

    # -- point-to-point -----------------------------------------------------------

    def _check_rank(self, rank: int, what: str) -> int:
        if not 0 <= rank < self.size:
            raise RankError(f"{what} rank {rank} out of range [0, {self.size})")
        return int(rank)

    def _check_abort(self) -> None:
        if self.world.abort_event.is_set():
            raise CommAbortError(self.world.abort_reason or "communicator aborted")

    def _send_raw(self, payload: Any, dest: int, tag: int) -> None:
        self._check_abort()
        nbytes = payload_nbytes(payload)
        self.world.counters.record("send", messages=1, nbytes=nbytes)
        self.world.mailboxes[dest].deliver(self.rank, tag, payload, nbytes)

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Send ``payload`` to ``dest``; completes immediately (buffered send)."""
        self._check_rank(dest, "destination")
        if not 0 <= tag <= MAX_USER_TAG:
            raise MPIError(f"user tags must lie in [0, {MAX_USER_TAG}], got {tag}")
        self._send_raw(payload, dest, tag)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> _Request:
        """Non-blocking send (delivery is immediate in the virtual network)."""
        self.send(payload, dest, tag)
        req = _Request(lambda: None)
        req.wait()
        return req

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        return_status: bool = False,
    ) -> Any:
        """Receive one matching message (blocking).

        With ``return_status=True`` returns ``(payload, Status)``.
        ``timeout`` (seconds) turns a hang into an :class:`MPIError` —
        useful in tests; production code leaves it None.
        """
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        src, tg, payload, nbytes = self.world.mailboxes[self.rank].take(
            source, tag, self.world.abort_event, timeout
        )
        if return_status:
            return payload, Status(source=src, tag=tg, nbytes=nbytes)
        return payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> _Request:
        """Non-blocking receive; ``wait()`` returns the payload."""
        return _Request(lambda: self.recv(source=source, tag=tag))

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Non-blocking probe: Status of a matching pending message, or None."""
        self._check_abort()
        return self.world.mailboxes[self.rank].probe(source, tag)

    def abort(self, reason: str = "rank called abort") -> None:
        """Poison every rank of the communicator."""
        self.world.abort(f"rank {self.rank}: {reason}")
        raise CommAbortError(self.world.abort_reason or reason)

    # -- collectives ---------------------------------------------------------------

    def _collective_tag(self, base: int) -> int:
        seq = self._collective_seq.get(base, 0)
        self._collective_seq[base] = seq + 1
        return base | (seq & _SEQ_MASK)

    def _vrank(self, root: int) -> int:
        return (self.rank - root) % self.size

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the payload on every rank.

        This is the stand-in for Blue Gene's collective tree network, which
        the paper uses for PC-pair announcements, mutation announcements and
        strategy updates.
        """
        self._check_rank(root, "root")
        tag = self._collective_tag(_TAG_BCAST)
        size = self.size
        vrank = self._vrank(root)
        if vrank != 0:
            # Receive from parent: clear lowest set bit of vrank.
            parent_v = vrank & (vrank - 1)
            payload = self.recv(source=(parent_v + root) % size, tag=tag)
        # Forward to children: set each bit above the lowest set bit region.
        mask = 1
        while mask < size:
            if vrank & (mask - 1) == 0 and vrank & mask == 0:
                child_v = vrank | mask
                if child_v < size:
                    self._send_raw(payload, (child_v + root) % size, tag)
            mask <<= 1
        if self.rank == root:
            self.world.counters.record("bcast", messages=0, nbytes=payload_nbytes(payload))
        return payload

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather one payload per rank to ``root`` (rank order preserved)."""
        self._check_rank(root, "root")
        tag = self._collective_tag(_TAG_GATHER)
        if self.rank != root:
            self._send_raw(payload, root, tag)
            return None
        out: list[Any] = [None] * self.size
        out[root] = payload
        for src in range(self.size):
            if src != root:
                out[src] = self.recv(source=src, tag=tag)
        self.world.counters.record("gather", messages=0, nbytes=payload_nbytes(payload))
        return out

    def scatter(self, payloads: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one payload to each rank from ``root``'s list."""
        self._check_rank(root, "root")
        tag = self._collective_tag(_TAG_SCATTER)
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise MPIError(
                    f"scatter root needs exactly {self.size} payloads,"
                    f" got {None if payloads is None else len(payloads)}"
                )
            for dest in range(self.size):
                if dest != root:
                    self._send_raw(payloads[dest], dest, tag)
            self.world.counters.record("scatter", messages=0, nbytes=0)
            return payloads[root]
        return self.recv(source=root, tag=tag)

    def reduce(
        self, payload: Any, op: Callable[[Any, Any], Any] | None = None, root: int = 0
    ) -> Any:
        """Binomial-tree reduction to ``root``; ``op`` defaults to ``+``.

        ``op`` must be associative; contributions are combined in an order
        that is deterministic for a given world size.
        """
        self._check_rank(root, "root")
        if op is None:
            op = lambda a, b: a + b  # noqa: E731
        tag = self._collective_tag(_TAG_REDUCE)
        size = self.size
        vrank = self._vrank(root)
        acc = payload
        mask = 1
        while mask < size:
            if vrank & mask:
                parent_v = vrank & ~mask
                self._send_raw(acc, (parent_v + root) % size, tag)
                break
            child_v = vrank | mask
            if child_v < size:
                other = self.recv(source=(child_v + root) % size, tag=tag)
                acc = op(acc, other)
            mask <<= 1
        if self.rank == root:
            self.world.counters.record("reduce", messages=0, nbytes=payload_nbytes(payload))
            return acc
        return None

    def allreduce(self, payload: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce to rank 0, then broadcast the result to everyone."""
        result = self.reduce(payload, op=op, root=0)
        return self.bcast(result, root=0)

    def allgather(self, payload: Any) -> list[Any]:
        """Gather to rank 0, then broadcast the full list."""
        tag_unused = self._collective_tag(_TAG_ALLGATHER)  # keeps seq aligned across ranks
        del tag_unused
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def barrier(self) -> None:
        """Synchronise all ranks (reduce + bcast of a token)."""
        self._collective_tag(_TAG_BARRIER)  # alignment only
        self.allreduce(0)
        self.world.counters.record("barrier", messages=0, nbytes=0)

    def __repr__(self) -> str:
        return f"Comm(rank={self.rank}, size={self.size})"
