"""The virtual MPI communicator.

This is the message-passing substrate standing in for the paper's C/MPI on
Blue Gene: tagged point-to-point ``send``/``recv`` (blocking and
non-blocking) between ranks that live as threads in one process, plus the
collectives the paper's algorithm uses — ``bcast`` (binomial tree, the
stand-in for Blue Gene's collective network), ``gather``, ``scatter``,
``reduce``, ``allreduce``, ``allgather`` and ``barrier`` — all built from
the same point-to-point layer so the traffic counters see every hop.

Semantics follow MPI closely enough that the algorithm code reads like its
C original: messages between a (source, dest) pair are non-overtaking per
tag, ``recv`` accepts wildcards, collectives must be entered by every rank
of the communicator in the same order.

The runtime is cooperative, not preemptive — ranks block on condition
variables, so thousands of virtual ranks work, bounded by thread memory.
For the paper's 262,144-rank scales use the performance model
(:mod:`repro.perf`), which consumes the same cost structure analytically.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import (
    CommAbortError,
    MPIError,
    PeerUnreachableError,
    RankCrashError,
    RankError,
    RankFailedError,
    RecvTimeoutError,
)
from repro.mpi import shm as _shm
from repro.mpi.counters import CommCounters
from repro.mpi.faults import CorruptedPayload, FaultInjector
from repro.mpi.status import ANY_SOURCE, ANY_TAG, MAX_USER_TAG, Status
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["World", "Comm", "payload_nbytes", "backoff_wait"]

# Internal tag bases (above MAX_USER_TAG, per-collective-call sequenced).
_TAG_BCAST = 1 << 28
_TAG_GATHER = 2 << 28
_TAG_SCATTER = 3 << 28
_TAG_REDUCE = 4 << 28
_TAG_BARRIER = 5 << 28
_TAG_ALLGATHER = 6 << 28
_TAG_RDATA = 8 << 28
_TAG_RACK = 9 << 28
_SEQ_MASK = (1 << 28) - 1


def backoff_wait(
    base: float,
    attempt: int,
    *,
    factor: float = 2.0,
    cap: float = 2.0,
    jitter: float = 0.5,
    key: tuple = (),
) -> float:
    """Capped, jittered exponential backoff wait for retry ``attempt``.

    Pure geometric growth (``base * factor**attempt``) has two classic
    failure modes at scale: unbounded waits (a rank can sleep for minutes
    on a peer that died seconds ago) and retry storms (many senders backing
    off from the same slow peer compute *identical* waits and re-collide on
    every retry).  This helper fixes both: the exponential wait is clamped
    to ``cap`` seconds, then shrunk by up to ``jitter`` (a fraction in
    ``[0, 1)``) using a *deterministic* hash of ``key + (attempt,)`` — so
    distinct (sender, peer, attempt) tuples decorrelate while any single
    run remains bit-reproducible.

    Returns a wait in ``[wait * (1 - jitter), wait]`` where
    ``wait = min(base * factor**attempt, cap)``.
    """
    if base < 0.0 or factor < 1.0 or cap < 0.0 or not 0.0 <= jitter < 1.0:
        raise MPIError(
            f"invalid backoff parameters: base={base} factor={factor}"
            f" cap={cap} jitter={jitter}"
        )
    wait = min(base * factor**attempt, cap)
    if jitter == 0.0 or wait == 0.0:
        return wait
    digest = hashlib.blake2b(
        repr(key + (attempt,)).encode(), digest_size=8
    ).digest()
    unit = int.from_bytes(digest, "big") / 2**64
    return wait * (1.0 - jitter * unit)


def payload_nbytes(payload: Any) -> int:
    """Estimated wire size of a message payload.

    Exact for ndarrays and bytes; pickled length otherwise.  Used for
    counters and the machine model's transfer costs.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, _shm.ShmRef):
        # A shared-memory descriptor stands for its segment-resident content.
        return int(payload.nbytes)
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


class _Mailbox:
    """One rank's incoming message queue with tag matching."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.ready = threading.Condition(self.lock)
        # (source, tag, payload, nbytes, msg_id) — msg_id joins send to recv
        # in exported traces (0 when tracing is off).
        self.messages: list[tuple[int, int, Any, int, int]] = []

    def deliver(
        self, source: int, tag: int, payload: Any, nbytes: int, msg_id: int = 0
    ) -> None:
        with self.lock:
            self.messages.append((source, tag, payload, nbytes, msg_id))
            self.ready.notify_all()

    def _match_index(self, source: int, tag: int) -> int | None:
        for i, (src, tg, _payload, _n, _mid) in enumerate(self.messages):
            if (source == ANY_SOURCE or src == source) and (tag == ANY_TAG or tg == tag):
                return i
        return None

    def take(
        self, source: int, tag: int, world: "World", timeout: float | None
    ) -> tuple[int, int, Any, int, int]:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.lock:
            while True:
                if world.abort_event.is_set():
                    raise CommAbortError("communicator aborted while waiting for a message")
                idx = self._match_index(source, tag)
                if idx is not None:
                    return self.messages.pop(idx)
                if source != ANY_SOURCE and world.is_failed(source):
                    raise RankFailedError(
                        f"rank {source} failed while a recv was waiting on tag={tag}",
                        rank=source,
                        deadline=timeout,
                    )
                if source != ANY_SOURCE and world.is_unreachable(source):
                    raise PeerUnreachableError(
                        f"rank {source} is unreachable (network partition past"
                        f" grace) while a recv was waiting on tag={tag}",
                        rank=source,
                        deadline=timeout,
                    )
                if world.stop_event.is_set():
                    raise CommAbortError("world shut down while waiting for a message")
                if deadline is not None and time.monotonic() >= deadline:
                    raise RecvTimeoutError(
                        f"recv timed out after {timeout} s waiting for"
                        f" source={source} tag={tag}",
                        rank=None if source == ANY_SOURCE else source,
                        deadline=timeout,
                    )
                # Wake periodically to observe aborts/failures even with no traffic.
                self.ready.wait(timeout=0.05)

    def probe(self, source: int, tag: int) -> Status | None:
        with self.lock:
            idx = self._match_index(source, tag)
            if idx is None:
                return None
            src, tg, _payload, nbytes, _mid = self.messages[idx]
            return Status(source=src, tag=tg, nbytes=nbytes)

    def take_matching(
        self, predicate: Callable[[int, int, Any], bool]
    ) -> list[tuple[int, int, Any, int, int]]:
        """Remove and return every pending message matching ``predicate``.

        Non-blocking; used by the reliable layer to service resent frames
        out of band while a rank is itself blocked in ``send_reliable``.
        """
        with self.lock:
            taken: list[tuple[int, int, Any, int, int]] = []
            kept: list[tuple[int, int, Any, int, int]] = []
            for msg in self.messages:
                (taken if predicate(msg[0], msg[1], msg[2]) else kept).append(msg)
            self.messages[:] = kept
            return taken


class World:
    """Shared state of one virtual MPI job: mailboxes, counters, abort flag.

    Create one :class:`World` per SPMD program (the executor does this) and
    hand each rank its :class:`Comm` via :meth:`comm`.

    An optional :class:`~repro.mpi.faults.FaultInjector` makes the network
    unreliable: it decides, per point-to-point transmission, whether the
    message is dropped, delayed, duplicated, or corrupted, and which ranks
    crash or hang at generation boundaries (see :meth:`Comm.fault_point`).

    An optional :class:`~repro.obs.tracer.Tracer` records every send, recv,
    collective and reliable-layer operation as timed per-rank events; when
    omitted the no-op :data:`~repro.obs.tracer.NULL_TRACER` keeps the hot
    paths free of tracing cost.
    """

    def __init__(
        self,
        size: int,
        injector: FaultInjector | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if size < 1:
            raise MPIError(f"world size must be >= 1, got {size}")
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.counters = CommCounters()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.abort_event = threading.Event()
        self.abort_reason: str | None = None
        self.injector = injector
        self.stop_event = threading.Event()
        self.failed_ranks: set[int] = set()
        self.failure_reasons: dict[int, str] = {}
        self._failed_lock = threading.Lock()
        self._comms: dict[int, "Comm"] = {}
        self._comms_lock = threading.Lock()
        # Elastic membership: ranks added by grow() await their rejoin
        # handshake; ranks removed by shrink() keep their slot but own
        # nothing.  spawn_hook is installed by the executor so grow() can
        # start a thread for each new rank.
        self.joiner_ranks: set[int] = set()
        self.retired_ranks: set[int] = set()
        self.spawn_hook: Callable[[tuple[int, ...]], None] | None = None
        self._membership_lock = threading.Lock()

    def comm(self, rank: int) -> "Comm":
        """The communicator handle for ``rank`` (cached: collective sequence
        numbers live on the handle, so every caller must share it)."""
        if not 0 <= rank < self.size:
            raise RankError(f"rank {rank} out of range [0, {self.size})")
        with self._comms_lock:
            comm = self._comms.get(rank)
            if comm is None:
                comm = Comm(self, rank)
                self._comms[rank] = comm
            return comm

    def abort(self, reason: str) -> None:
        """Poison the world: every blocked or future operation raises."""
        self.abort_reason = reason
        self.abort_event.set()
        self._wake_all()

    def shutdown(self) -> None:
        """Gracefully end the job: wake hung/blocked ranks without poisoning.

        Unlike :meth:`abort` this is not an error — it releases ranks that
        are permanently silent (injected hangs, falsely-suspected stragglers)
        so the executor can join every thread after a degraded run completes.
        """
        self.stop_event.set()
        self._wake_all()

    def mark_failed(self, rank: int, reason: str = "") -> None:
        """Record ``rank`` as dead; receivers waiting on it fail fast."""
        with self._failed_lock:
            self.failed_ranks.add(rank)
            self.failure_reasons.setdefault(rank, reason)
        self._wake_all()

    def is_failed(self, rank: int) -> bool:
        """Whether ``rank`` has been marked dead."""
        return rank in self.failed_ranks

    def is_unreachable(self, rank: int) -> bool:
        """Whether ``rank`` is *locally* unobservable over the network.

        Always ``False`` for in-process backends — only the TCP transport's
        world views (:mod:`repro.mpi.hostexec`) override this, after a peer
        host's connection has been down past its grace deadline.  Unlike
        :meth:`is_failed` this is a local opinion, not a global verdict:
        the peer may be alive across a partition.
        """
        return False

    def grow(self, n: int) -> tuple[int, ...]:
        """Add ``n`` fresh ranks to the world; returns their rank ids.

        The new ranks get mailboxes and are recorded in
        :attr:`joiner_ranks`; if the executor installed a
        :attr:`spawn_hook`, a rank program is started for each so they can
        run the FTHello/FTRejoin handshake and take over a share of the
        SSets (``owner_map_with_failures`` redistribution).  Growth
        consumes no randomness, so a grown run's trajectory stays
        bit-identical to a fixed-size one.
        """
        if n < 1:
            raise MPIError(f"grow() needs n >= 1, got {n}")
        with self._membership_lock:
            first = self.size
            new_ranks = tuple(range(first, first + n))
            self.mailboxes.extend(_Mailbox() for _ in range(n))
            self.size = first + n
            self.joiner_ranks.update(new_ranks)
        if self.spawn_hook is not None:
            self.spawn_hook(new_ranks)
        self._wake_all()
        return new_ranks

    def shrink(self, ranks: Sequence[int]) -> tuple[int, ...]:
        """Retire ``ranks`` from the world; returns the retired ids, sorted.

        Retired ranks keep their slot (rank ids are never reused) but must
        no longer own work — callers fold :attr:`retired_ranks` into the
        failed set they hand ``owner_map_with_failures``.  Rank 0 cannot
        retire, and at least one non-retired rank must remain.
        """
        retired = tuple(sorted({int(r) for r in ranks}))
        with self._membership_lock:
            for rank in retired:
                if not 0 < rank < self.size:
                    raise MPIError(
                        f"cannot shrink rank {rank}: out of range (1, {self.size})"
                    )
                if rank in self.retired_ranks:
                    raise MPIError(f"cannot shrink rank {rank}: already retired")
            survivors = self.size - len(self.retired_ranks) - len(retired)
            if survivors < 1:
                raise MPIError("cannot shrink: no ranks would remain")
            self.retired_ranks.update(retired)
        self._wake_all()
        return retired

    def mark_alive(self, rank: int) -> None:
        """Clear ``rank``'s failed mark: a replacement incarnation rejoined.

        The recovery path calls this after a respawned rank completes its
        rejoin handshake; receivers that were failing fast on the rank go
        back to waiting normally.  The recorded failure reason is kept as
        history.
        """
        with self._failed_lock:
            self.failed_ranks.discard(rank)
        self._wake_all()

    def _wake_all(self) -> None:
        for box in list(self.mailboxes):
            with box.lock:
                box.ready.notify_all()


class _Request:
    """Handle for a non-blocking operation."""

    def __init__(
        self, wait_fn: Callable[[], Any], test_fn: Callable[[], bool] | None = None
    ) -> None:
        self._wait_fn = wait_fn
        self._test_fn = test_fn
        self._done = False
        self._value: Any = None

    def wait(self) -> Any:
        """Block until the operation completes; returns recv payloads."""
        if not self._done:
            self._value = self._wait_fn()
            self._done = True
        return self._value

    def test(self) -> bool:
        """True when the operation has completed; never blocks.

        For sends, completion means the message reached the destination
        mailbox (delay faults keep the request pending until delivery).  For
        receives, a matching pending message is consumed and the request
        completes.
        """
        if self._done:
            return True
        if self._test_fn is not None and self._test_fn():
            self.wait()
            return True
        return False


def _blob_checksum(blob: bytes) -> bytes:
    return hashlib.blake2b(blob, digest_size=8).digest()


@dataclass(frozen=True)
class _ReliablePacket:
    """On-wire frame of the reliable layer: sequenced, checksummed payload."""

    seq: int
    tag: int
    blob: bytes
    checksum: bytes


# Large reliable blobs may travel through shared-memory segments under the
# process backend: the checksummed frame then carries the descriptor (which
# itself embeds a content digest), and the receiver re-checksums the
# materialised blob end-to-end, so reliable semantics are unchanged.
_shm.register_shareable(_ReliablePacket, ("blob",))


class Comm:
    """One rank's endpoint into a :class:`World`.

    Mirrors the mpi4py lower-case object API: payloads are arbitrary Python
    objects (ndarrays pass by reference — the virtual network is
    zero-copy, so senders must not mutate buffers after sending, exactly
    like MPI's no-touch rule for non-blocking sends).

    Two delivery grades are offered.  Plain :meth:`send`/:meth:`recv` trust
    the network (fine without fault injection — the virtual network is
    perfectly reliable by default).  :meth:`send_reliable`/
    :meth:`recv_reliable` add sequence numbers, checksums, acknowledgements
    with retry + exponential backoff, and receiver-side deduplication, so
    they survive injected drops, duplicates and corruptions.
    """

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank
        self._collective_seq: dict[int, int] = {}
        self._reliable_seq: dict[int, int] = {}
        self._reliable_seen: dict[int, set[int]] = {}

    @property
    def size(self) -> int:
        """Current world size — live, so ``World.grow`` is visible at once."""
        return self.world.size

    # -- point-to-point -----------------------------------------------------------

    def _check_rank(self, rank: int, what: str) -> int:
        if not 0 <= rank < self.size:
            raise RankError(f"{what} rank {rank} out of range [0, {self.size})")
        return int(rank)

    def _check_abort(self) -> None:
        if self.world.abort_event.is_set():
            raise CommAbortError(self.world.abort_reason or "communicator aborted")

    def _send_raw(self, payload: Any, dest: int, tag: int) -> threading.Event:
        """Hand ``payload`` to the network; returns an Event set at delivery.

        Without a fault injector delivery is immediate.  With one, the
        message may be dropped (the event is still set — the buffer was
        consumed, the *network* lost it), delayed (a timer delivers late and
        sets the event then), duplicated, or corrupted.
        """
        self._check_abort()
        nbytes = payload_nbytes(payload)
        counters = self.world.counters
        counters.record("send", messages=1, nbytes=nbytes)
        tracer = self.world.tracer
        tracing = tracer.enabled
        msg_id = tracer.new_flow_id() if tracing else 0
        t0 = tracer.now() if tracing else 0.0
        delivered = threading.Event()
        injector = self.world.injector
        if injector is None:
            self.world.mailboxes[dest].deliver(self.rank, tag, payload, nbytes, msg_id)
            delivered.set()
            if tracing:
                tracer.msg_send(
                    self.rank, dest, tag, nbytes,
                    ts=t0, dur=tracer.now() - t0, flow_id=msg_id,
                )
            return delivered
        deliveries, fired = injector.plan_send(self.rank, dest, tag)
        for record in fired:
            counters.record(f"fault_{record.kind}", messages=0, nbytes=nbytes)
            if tracing:
                tracer.instant(
                    f"fault_{record.kind}", cat="mpi.fault", rank=self.rank,
                    args={"dest": dest, "tag": tag},
                )
        if not deliveries:
            delivered.set()
            if tracing:
                tracer.msg_send(
                    self.rank, dest, tag, nbytes,
                    ts=t0, dur=tracer.now() - t0, flow_id=0,  # dropped: no arrow
                )
            return delivered
        for action in deliveries:
            load = CorruptedPayload(nbytes) if action.corrupt else payload
            if action.delay > 0.0:
                timer = threading.Timer(
                    action.delay,
                    self._deliver,
                    args=(dest, tag, load, nbytes, delivered, msg_id),
                )
                timer.daemon = True
                timer.start()
            else:
                self._deliver(dest, tag, load, nbytes, delivered, msg_id)
        if tracing:
            tracer.msg_send(
                self.rank, dest, tag, nbytes,
                ts=t0, dur=tracer.now() - t0, flow_id=msg_id,
            )
        return delivered

    def _deliver(
        self,
        dest: int,
        tag: int,
        payload: Any,
        nbytes: int,
        delivered: threading.Event,
        msg_id: int = 0,
    ) -> None:
        self.world.mailboxes[dest].deliver(self.rank, tag, payload, nbytes, msg_id)
        delivered.set()

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Send ``payload`` to ``dest``; completes immediately (buffered send)."""
        self._check_rank(dest, "destination")
        if not 0 <= tag <= MAX_USER_TAG:
            raise MPIError(f"user tags must lie in [0, {MAX_USER_TAG}], got {tag}")
        self._send_raw(payload, dest, tag)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> _Request:
        """Non-blocking send; the request completes when the message is delivered.

        The buffer is handed to the network immediately (so ordering matches
        :meth:`send` even if the caller never waits); ``test()``/``wait()``
        track actual delivery, which delay faults can push into the future.
        """
        self._check_rank(dest, "destination")
        if not 0 <= tag <= MAX_USER_TAG:
            raise MPIError(f"user tags must lie in [0, {MAX_USER_TAG}], got {tag}")
        delivered = self._send_raw(payload, dest, tag)

        def _wait() -> None:
            delivered.wait()
            return None

        return _Request(_wait, test_fn=delivered.is_set)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        return_status: bool = False,
    ) -> Any:
        """Receive one matching message (blocking).

        With ``return_status=True`` returns ``(payload, Status)``.
        ``timeout`` (seconds) turns a hang into a
        :class:`~repro.errors.RecvTimeoutError`; a recv from a rank known to
        have failed raises :class:`~repro.errors.RankFailedError` once no
        buffered message can satisfy it.
        """
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        tracer = self.world.tracer
        t0 = tracer.now() if tracer.enabled else 0.0
        src, tg, payload, nbytes, msg_id = self.world.mailboxes[self.rank].take(
            source, tag, self.world, timeout
        )
        if tracer.enabled:
            tracer.msg_recv(
                self.rank, src, tg, nbytes, ts=t0, dur=tracer.now() - t0, flow_id=msg_id
            )
        if return_status:
            return payload, Status(source=src, tag=tg, nbytes=nbytes)
        return payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> _Request:
        """Non-blocking receive; ``wait()`` returns the payload.

        ``test()`` probes without blocking and completes the receive when a
        matching message is already pending.
        """
        return _Request(
            lambda: self.recv(source=source, tag=tag),
            test_fn=lambda: self.probe(source, tag) is not None,
        )

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Non-blocking probe: Status of a matching pending message, or None."""
        self._check_abort()
        return self.world.mailboxes[self.rank].probe(source, tag)

    def abort(self, reason: str = "rank called abort") -> None:
        """Poison every rank of the communicator."""
        self.world.abort(f"rank {self.rank}: {reason}")
        raise CommAbortError(self.world.abort_reason or reason)

    # -- fault injection -----------------------------------------------------------

    def fault_point(self, generation: int) -> None:
        """Give the fault injector a chance to kill this rank; no-op without one.

        Rank programs call this once per generation.  An injected ``crash``
        raises :class:`~repro.errors.RankCrashError` immediately; ``hang``
        blocks silently until the world is shut down or aborted, then exits
        the rank quietly.
        """
        injector = self.world.injector
        if injector is None:
            return
        kind = injector.rank_fault(self.rank, generation)
        if kind is None:
            return
        self.world.counters.record(f"fault_{kind}", messages=0, nbytes=0)
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.instant(
                f"fault_{kind}", cat="mpi.fault", rank=self.rank,
                args={"generation": generation},
            )
        if kind == "crash":
            raise RankCrashError(
                f"rank {self.rank}: injected crash at generation {generation}"
            )
        # Hang: permanent silence until the job ends one way or the other.
        while not (self.world.stop_event.is_set() or self.world.abort_event.is_set()):
            self.world.stop_event.wait(timeout=0.05)
        if self.world.abort_event.is_set():
            raise CommAbortError(self.world.abort_reason or "world aborted")
        raise RankCrashError(
            f"rank {self.rank}: injected hang at generation {generation}"
            " (released at shutdown)"
        )

    def checkpoint_fault_point(self, generation: int) -> bool:
        """Whether an injected ``kill_during_checkpoint`` fires here.

        Checkpointing ranks consult this immediately before writing the
        generation's checkpoint.  Unlike :meth:`fault_point` nothing is
        raised — the caller owns the theatrics (leaving a torn file at the
        final path, then dying), because the point of the fault is to
        exercise what a *non*-crash-consistent writer would leave behind.
        Returns ``False`` without an injector.
        """
        injector = self.world.injector
        if injector is None:
            return False
        if not injector.checkpoint_fault(self.rank, generation):
            return False
        self.world.counters.record("fault_kill_during_checkpoint", messages=0, nbytes=0)
        tracer = self.world.tracer
        if tracer.enabled:
            tracer.instant(
                "fault_kill_during_checkpoint", cat="mpi.fault", rank=self.rank,
                args={"generation": generation},
            )
        return True

    # -- reliable messaging --------------------------------------------------------

    def forget_reliable_peer(self, rank: int) -> None:
        """Drop receive-side dedup state for ``rank`` (it was respawned).

        A replacement incarnation restarts its reliable sequence numbers at
        zero; without this reset :meth:`_service_reliable_duplicates` would
        swallow its fresh frames as duplicates of the dead incarnation's.
        The *send*-side sequence counter toward ``rank`` is deliberately
        kept monotonic, so packets still in flight to the old incarnation
        can never collide with new ones.
        """
        self._reliable_seen.pop(rank, None)

    def _service_reliable_duplicates(self) -> None:
        """Re-acknowledge resent frames whose payload was already delivered.

        A peer whose earlier acknowledgement was dropped keeps resending
        while this rank is itself blocked in :meth:`send_reliable`; without
        out-of-band re-acks the pair deadlocks (the two-generals tail).
        Only frames with already-seen sequence numbers are consumed — their
        payload reached the application, so a re-ack is all they need.
        """

        def _is_dup(source: int, tag: int, payload: Any) -> bool:
            return (
                tag & ~_SEQ_MASK == _TAG_RDATA
                and isinstance(payload, _ReliablePacket)
                and payload.seq in self._reliable_seen.get(source, ())
            )

        for source, _tag, packet, _nbytes, _mid in self.world.mailboxes[
            self.rank
        ].take_matching(_is_dup):
            self.world.counters.record("reliable_dedup", messages=0, nbytes=0)
            self._send_raw(True, source, _TAG_RACK | (packet.seq & _SEQ_MASK))

    def send_reliable(
        self,
        payload: Any,
        dest: int,
        tag: int = 0,
        *,
        ack_timeout: float = 0.25,
        max_retries: int = 8,
        backoff: float = 2.0,
        max_backoff: float = 2.0,
        jitter: float = 0.5,
    ) -> int:
        """Acknowledged send: survives injected drops, duplicates, corruptions.

        The payload travels as a sequenced, checksummed frame; the receiver's
        :meth:`recv_reliable` acknowledges it.  Missing acknowledgements
        trigger resends with capped, jittered exponential backoff — waits
        grow geometrically from ``ack_timeout`` by ``backoff`` but never
        exceed ``max_backoff`` seconds, and each wait is shrunk by up to
        ``jitter`` via a deterministic per-(sender, peer, seq, attempt)
        hash so concurrent senders retrying the same slow peer do not
        synchronize into retry storms (see :func:`backoff_wait`).  Returns
        the number of transmissions used.

        Raises
        ------
        RankFailedError
            When ``dest`` is known dead, or no acknowledgement arrives
            within ``max_retries + 1`` transmissions.
        """
        tracer = self.world.tracer
        if not tracer.enabled:
            return self._send_reliable(
                payload, dest, tag,
                ack_timeout=ack_timeout, max_retries=max_retries, backoff=backoff,
                max_backoff=max_backoff, jitter=jitter,
            )
        with tracer.span(
            "send_reliable", cat="mpi.reliable", rank=self.rank,
            args={"dest": dest, "tag": tag},
        ):
            return self._send_reliable(
                payload, dest, tag,
                ack_timeout=ack_timeout, max_retries=max_retries, backoff=backoff,
                max_backoff=max_backoff, jitter=jitter,
            )

    def _send_reliable(
        self,
        payload: Any,
        dest: int,
        tag: int,
        *,
        ack_timeout: float,
        max_retries: int,
        backoff: float,
        max_backoff: float,
        jitter: float,
    ) -> int:
        self._check_rank(dest, "destination")
        if not 0 <= tag <= MAX_USER_TAG:
            raise MPIError(f"user tags must lie in [0, {MAX_USER_TAG}], got {tag}")
        seq = self._reliable_seq.get(dest, 0)
        self._reliable_seq[dest] = seq + 1
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        packet = _ReliablePacket(seq=seq, tag=tag, blob=blob, checksum=_blob_checksum(blob))
        ack_tag = _TAG_RACK | (seq & _SEQ_MASK)
        waited = 0.0
        for attempt in range(max_retries + 1):
            self._send_raw(packet, dest, _TAG_RDATA | tag)
            if attempt:
                self.world.counters.record("reliable_retry", messages=0, nbytes=len(blob))
            wait = backoff_wait(
                ack_timeout, attempt, factor=backoff, cap=max_backoff,
                jitter=jitter, key=(self.rank, dest, tag, seq),
            )
            waited += wait
            deadline = time.monotonic() + wait
            acked = False
            while not acked:
                self._service_reliable_duplicates()
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    break
                try:
                    self.recv(source=dest, tag=ack_tag, timeout=min(0.05, remaining))
                    acked = True
                except RecvTimeoutError:
                    continue
            if acked:
                self.world.counters.record("reliable_send", messages=0, nbytes=len(blob))
                return attempt + 1
        raise RankFailedError(
            f"rank {self.rank}: no acknowledgement from rank {dest} for tag={tag}"
            f" seq={seq} after {max_retries + 1} transmissions",
            rank=dest,
            deadline=waited,
        )

    def recv_reliable(
        self, source: int = ANY_SOURCE, tag: int = 0, timeout: float | None = None
    ) -> Any:
        """Receive one :meth:`send_reliable` message: ack, dedup, verify.

        Corrupted frames are discarded without acknowledgement (the sender
        resends); duplicated/resent frames are acknowledged again but
        delivered to the caller only once.  ``timeout`` bounds the *total*
        wait across discarded frames.
        """
        tracer = self.world.tracer
        if not tracer.enabled:
            return self._recv_reliable(source, tag, timeout)
        with tracer.span(
            "recv_reliable", cat="mpi.reliable", rank=self.rank,
            args={"source": source, "tag": tag},
        ):
            return self._recv_reliable(source, tag, timeout)

    def _recv_reliable(
        self, source: int = ANY_SOURCE, tag: int = 0, timeout: float | None = None
    ) -> Any:
        if not 0 <= tag <= MAX_USER_TAG:
            raise MPIError(f"user tags must lie in [0, {MAX_USER_TAG}], got {tag}")
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self._service_reliable_duplicates()
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0.0:
                raise RecvTimeoutError(
                    f"recv_reliable timed out after {timeout} s waiting for"
                    f" source={source} tag={tag}",
                    rank=None if source == ANY_SOURCE else source,
                    deadline=timeout,
                )
            slice_ = 0.05 if remaining is None else min(0.05, remaining)
            try:
                packet, status = self.recv(
                    source=source, tag=_TAG_RDATA | tag, timeout=slice_, return_status=True
                )
            except RecvTimeoutError:
                continue
            if (
                not isinstance(packet, _ReliablePacket)
                or _blob_checksum(packet.blob) != packet.checksum
            ):
                self.world.counters.record("reliable_corrupt", messages=0, nbytes=status.nbytes)
                continue  # treat as lost; the sender will resend
            self._send_raw(True, status.source, _TAG_RACK | (packet.seq & _SEQ_MASK))
            seen = self._reliable_seen.setdefault(status.source, set())
            if packet.seq in seen:
                self.world.counters.record("reliable_dedup", messages=0, nbytes=0)
                continue
            seen.add(packet.seq)
            return pickle.loads(packet.blob)

    # -- collectives ---------------------------------------------------------------

    def _collective_tag(self, base: int) -> int:
        seq = self._collective_seq.get(base, 0)
        self._collective_seq[base] = seq + 1
        return base | (seq & _SEQ_MASK)

    def _vrank(self, root: int) -> int:
        return (self.rank - root) % self.size

    def _traced_collective(self, name: str, root: int | None = None):
        """A span for one collective call, or ``None`` when tracing is off."""
        tracer = self.world.tracer
        if not tracer.enabled:
            return None
        return tracer.span(
            name, cat="mpi.coll", rank=self.rank,
            args=None if root is None else {"root": root},
        )

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the payload on every rank.

        This is the stand-in for Blue Gene's collective tree network, which
        the paper uses for PC-pair announcements, mutation announcements and
        strategy updates.
        """
        span = self._traced_collective("bcast", root)
        if span is None:
            return self._bcast(payload, root)
        with span:
            return self._bcast(payload, root)

    def _bcast(self, payload: Any, root: int) -> Any:
        self._check_rank(root, "root")
        tag = self._collective_tag(_TAG_BCAST)
        size = self.size
        vrank = self._vrank(root)
        if vrank != 0:
            # Receive from parent: clear lowest set bit of vrank.
            parent_v = vrank & (vrank - 1)
            payload = self.recv(source=(parent_v + root) % size, tag=tag)
        # Forward to children: set each bit above the lowest set bit region.
        mask = 1
        while mask < size:
            if vrank & (mask - 1) == 0 and vrank & mask == 0:
                child_v = vrank | mask
                if child_v < size:
                    self._send_raw(payload, (child_v + root) % size, tag)
            mask <<= 1
        if self.rank == root:
            self.world.counters.record("bcast", messages=0, nbytes=payload_nbytes(payload))
        return payload

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather one payload per rank to ``root`` (rank order preserved)."""
        span = self._traced_collective("gather", root)
        if span is None:
            return self._gather(payload, root)
        with span:
            return self._gather(payload, root)

    def _gather(self, payload: Any, root: int) -> list[Any] | None:
        self._check_rank(root, "root")
        tag = self._collective_tag(_TAG_GATHER)
        if self.rank != root:
            self._send_raw(payload, root, tag)
            return None
        out: list[Any] = [None] * self.size
        out[root] = payload
        for src in range(self.size):
            if src != root:
                out[src] = self.recv(source=src, tag=tag)
        self.world.counters.record("gather", messages=0, nbytes=payload_nbytes(payload))
        return out

    def scatter(self, payloads: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one payload to each rank from ``root``'s list."""
        span = self._traced_collective("scatter", root)
        if span is None:
            return self._scatter(payloads, root)
        with span:
            return self._scatter(payloads, root)

    def _scatter(self, payloads: Sequence[Any] | None, root: int) -> Any:
        self._check_rank(root, "root")
        tag = self._collective_tag(_TAG_SCATTER)
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise MPIError(
                    f"scatter root needs exactly {self.size} payloads,"
                    f" got {None if payloads is None else len(payloads)}"
                )
            for dest in range(self.size):
                if dest != root:
                    self._send_raw(payloads[dest], dest, tag)
            self.world.counters.record("scatter", messages=0, nbytes=0)
            return payloads[root]
        return self.recv(source=root, tag=tag)

    def reduce(
        self, payload: Any, op: Callable[[Any, Any], Any] | None = None, root: int = 0
    ) -> Any:
        """Binomial-tree reduction to ``root``; ``op`` defaults to ``+``.

        ``op`` must be associative; contributions are combined in an order
        that is deterministic for a given world size.
        """
        span = self._traced_collective("reduce", root)
        if span is None:
            return self._reduce(payload, op, root)
        with span:
            return self._reduce(payload, op, root)

    def _reduce(
        self, payload: Any, op: Callable[[Any, Any], Any] | None, root: int
    ) -> Any:
        self._check_rank(root, "root")
        if op is None:
            op = lambda a, b: a + b  # noqa: E731
        tag = self._collective_tag(_TAG_REDUCE)
        size = self.size
        vrank = self._vrank(root)
        acc = payload
        mask = 1
        while mask < size:
            if vrank & mask:
                parent_v = vrank & ~mask
                self._send_raw(acc, (parent_v + root) % size, tag)
                break
            child_v = vrank | mask
            if child_v < size:
                other = self.recv(source=(child_v + root) % size, tag=tag)
                acc = op(acc, other)
            mask <<= 1
        if self.rank == root:
            self.world.counters.record("reduce", messages=0, nbytes=payload_nbytes(payload))
            return acc
        return None

    def allreduce(self, payload: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce to rank 0, then broadcast the result to everyone."""
        span = self._traced_collective("allreduce")
        if span is None:
            return self._allreduce(payload, op)
        with span:
            return self._allreduce(payload, op)

    def _allreduce(self, payload: Any, op: Callable[[Any, Any], Any] | None) -> Any:
        result = self.reduce(payload, op=op, root=0)
        return self.bcast(result, root=0)

    def allgather(self, payload: Any) -> list[Any]:
        """Gather to rank 0, then broadcast the full list."""
        span = self._traced_collective("allgather")
        if span is None:
            return self._allgather(payload)
        with span:
            return self._allgather(payload)

    def _allgather(self, payload: Any) -> list[Any]:
        tag_unused = self._collective_tag(_TAG_ALLGATHER)  # keeps seq aligned across ranks
        del tag_unused
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def barrier(self) -> None:
        """Synchronise all ranks (reduce + bcast of a token)."""
        span = self._traced_collective("barrier")
        if span is None:
            return self._barrier()
        with span:
            return self._barrier()

    def _barrier(self) -> None:
        self._collective_tag(_TAG_BARRIER)  # alignment only
        self.allreduce(0)
        self.world.counters.record("barrier", messages=0, nbytes=0)

    def __repr__(self) -> str:
        return f"Comm(rank={self.rank}, size={self.size})"
