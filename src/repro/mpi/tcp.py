"""Multi-host TCP transport: framed sockets under the unchanged ``Comm`` API.

The paper's 262,144-rank runs cross a real network, where RSTs, partitions
and congested links are routine.  This module is the socket substrate that
lets our virtual MPI face them: hosts (OS processes, each carrying several
rank threads — see :mod:`repro.mpi.hostexec`) exchange **length-prefixed,
pickled frames** over loopback-or-real TCP, with the robustness machinery
the in-process backends never needed:

* a **rendezvous/bootstrap listener** (:class:`Rendezvous`): hosts dial in,
  present an incarnation-tagged :class:`NetHello`, and — once every
  expected host has registered — receive a :class:`NetWelcome` carrying the
  membership view (host data addresses, the rank→host map, world size).
  The registration connection stays open as the run's control plane.
* **per-peer connection supervisors** (:class:`HostChannel`): one outbound
  channel per (local host, peer host) pair, reconnecting after any socket
  death with capped + jittered exponential backoff
  (:func:`repro.mpi.comm.backoff_wait`) and keeping the link warm with
  heartbeat pings.
* **transparent session resumption**: every data frame carries a per-link
  sequence number; the sender retains unacknowledged frames in a resend
  window, the receiver acknowledges cumulatively and drops already-seen
  sequence numbers.  On reconnect the handshake returns the receiver's
  delivered watermark and the sender replays the tail — so a TCP RST
  mid-generation is invisible to the simulation (the app-level reliable
  layer on top never even notices).
* **partition detection that degrades gracefully**: a link down longer than
  ``TcpOptions.unreachable_grace`` makes the peer's ranks *locally*
  unreachable — sends and receives raise
  :class:`~repro.errors.PeerUnreachableError` (a
  :class:`~repro.errors.RankFailedError`), feeding the existing degradation
  paths: Nature redistributes the victim's SSets, or the victim rejoins via
  FTHello/FTRejoin across hosts once the partition heals.
* **deterministic network chaos**: the injector's
  :meth:`~repro.mpi.faults.FaultInjector.link_fault` is consulted once per
  data frame, keyed by the directed rank pair's frame ordinal, so
  ``partition`` / ``slow_link`` / ``conn_reset`` schedules are pure
  functions of the plan seed (bit-reproducible), while the *healing* —
  reconnect, resume, rejoin — runs on real wall-clock sockets.

Traffic lands on the shared :class:`~repro.mpi.counters.CommCounters`
under ``net.*`` ops (see :mod:`repro.mpi.counters`) and reconnect /
partition events become tracer instants, so ``python -m repro.obs.report``
shows the socket layer next to the MPI layer.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import MPIError
from repro.logging_util import get_logger
from repro.mpi.comm import backoff_wait
from repro.mpi.counters import CommCounters
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "TcpOptions",
    "NetHello",
    "NetWelcome",
    "Rendezvous",
    "ControlClient",
    "HostChannel",
    "TcpNode",
    "send_frame",
    "recv_frame",
]

_LOG = get_logger("mpi.tcp")

_LEN = struct.Struct(">I")
_MAX_FRAME = 1 << 30


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def send_frame(sock: socket.socket, blob: bytes) -> None:
    """Write one length-prefixed frame (4-byte big-endian length + body)."""
    if len(blob) > _MAX_FRAME:
        raise MPIError(f"frame of {len(blob)} bytes exceeds the {_MAX_FRAME} B limit")
    sock.sendall(_LEN.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    chunks: list[bytes] = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes | None:
    """Read one length-prefixed frame; ``None`` on orderly EOF."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > _MAX_FRAME:
        raise MPIError(f"peer announced a {length} B frame (limit {_MAX_FRAME} B)")
    return _recv_exact(sock, length)


@dataclass(frozen=True)
class TcpOptions:
    """Socket-layer tuning knobs for the TCP transport.

    Attributes
    ----------
    connect_timeout:
        Seconds one TCP connect + channel handshake may take.
    heartbeat_interval:
        Idle seconds after which a channel pings its peer.
    heartbeat_timeout:
        Silence (no ack/pong) after which a connected link is declared
        down and torn up for reconnection.
    reconnect_base, reconnect_factor, reconnect_cap, reconnect_jitter:
        Capped + jittered exponential backoff between reconnect attempts
        (see :func:`repro.mpi.comm.backoff_wait`).
    unreachable_grace:
        Seconds a link may stay down before the peer host's ranks become
        locally unreachable (:class:`~repro.errors.PeerUnreachableError`).
    max_window:
        Resend-window capacity in frames; overflow drops the oldest
        unacknowledged frame (the app-level reliable layer re-sends).
    """

    connect_timeout: float = 5.0
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 5.0
    reconnect_base: float = 0.02
    reconnect_factor: float = 2.0
    reconnect_cap: float = 0.5
    reconnect_jitter: float = 0.5
    unreachable_grace: float = 10.0
    max_window: int = 4096


@dataclass(frozen=True)
class NetHello:
    """A host's dial-in: who it is, which incarnation, where its data lives.

    ``incarnation`` counts registrations of this host id (0 for the
    original, increasing across respawn-style rejoins) on the rendezvous
    path, and reconnect attempts on the per-channel handshake path — either
    way, receivers use it to tell a fresh arrival from a stale one.
    """

    host: int
    incarnation: int
    data_addr: tuple[str, int] | None
    ranks: tuple[int, ...] = ()


@dataclass(frozen=True)
class NetWelcome:
    """The membership view a registered host receives back.

    ``hosts`` maps host id → data-plane address; ``rank_hosts`` maps rank →
    owning host; ``world_size`` is the rank count at bootstrap (elastic
    growth updates it via control-plane broadcasts later).
    """

    hosts: dict[int, tuple[str, int]]
    rank_hosts: dict[int, int]
    world_size: int


class Rendezvous:
    """The bootstrap listener + control hub (runs inside the launcher).

    Hosts connect, send ``("hello", NetHello)`` and block until all
    ``n_hosts`` peers have registered; then each receives
    ``("welcome", NetWelcome)`` and the connection becomes a persistent
    control channel: every later inbound frame is handed to ``handler(host,
    msg)`` on the connection's reader thread, and the launcher answers via
    :meth:`send` / :meth:`broadcast`.  Sends are serialised per connection,
    so control messages from different launcher threads never interleave.
    """

    def __init__(
        self,
        n_hosts: int,
        rank_hosts: dict[int, int],
        handler: Callable[[int, Any], None],
        host: str = "127.0.0.1",
    ) -> None:
        if n_hosts < 1:
            raise MPIError(f"n_hosts must be >= 1, got {n_hosts}")
        self.n_hosts = n_hosts
        self.rank_hosts = dict(rank_hosts)
        self._handler = handler
        self._lock = threading.Lock()
        self._hellos: dict[int, NetHello] = {}
        self._conns: dict[int, socket.socket] = {}
        self._send_locks: dict[int, threading.Lock] = {}
        self._welcomed = False
        self._closed = False
        self.ready = threading.Event()
        self._listener = socket.create_server((host, 0))
        self.addr: tuple[str, int] = self._listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="tcp-rendezvous", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(sock,), name="tcp-rendezvous-conn", daemon=True
            ).start()

    def _serve(self, sock: socket.socket) -> None:
        host_id = -1
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            blob = recv_frame(sock)
            if blob is None:
                sock.close()
                return
            op, hello = pickle.loads(blob)
            if op != "hello" or not isinstance(hello, NetHello):
                sock.close()
                return
            host_id = hello.host
            with self._lock:
                self._hellos[host_id] = hello
                self._conns[host_id] = sock
                self._send_locks.setdefault(host_id, threading.Lock())
                complete = len(self._hellos) >= self.n_hosts and not self._welcomed
                if complete:
                    self._welcomed = True
            if complete:
                self._send_welcomes()
            while not self._closed:
                blob = recv_frame(sock)
                if blob is None:
                    break
                msg = pickle.loads(blob)
                try:
                    self._handler(host_id, msg)
                except Exception:  # noqa: BLE001 - one bad op must not cut the control plane
                    _LOG.exception("control handler failed for host %d", host_id)
        except (OSError, EOFError, pickle.UnpicklingError):
            pass
        finally:
            if host_id >= 0 and not self._closed:
                self._handler(host_id, ("ctrl_lost",))

    def _send_welcomes(self) -> None:
        with self._lock:
            hosts = {
                hid: h.data_addr for hid, h in self._hellos.items() if h.data_addr
            }
            targets = dict(self._conns)
        welcome = NetWelcome(
            hosts=hosts, rank_hosts=dict(self.rank_hosts), world_size=len(self.rank_hosts)
        )
        for hid in sorted(targets):
            self.send(hid, ("welcome", welcome))
        self.ready.set()

    def send(self, host_id: int, msg: Any) -> None:
        """Ship one control message to ``host_id`` (serialised per host)."""
        with self._lock:
            sock = self._conns.get(host_id)
            slock = self._send_locks.setdefault(host_id, threading.Lock())
        if sock is None:
            raise MPIError(f"no control connection to host {host_id}")
        with slock:
            send_frame(sock, _dumps(msg))

    def broadcast(self, msg: Any) -> None:
        """Ship one control message to every registered host; best-effort."""
        with self._lock:
            targets = sorted(self._conns)
        for hid in targets:
            try:
                self.send(hid, msg)
            except OSError:  # a dead host's ctrl socket; its ranks will fail
                _LOG.debug("control broadcast to host %d failed", hid)

    def hellos(self) -> dict[int, NetHello]:
        """The registered hellos so far (host id → :class:`NetHello`)."""
        with self._lock:
            return dict(self._hellos)

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass


class ControlClient:
    """A host's persistent connection to the :class:`Rendezvous`.

    Construction dials in, sends the :class:`NetHello` and blocks until the
    :class:`NetWelcome` arrives (i.e. until every host registered).  A
    reader thread then hands each control frame to ``handler(msg)``; a dead
    control link is surfaced as a final ``("ctrl_lost",)`` message.
    """

    def __init__(
        self,
        addr: tuple[str, int],
        hello: NetHello,
        handler: Callable[[Any], None],
        connect_timeout: float = 30.0,
    ) -> None:
        self._handler = handler
        self._send_lock = threading.Lock()
        self._closed = False
        self._sock = socket.create_connection(addr, timeout=connect_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_frame(self._sock, _dumps(("hello", hello)))
        blob = recv_frame(self._sock)
        if blob is None:
            raise MPIError("rendezvous closed the connection before the welcome")
        op, welcome = pickle.loads(blob)
        if op != "welcome" or not isinstance(welcome, NetWelcome):
            raise MPIError(f"expected a welcome from the rendezvous, got {op!r}")
        self.welcome: NetWelcome = welcome
        self._sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._read_loop, name="tcp-ctrl-client", daemon=True
        )
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while not self._closed:
                blob = recv_frame(self._sock)
                if blob is None:
                    break
                msg = pickle.loads(blob)
                try:
                    self._handler(msg)
                except Exception:  # noqa: BLE001 - one bad op must not cut the control plane
                    _LOG.exception("control handler failed")
        except (OSError, EOFError, pickle.UnpicklingError):
            pass
        finally:
            if not self._closed:
                self._handler(("ctrl_lost",))

    def send(self, msg: Any) -> None:
        with self._send_lock:
            send_frame(self._sock, _dumps(msg))

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


@dataclass
class _LinkState:
    """Mutable connection bookkeeping shared by a channel's threads."""

    sock: socket.socket | None = None
    epoch: int = 0
    connects: int = 0
    down_since: float | None = None
    blocked_until: float = 0.0
    last_sent: float = 0.0
    last_heard: float = 0.0


class HostChannel:
    """Outbound supervisor for one directed host link.

    Rank threads call :meth:`send`; a writer thread owns the socket —
    (re)dialing with capped+jittered backoff, performing the resume
    handshake, replaying the unacknowledged window, injecting scheduled
    network faults, and pinging on idle.  A per-connection reader thread
    consumes cumulative acks and pongs.

    The channel is lossless up to ``max_window`` in-flight frames; beyond
    that it degrades to a lossy link (the oldest unacked frame is shed),
    which the app-level reliable layer heals with a resend — never
    silently: sheds are counted under ``net.window_drop``.
    """

    def __init__(
        self,
        local_host: int,
        peer_host: int,
        addr_fn: Callable[[int], tuple[str, int] | None],
        options: TcpOptions,
        counters: CommCounters | None = None,
        tracer: Tracer | None = None,
        trace_rank: int = 0,
    ) -> None:
        self.local_host = local_host
        self.peer_host = peer_host
        self._addr_fn = addr_fn
        self.options = options
        self.counters = counters if counters is not None else CommCounters()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_rank = trace_rank
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._state = _LinkState(down_since=time.monotonic())
        self._next_seq = 1
        #: frames awaiting transmission: (seq, blob, fault_effect | None)
        self._outq: deque[tuple[int, bytes, tuple[str, float] | None]] = deque()
        #: frames on the wire, unacknowledged: (seq, blob)
        self._window: deque[tuple[int, bytes]] = deque()
        self._closed = False
        self._writer = threading.Thread(
            target=self._run,
            name=f"tcp-chan-{local_host}to{peer_host}",
            daemon=True,
        )
        self._writer.start()

    # -- public API (rank threads) -------------------------------------------------

    def send(
        self,
        src_rank: int,
        dst_rank: int,
        tag: int,
        payload: Any,
        nbytes: int,
        msg_id: int = 0,
        fault: tuple[str, float] | None = None,
    ) -> int:
        """Enqueue one data frame; returns its link sequence number.

        Pickling happens here, in the caller's thread, so unpicklable
        payloads fail at the send site (error locality) and the writer
        thread stays cheap.  ``fault`` is an injected network-fault effect
        ``(kind, seconds)`` decided by the caller's injector.
        """
        with self._cond:
            if self._closed:
                raise MPIError(
                    f"channel {self.local_host}->{self.peer_host} is closed"
                )
            seq = self._next_seq
            self._next_seq += 1
            blob = _dumps(("data", seq, src_rank, dst_rank, tag, payload, nbytes, msg_id))
            self._outq.append((seq, blob, fault))
            self._cond.notify_all()
        return seq

    def down_for(self) -> float:
        """Seconds the link has been continuously down (0.0 when up)."""
        with self._lock:
            down = self._state.down_since
        return 0.0 if down is None else max(0.0, time.monotonic() - down)

    def is_unreachable(self) -> bool:
        """Whether the link outage has crossed ``unreachable_grace``."""
        return self.down_for() > self.options.unreachable_grace

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._teardown(rst=False)

    def join(self, timeout: float | None = None) -> None:
        self._writer.join(timeout=timeout)

    # -- writer-side machinery -----------------------------------------------------

    def _teardown(self, rst: bool) -> None:
        """Close the current socket (optionally as a hard RST) and mark down."""
        with self._lock:
            sock = self._state.sock
            self._state.sock = None
            self._state.epoch += 1
            if self._state.down_since is None:
                self._state.down_since = time.monotonic()
        if sock is not None:
            try:
                if rst:
                    # SO_LINGER(on, 0) turns close() into an abortive RST —
                    # the genuine mid-stream reset the fault plan asked for.
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                    )
                sock.close()
            except OSError:
                pass

    def _connect_once(self) -> bool:
        """One dial + handshake attempt; True when the link is up after it."""
        addr = self._addr_fn(self.peer_host)
        if addr is None:
            return False
        opts = self.options
        sock = socket.create_connection(addr, timeout=opts.connect_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(opts.connect_timeout)
            with self._lock:
                connects = self._state.connects
            send_frame(sock, _dumps(("chello", self.local_host, connects)))
            blob = recv_frame(sock)
            if blob is None:
                raise OSError("peer closed during channel handshake")
            op, _peer_host, delivered = pickle.loads(blob)
            if op != "cwelcome":
                raise OSError(f"unexpected channel handshake reply {op!r}")
            sock.settimeout(None)
        except BaseException:
            sock.close()
            raise
        resumed = 0
        now = time.monotonic()
        with self._cond:
            # Resume: drop window frames the peer already delivered, replay
            # the rest ahead of any queued traffic (order preserved).
            while self._window and self._window[0][0] <= delivered:
                self._window.popleft()
            for seq, blob_ in reversed(self._window):
                self._outq.appendleft((seq, blob_, None))
                resumed += 1
            self._window.clear()
            was_down = self._state.connects > 0
            self._state.sock = sock
            self._state.epoch += 1
            epoch = self._state.epoch
            self._state.connects += 1
            self._state.down_since = None
            self._state.last_sent = now
            self._state.last_heard = now
        self.counters.record("net.reconnect" if was_down else "net.connect")
        if resumed:
            self.counters.record("net.frames_resent", messages=resumed)
        if self.tracer.enabled:
            self.tracer.instant(
                "net.reconnect" if was_down else "net.connect",
                cat="net",
                rank=self.trace_rank,
                args={
                    "peer_host": self.peer_host,
                    "resumed_frames": resumed,
                    "delivered_watermark": delivered,
                },
            )
        threading.Thread(
            target=self._read_loop,
            args=(sock, epoch),
            name=f"tcp-chan-rd-{self.local_host}to{self.peer_host}",
            daemon=True,
        ).start()
        return True

    def _ensure_connected(self) -> bool:
        """Dial until connected (with backoff) or closed/blocked; True if up."""
        attempt = 0
        while not self._closed:
            with self._lock:
                if self._state.sock is not None:
                    return True
                blocked = self._state.blocked_until - time.monotonic()
            if blocked > 0:
                # An injected partition: connection attempts are refused
                # until the partition heals.
                time.sleep(min(blocked, 0.05))
                continue
            try:
                if self._connect_once():
                    return True
            except (OSError, pickle.UnpicklingError, EOFError) as exc:
                _LOG.debug(
                    "channel %d->%d dial failed (attempt %d): %r",
                    self.local_host, self.peer_host, attempt, exc,
                )
            wait = backoff_wait(
                self.options.reconnect_base,
                attempt,
                factor=self.options.reconnect_factor,
                cap=self.options.reconnect_cap,
                jitter=self.options.reconnect_jitter,
                key=("tcp-reconnect", self.local_host, self.peer_host),
            )
            attempt += 1
            deadline = time.monotonic() + wait
            while not self._closed and time.monotonic() < deadline:
                time.sleep(0.01)
        return False

    def _read_loop(self, sock: socket.socket, epoch: int) -> None:
        try:
            while True:
                blob = recv_frame(sock)
                if blob is None:
                    break
                msg = pickle.loads(blob)
                if msg[0] == "ack":
                    with self._lock:
                        if self._state.epoch != epoch:
                            break
                        acked = msg[1]
                        while self._window and self._window[0][0] <= acked:
                            self._window.popleft()
                        self._state.last_heard = time.monotonic()
                elif msg[0] == "pong":
                    with self._lock:
                        if self._state.epoch != epoch:
                            break
                        self._state.last_heard = time.monotonic()
        except (OSError, EOFError, pickle.UnpicklingError):
            pass
        with self._lock:
            stale = self._state.epoch != epoch
        if not stale:
            self._teardown(rst=False)

    def _idle_tick(self) -> None:
        opts = self.options
        now = time.monotonic()
        with self._lock:
            sock = self._state.sock
            last_heard = self._state.last_heard
            last_sent = self._state.last_sent
            backlog = bool(self._outq or self._window)
        if sock is not None:
            if now - last_heard > opts.heartbeat_timeout:
                _LOG.debug(
                    "channel %d->%d heartbeat timeout (%.2fs silent)",
                    self.local_host, self.peer_host, now - last_heard,
                )
                self._teardown(rst=False)
            elif now - last_sent >= opts.heartbeat_interval:
                try:
                    send_frame(sock, _dumps(("ping",)))
                    with self._lock:
                        self._state.last_sent = now
                    self.counters.record("net.heartbeat")
                except OSError:
                    self._teardown(rst=False)
        elif backlog:
            self._ensure_connected()

    def _run(self) -> None:
        opts = self.options
        while True:
            with self._cond:
                while not self._outq and not self._closed:
                    if not self._cond.wait(timeout=min(0.05, opts.heartbeat_interval)):
                        break
                if self._closed and not self._outq:
                    return
                item = self._outq.popleft() if self._outq else None
            if item is None:
                self._idle_tick()
                continue
            seq, blob, fault = item
            if fault is not None:
                kind, seconds = fault
                if kind == "slow_link":
                    # The frame — and everything queued behind it — waits:
                    # a congested link delays the whole stream.
                    time.sleep(seconds)
                elif kind in ("conn_reset", "partition"):
                    self._teardown(rst=True)
                    if kind == "partition":
                        with self._lock:
                            self._state.blocked_until = time.monotonic() + seconds
                    if self.tracer.enabled:
                        self.tracer.instant(
                            f"net.{kind}", cat="net", rank=self.trace_rank,
                            args={"peer_host": self.peer_host, "seq": seq},
                        )
                    # The frame itself survives: requeue fault-free; it will
                    # ride the post-reconnect resume path.
                    with self._cond:
                        self._outq.appendleft((seq, blob, None))
                    continue
            with self._lock:
                sock = self._state.sock
            if sock is None:
                # Reconnecting replays the unacked window ahead of queued
                # traffic, so the in-hand frame must rejoin the queue
                # *behind* that replay rather than jump it — otherwise the
                # receiver's watermark would dedup the replayed frames as
                # stale and a frame would vanish.
                with self._cond:
                    self._outq.appendleft((seq, blob, None))
                if not self._ensure_connected():
                    return  # closed while dialing
                continue
            try:
                send_frame(sock, blob)
            except OSError:
                self._teardown(rst=False)
                with self._cond:
                    self._outq.appendleft((seq, blob, None))
                continue
            with self._cond:
                self._state.last_sent = time.monotonic()
                self._window.append((seq, blob))
                if len(self._window) > opts.max_window:
                    self._window.popleft()
                    self.counters.record("net.window_drop")
            self.counters.record("net.frames", nbytes=len(blob))


class TcpNode:
    """A host's data-plane listener: accepts channels, delivers frames.

    Each inbound connection handshakes (``chello`` → ``cwelcome`` carrying
    the delivered-sequence watermark for that peer, which powers session
    resumption), then streams data frames.  Frames with already-delivered
    sequence numbers are dropped (counted under ``net.dedup``); fresh ones
    go to ``deliver(src_rank, dst_rank, tag, payload, nbytes, msg_id)``
    and are cumulatively acknowledged on the same socket.
    """

    def __init__(
        self,
        host_id: int,
        deliver: Callable[[int, int, int, Any, int, int], None],
        options: TcpOptions | None = None,
        counters: CommCounters | None = None,
        bind_host: str = "127.0.0.1",
    ) -> None:
        self.host_id = host_id
        self._deliver = deliver
        self.options = options if options is not None else TcpOptions()
        self.counters = counters if counters is not None else CommCounters()
        self._lock = threading.Lock()
        self._delivered: dict[int, int] = {}
        self._conns: list[socket.socket] = []
        self._closed = False
        self._listener = socket.create_server((bind_host, 0))
        self.addr: tuple[str, int] = self._listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-node-{host_id}", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return
            with self._lock:
                self._conns.append(sock)
            threading.Thread(
                target=self._serve, args=(sock,),
                name=f"tcp-node-conn-{self.host_id}", daemon=True,
            ).start()

    def _serve(self, sock: socket.socket) -> None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.options.connect_timeout)
            blob = recv_frame(sock)
            if blob is None:
                return
            op, src_host, _incarnation = pickle.loads(blob)
            if op != "chello":
                return
            with self._lock:
                delivered = self._delivered.get(src_host, 0)
            send_frame(sock, _dumps(("cwelcome", self.host_id, delivered)))
            sock.settimeout(None)
            while True:
                blob = recv_frame(sock)
                if blob is None:
                    return
                msg = pickle.loads(blob)
                if msg[0] == "data":
                    _op, seq, src_rank, dst_rank, tag, payload, nbytes, msg_id = msg
                    with self._lock:
                        fresh = seq > self._delivered.get(src_host, 0)
                        if fresh:
                            self._delivered[src_host] = seq
                    if fresh:
                        try:
                            self._deliver(src_rank, dst_rank, tag, payload, nbytes, msg_id)
                        except Exception:  # noqa: BLE001 - a bad frame must not kill the link
                            _LOG.exception(
                                "delivery of frame %d (rank %d->%d) failed",
                                seq, src_rank, dst_rank,
                            )
                    else:
                        self.counters.record("net.dedup")
                    send_frame(sock, _dumps(("ack", seq)))
                elif msg[0] == "ping":
                    send_frame(sock, _dumps(("pong",)))
        except (OSError, EOFError, pickle.UnpicklingError):
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass
            with self._lock:
                if sock in self._conns:
                    self._conns.remove(sock)

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass
