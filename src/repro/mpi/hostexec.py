"""Multi-host SPMD launcher: ranks as threads on TCP-connected host processes.

:func:`run_spmd_tcp` is the ``mpiexec --hostfile`` stand-in: it deals
``n_ranks`` virtual ranks round-robin across ``n_hosts`` OS-process
"hosts" (rank *r* lives on host ``r % n_hosts``), boots a
:class:`~repro.mpi.tcp.Rendezvous` for them to dial into, and joins the
whole world — same ``Comm`` API, same :class:`~repro.mpi.executor.SPMDResult`
as the thread and process backends.  In CI the hosts share one machine and
talk over loopback; nothing in the protocol assumes that.

Architecture
------------
Each host process runs:

* a :class:`~repro.mpi.tcp.TcpNode` (data-plane listener) plus one
  supervised :class:`~repro.mpi.tcp.HostChannel` per peer host it sends
  to — host-level links, so a rank respawn never churns sockets;
* a :class:`~repro.mpi.tcp.ControlClient` back to the launcher's
  rendezvous — the control plane that gives failure marks, aborts,
  shutdowns and membership changes a single total order (every host
  applies the launcher's ``apply`` broadcasts; latency-sensitive marks are
  additionally applied locally first, all idempotently);
* one thread per local rank, each holding a :class:`_RankView` — a
  :class:`~repro.mpi.comm.World` duck-type that routes same-host traffic
  straight into the destination's mailbox and cross-host traffic through
  the channels.

Fault handling generalises :mod:`repro.mpi.procexec`'s respawn machinery
across hosts: an injected ``crash`` kills the rank thread (the "rank
process" of its host), which is marked failed world-wide and — under
``on_rank_failure="respawn"`` — replaced by a fresh incarnation *on the
same host* after a centrally granted budget check; the replacement rejoins
via the rank program's own recovery protocol (FTHello/FTRejoin), now
crossing real sockets.  Injected ``partition``/``conn_reset``/``slow_link``
faults live a layer below, inside the channels (see :mod:`repro.mpi.tcp`),
and heal by reconnect + session resumption without the simulation
noticing; only a partition outlasting ``TcpOptions.unreachable_grace``
escalates into :class:`~repro.errors.PeerUnreachableError` and the
failed-rank machinery.

Elastic membership: ``World.grow(n)`` on any rank asks the launcher for
fresh rank ids; the launcher assigns hosts (same round-robin), broadcasts
the membership change, and the owning hosts spawn joiner threads whose
rank programs rejoin exactly like respawned ranks.  ``World.shrink(ranks)``
records retirements world-wide; ownership exclusions travel in the rank
program's own headers (see ``owner_map_with_failures``).
"""

from __future__ import annotations

import pickle
import queue as stdlib_queue
import threading
import time
from typing import Any, Callable, Sequence

from repro.errors import (
    CommAbortError,
    MPIError,
    PeerUnreachableError,
    RankCrashError,
)
from repro.logging_util import get_logger
from repro.mpi.comm import Comm, _Mailbox
from repro.mpi.comm import World
from repro.mpi.counters import CommCounters
from repro.mpi.executor import RespawnRecord, SPMDResult
from repro.mpi.faults import FaultInjector, FaultPlan
from repro.mpi.procexec import _pick_context, _pickle_exc
from repro.mpi.tcp import ControlClient, NetHello, Rendezvous, TcpNode, TcpOptions, HostChannel
from repro.obs.tracer import NULL_TRACER, Tracer, activate

__all__ = ["run_spmd_tcp", "MAX_TCP_RANKS", "MAX_TCP_HOSTS"]

_LOG = get_logger("mpi.hostexec")

MAX_TCP_RANKS = 256
MAX_TCP_HOSTS = 16

#: Seconds a control request (grow/respawn grant) may wait for its reply.
_REQ_TIMEOUT = 60.0
#: Seconds a failed-but-alive (hung) rank keeps its thread before a
#: replacement incarnation is started next to it.
_RESPAWN_HANG_GRACE = 1.0
#: Seconds the launcher lets an aborted world drain results before
#: collecting what it has.
_ABORT_DRAIN_GRACE = 10.0
#: Seconds a host waits for the launcher's exit token after reporting done.
_EXIT_GRACE = 60.0


def _host_of(rank: int, n_hosts: int) -> int:
    """The host owning ``rank`` — same rule at bootstrap and after grow."""
    return rank % n_hosts


class _RemoteTcpMailbox:
    """Deliver-only mailbox stand-in for a rank on another host."""

    __slots__ = ("_rt", "dest")

    def __init__(self, runtime: "_HostRuntime", dest: int) -> None:
        self._rt = runtime
        self.dest = dest

    def deliver(
        self, source: int, tag: int, payload: Any, nbytes: int, msg_id: int = 0
    ) -> None:
        self._rt.deliver_remote(source, self.dest, tag, payload, nbytes, msg_id)


class _MailboxDirectory:
    """Per-rank ``world.mailboxes`` stand-in resolving routes at use time.

    Same-host destinations resolve to the *current* :class:`_Mailbox`
    (respawns swap mailboxes; late resolution reroutes automatically);
    cross-host destinations resolve to a cached deliver-only proxy.
    """

    __slots__ = ("_rt", "_remote")

    def __init__(self, runtime: "_HostRuntime") -> None:
        self._rt = runtime
        self._remote: dict[int, _RemoteTcpMailbox] = {}

    def __getitem__(self, dest: int) -> Any:
        rt = self._rt
        if rt.host_of(dest) == rt.host_id:
            return rt.mailbox(dest)
        box = self._remote.get(dest)
        if box is None:
            box = self._remote[dest] = _RemoteTcpMailbox(rt, dest)
        return box


class _RankView:
    """One rank thread's window onto the multi-host world.

    Duck-types :class:`~repro.mpi.comm.World` for :class:`Comm` and the
    rank programs: shared per-host counters/tracer/injector and
    abort/stop events, per-rank incarnation, live membership via the
    runtime.
    """

    def __init__(self, runtime: "_HostRuntime", rank: int, incarnation: int) -> None:
        self._rt = runtime
        self.rank = rank
        self.incarnation = incarnation
        self.mailboxes = _MailboxDirectory(runtime)
        self.counters = runtime.counters
        self.tracer = runtime.tracer if runtime.tracer is not None else NULL_TRACER
        self.injector = runtime.injector
        self.abort_event = runtime.abort_event
        self.stop_event = runtime.stop_event

    @property
    def size(self) -> int:
        return self._rt.size

    @property
    def abort_reason(self) -> str | None:
        return self._rt.abort_reason

    @property
    def joiner_ranks(self) -> set[int]:
        return self._rt.joiner_ranks()

    @property
    def retired_ranks(self) -> set[int]:
        return self._rt.retired_ranks()

    def is_failed(self, rank: int) -> bool:
        return self._rt.is_failed(rank)

    def is_unreachable(self, rank: int) -> bool:
        return self._rt.is_unreachable(rank)

    def mark_failed(self, rank: int, reason: str = "") -> None:
        self._rt.mark_failed(rank, reason)

    def mark_alive(self, rank: int) -> None:
        self._rt.mark_alive(rank)

    def abort(self, reason: str) -> None:
        self._rt.abort(reason)

    def shutdown(self) -> None:
        self._rt.shutdown()

    def grow(self, n: int) -> tuple[int, ...]:
        return self._rt.grow(n)

    def shrink(self, ranks: Sequence[int]) -> tuple[int, ...]:
        return self._rt.shrink(ranks)


class _HostRuntime:
    """Everything one host process shares between its rank threads."""

    def __init__(
        self,
        host_id: int,
        n_hosts: int,
        ranks: tuple[int, ...],
        controller_addr: tuple[str, int],
        fn: Callable[..., Any],
        args: tuple,
        fault_plan: FaultPlan | None,
        on_rank_failure: str,
        trace_epoch: float | None,
        rank_names: dict[int, str],
        flow_start: int,
        options: TcpOptions,
    ) -> None:
        self.host_id = host_id
        self.n_hosts = n_hosts
        self.fn = fn
        self.args = args
        self.on_rank_failure = on_rank_failure
        self.options = options
        self.rank_names = rank_names
        self.counters = CommCounters()
        self.injector = FaultInjector(fault_plan) if fault_plan is not None else None
        self.tracer = (
            Tracer(epoch=trace_epoch, flow_start=flow_start)
            if trace_epoch is not None
            else None
        )
        self.abort_event = threading.Event()
        self.stop_event = threading.Event()
        self.exit_event = threading.Event()
        self.drain_event = threading.Event()
        self.abort_reason: str | None = None
        self._lock = threading.Lock()
        self._failed: set[int] = set()
        self._joiners: set[int] = set()
        self._retired: set[int] = set()
        self._mailboxes: dict[int, _Mailbox] = {r: _Mailbox() for r in ranks}
        self._all_mailboxes: list[_Mailbox] = list(self._mailboxes.values())
        self._incarnations: dict[int, int] = {r: 0 for r in ranks}
        self._threads: list[threading.Thread] = []
        self._respawning: set[int] = set()
        self._channels: dict[int, HostChannel] = {}
        self._frame_counts: dict[tuple[int, int], int] = {}
        self._req_lock = threading.Lock()
        self._req_seq = 0
        self._req_waits: dict[int, tuple[threading.Event, list]] = {}

        # Membership state must exist before the control reader starts: a
        # grow broadcast can race this constructor on a non-requesting host.
        self._host_addrs: dict[int, tuple[str, int]] = {}
        self._rank_hosts: dict[int, int] = {}
        self._size = 0

        self.node = TcpNode(
            host_id,
            self._deliver_local,
            options=options,
            counters=self.counters,
        )
        self.ctrl = ControlClient(
            controller_addr,
            NetHello(
                host=host_id, incarnation=0, data_addr=self.node.addr, ranks=ranks
            ),
            self._on_ctrl,
        )
        welcome = self.ctrl.welcome
        with self._lock:
            self._host_addrs.update(welcome.hosts)
            for rank, host in welcome.rank_hosts.items():
                self._rank_hosts.setdefault(rank, host)
            self._size = max(self._size, welcome.world_size)

    # -- membership views ----------------------------------------------------------

    @property
    def size(self) -> int:
        with self._lock:
            return self._size

    def host_of(self, rank: int) -> int:
        with self._lock:
            host = self._rank_hosts.get(rank)
        if host is None:
            # A rank the membership view has not caught up with yet; the
            # assignment rule is deterministic, so compute it.
            host = _host_of(rank, self.n_hosts)
        return host

    def mailbox(self, rank: int) -> _Mailbox:
        with self._lock:
            box = self._mailboxes.get(rank)
        if box is None:
            raise MPIError(f"rank {rank} has no mailbox on host {self.host_id}")
        return box

    def joiner_ranks(self) -> set[int]:
        with self._lock:
            return set(self._joiners)

    def retired_ranks(self) -> set[int]:
        with self._lock:
            return set(self._retired)

    def is_failed(self, rank: int) -> bool:
        with self._lock:
            return rank in self._failed

    def is_unreachable(self, rank: int) -> bool:
        host = self.host_of(rank)
        if host == self.host_id:
            return False
        with self._lock:
            channel = self._channels.get(host)
        return channel is not None and channel.is_unreachable()

    # -- control plane -------------------------------------------------------------

    def _on_ctrl(self, msg: Any) -> None:
        """Apply one launcher broadcast (runs on the control reader thread)."""
        op = msg[0]
        if op == "apply":
            what = msg[1]
            if what == "mark_failed":
                self._apply_mark_failed(msg[2], msg[3])
            elif what == "mark_alive":
                self._apply_mark_alive(msg[2])
            elif what == "abort":
                self._apply_abort(msg[2])
            elif what == "shutdown":
                self.stop_event.set()
                self._wake_all()
            elif what == "grow":
                self._apply_grow(msg[2])
            elif what == "retire":
                with self._lock:
                    self._retired.update(msg[2])
                self._wake_all()
        elif op == "rep":
            with self._req_lock:
                waiter = self._req_waits.pop(msg[1], None)
            if waiter is not None:
                event, slot = waiter
                slot.append(msg[2])
                event.set()
        elif op == "drain":
            self.drain_event.set()
        elif op == "exit":
            self.exit_event.set()
            self.drain_event.set()
        elif op == "ctrl_lost":
            if not self.exit_event.is_set():
                self._apply_abort("control link to the launcher was lost")
                self.exit_event.set()
                self.drain_event.set()

    def _request(self, *req: Any) -> Any:
        """Round-trip one request to the launcher; None on timeout."""
        event = threading.Event()
        slot: list = []
        with self._req_lock:
            self._req_seq += 1
            req_id = self._req_seq * MAX_TCP_HOSTS + self.host_id
            self._req_waits[req_id] = (event, slot)
        try:
            self.ctrl.send(("req", req_id, *req))
        except OSError:
            with self._req_lock:
                self._req_waits.pop(req_id, None)
            return None
        if not event.wait(timeout=_REQ_TIMEOUT):
            with self._req_lock:
                self._req_waits.pop(req_id, None)
            return None
        return slot[0] if slot else None

    def _apply_mark_failed(self, rank: int, reason: str) -> None:
        with self._lock:
            fresh = rank not in self._failed
            self._failed.add(rank)
            local = self._rank_hosts.get(rank) == self.host_id
            incarnation = self._incarnations.get(rank)
        self._wake_all()
        if (
            fresh
            and local
            and self.on_rank_failure == "respawn"
            and rank != 0
            and incarnation is not None
        ):
            # Possibly a hang (thread alive but declared dead by the
            # protocol layer): give a heal a grace window, then respawn a
            # fresh incarnation next to the silent thread.  The timer
            # no-ops when the crash path already respawned (incarnation
            # moved on) or the mark was stale (flag cleared by a heal).
            timer = threading.Timer(
                _RESPAWN_HANG_GRACE, self._hang_respawn_check, args=(rank, incarnation, reason)
            )
            timer.daemon = True
            timer.start()

    def _hang_respawn_check(self, rank: int, incarnation: int, reason: str) -> None:
        with self._lock:
            still_failed = rank in self._failed
            current = self._incarnations.get(rank)
        if still_failed and current == incarnation:
            self.maybe_respawn(rank, reason or "declared failed while silent", incarnation)

    def _apply_mark_alive(self, rank: int) -> None:
        with self._lock:
            self._failed.discard(rank)
            self._joiners.discard(rank)
        self._wake_all()

    def _apply_abort(self, reason: str) -> None:
        if self.abort_reason is None:
            self.abort_reason = reason
        self.abort_event.set()
        self._wake_all()

    def _apply_grow(self, assignments: tuple[tuple[int, int], ...]) -> None:
        mine: list[int] = []
        with self._lock:
            for rank, host in assignments:
                self._rank_hosts[rank] = host
                self._size = max(self._size, rank + 1)
                self._joiners.add(rank)
                if host == self.host_id and rank not in self._mailboxes:
                    box = _Mailbox()
                    self._mailboxes[rank] = box
                    self._all_mailboxes.append(box)
                    self._incarnations[rank] = 0
                    mine.append(rank)
        for rank in mine:
            self.start_rank(rank, 0)
        self._wake_all()

    def mark_failed(self, rank: int, reason: str = "") -> None:
        self._apply_mark_failed(rank, reason)
        try:
            self.ctrl.send(("ctrl", "mark_failed", rank, reason))
        except OSError:
            pass

    def mark_alive(self, rank: int) -> None:
        self._apply_mark_alive(rank)
        try:
            self.ctrl.send(("ctrl", "mark_alive", rank))
        except OSError:
            pass

    def abort(self, reason: str) -> None:
        self._apply_abort(reason)
        try:
            self.ctrl.send(("ctrl", "abort", reason))
        except OSError:
            pass

    def shutdown(self) -> None:
        self.stop_event.set()
        self._wake_all()
        try:
            self.ctrl.send(("ctrl", "shutdown"))
        except OSError:
            pass

    def grow(self, n: int) -> tuple[int, ...]:
        if n < 1:
            raise MPIError(f"grow() needs n >= 1, got {n}")
        new_ranks = self._request("grow", int(n))
        if new_ranks is None:
            raise MPIError("grow() request to the launcher failed or timed out")
        return tuple(new_ranks)

    def shrink(self, ranks: Sequence[int]) -> tuple[int, ...]:
        retired = tuple(sorted({int(r) for r in ranks}))
        size = self.size
        for rank in retired:
            if not 0 < rank < size:
                raise MPIError(f"cannot shrink rank {rank}: out of range (1, {size})")
        with self._lock:
            if any(r in self._retired for r in retired):
                raise MPIError("cannot shrink: some ranks are already retired")
            self._retired.update(retired)
        try:
            self.ctrl.send(("ctrl", "retire", retired))
        except OSError:
            pass
        self._wake_all()
        return retired

    def _wake_all(self) -> None:
        with self._lock:
            boxes = list(self._all_mailboxes)
        for box in boxes:
            with box.lock:
                box.ready.notify_all()

    # -- data plane ----------------------------------------------------------------

    def _channel(self, peer_host: int) -> HostChannel:
        with self._lock:
            channel = self._channels.get(peer_host)
            if channel is None:
                trace_rank = min(self._incarnations, default=0)
                channel = HostChannel(
                    self.host_id,
                    peer_host,
                    self._host_addrs.get,
                    self.options,
                    counters=self.counters,
                    tracer=self.tracer if self.tracer is not None else NULL_TRACER,
                    trace_rank=trace_rank,
                )
                self._channels[peer_host] = channel
            return channel

    def deliver_remote(
        self, source: int, dest: int, tag: int, payload: Any, nbytes: int, msg_id: int
    ) -> None:
        """Route one message to a rank on another host (rank-thread path)."""
        dest_host = self.host_of(dest)
        fault: tuple[str, float] | None = None
        if self.injector is not None:
            with self._lock:
                frame_index = self._frame_counts.get((source, dest), 0)
                self._frame_counts[(source, dest)] = frame_index + 1
            kind = self.injector.link_fault(source, dest, frame_index)
            if kind is not None:
                plan = self.injector.plan
                seconds = (
                    plan.partition_seconds
                    if kind == "partition"
                    else plan.slow_link_seconds if kind == "slow_link" else 0.0
                )
                fault = (kind, seconds)
                self.counters.record(f"net.{kind}")
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.instant(
                        f"net.{kind}", cat="net", rank=source,
                        args={"dest": dest, "frame_index": frame_index},
                    )
        channel = self._channel(dest_host)
        if channel.is_unreachable():
            self.counters.record("net.peer_unreachable")
            raise PeerUnreachableError(
                f"rank {dest} on host {dest_host} has been unreachable for"
                f" {channel.down_for():.1f}s (grace"
                f" {self.options.unreachable_grace}s)",
                rank=dest,
                deadline=self.options.unreachable_grace,
            )
        channel.send(source, dest, tag, payload, nbytes, msg_id, fault=fault)

    def _deliver_local(
        self, src_rank: int, dst_rank: int, tag: int, payload: Any, nbytes: int, msg_id: int
    ) -> None:
        """Inbound frame from the node: hand it to the local mailbox."""
        with self._lock:
            box = self._mailboxes.get(dst_rank)
        if box is None:
            _LOG.debug(
                "host %d dropping frame for non-local rank %d", self.host_id, dst_rank
            )
            return
        box.deliver(src_rank, tag, payload, nbytes, msg_id)

    # -- rank threads --------------------------------------------------------------

    def ship_result(self, message: tuple) -> None:
        try:
            self.ctrl.send(("result", message))
        except OSError:  # pragma: no cover - control link died at the wire
            _LOG.exception("host %d could not ship a rank result", self.host_id)

    def start_rank(self, rank: int, incarnation: int) -> None:
        name = f"vmpi-rank-{rank}" if incarnation == 0 else f"vmpi-rank-{rank}.{incarnation}"
        thread = threading.Thread(
            target=self._run_rank, args=(rank, incarnation), name=name, daemon=True
        )
        with self._lock:
            self._threads.append(thread)
        thread.start()

    def maybe_respawn(self, rank: int, reason: str, dead_incarnation: int) -> bool:
        """Replace a dead/hung local rank with a fresh incarnation.

        Budget lives with the launcher; the grant (the new incarnation
        number) is requested over the control plane.  Returns True when a
        replacement was started.
        """
        with self._lock:
            if self._incarnations.get(rank) != dead_incarnation or rank in self._respawning:
                return False
            self._respawning.add(rank)
        try:
            grant = self._request("respawn", rank, reason)
            if grant is None:
                _LOG.debug("host %d: no respawn grant for rank %d", self.host_id, rank)
                return False
            with self._lock:
                self._incarnations[rank] = grant
                box = _Mailbox()
                self._mailboxes[rank] = box
                self._all_mailboxes.append(box)
            self.counters.record("respawn", messages=0)
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.instant(
                    "respawn", cat="mpi.fault", rank=rank,
                    args={"incarnation": grant, "reason": reason},
                )
            self.start_rank(rank, grant)
            return True
        finally:
            with self._lock:
                self._respawning.discard(rank)

    def _run_rank(self, rank: int, incarnation: int) -> None:
        view = _RankView(self, rank, incarnation)
        comm = Comm(view, rank)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.set_rank(rank)
            name = self.rank_names.get(rank)
            if name:
                tracer.name_rank(rank, name)
        try:
            value = self.fn(comm, *self.args)
        except CommAbortError:
            # Secondary casualty of another rank's failure; keep quiet.
            self.ship_result(("quiet", rank, incarnation, None))
        except PeerUnreachableError as exc:
            # Cut off by a partition this rank could not degrade around
            # (e.g. a worker that lost Nature).  Die like a crash: marked
            # failed, maybe respawned — the replacement rejoins once the
            # partition heals.
            self._die_to_fault(rank, incarnation, f"unreachable peer: {exc}")
        except RankCrashError as exc:
            self._die_to_fault(rank, incarnation, str(exc))
        except BaseException as exc:  # noqa: BLE001 - must not lose rank errors
            _LOG.debug("rank %d failed: %r", rank, exc)
            self.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")
            self.ship_result(("err", rank, incarnation, _pickle_exc(exc)))
        else:
            try:
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                err = MPIError(f"rank {rank} returned an unpicklable value: {exc!r}")
                self.abort(str(err))
                self.ship_result(("err", rank, incarnation, _pickle_exc(err)))
            else:
                self.ship_result(("done", rank, incarnation, value))

    def _die_to_fault(self, rank: int, incarnation: int, reason: str) -> None:
        if self.on_rank_failure in ("continue", "respawn"):
            _LOG.debug("rank %d dying: %s", rank, reason)
            self.mark_failed(rank, reason)
            self.ship_result(("selfdead", rank, incarnation, reason))
            if self.on_rank_failure == "respawn" and rank != 0:
                self.maybe_respawn(rank, reason, incarnation)
        else:
            self.abort(f"rank {rank} died: {reason}")
            self.ship_result(
                ("err", rank, incarnation, _pickle_exc(RankCrashError(reason)))
            )

    # -- lifecycle -----------------------------------------------------------------

    def threads(self) -> list[threading.Thread]:
        with self._lock:
            return list(self._threads)

    def epilogue(self) -> tuple[dict, list, list]:
        counters = self.counters.snapshot()
        fault_log = list(self.injector.log) if self.injector is not None else []
        events = self.tracer.events() if self.tracer is not None else []
        return counters, fault_log, events

    def close(self) -> None:
        with self._lock:
            channels = list(self._channels.values())
        for channel in channels:
            channel.close()
        self.node.close()
        self.ctrl.close()


def _host_main(
    host_id: int,
    n_hosts: int,
    ranks: tuple[int, ...],
    controller_addr: tuple[str, int],
    fn: Callable[..., Any],
    args: tuple,
    fault_plan: FaultPlan | None,
    on_rank_failure: str,
    trace_epoch: float | None,
    rank_names: dict[int, str],
    flow_start: int,
    options: TcpOptions,
) -> None:
    """Entry point of one host process (module-level for spawn support)."""
    runtime = _HostRuntime(
        host_id, n_hosts, ranks, controller_addr, fn, tuple(args), fault_plan,
        on_rank_failure, trace_epoch, rank_names, flow_start, options,
    )
    scope = activate(runtime.tracer) if runtime.tracer is not None else None
    if scope is not None:
        scope.__enter__()
    try:
        for rank in ranks:
            runtime.start_rank(rank, 0)
        # Serve until the launcher calls for the drain: rank threads come
        # and go (respawns, joiners), the node and channels stay up.
        runtime.drain_event.wait()
        for thread in runtime.threads():
            thread.join(timeout=5.0)
        counters, fault_log, events = runtime.epilogue()
        try:
            runtime.ctrl.send(("host_done", host_id, counters, fault_log, events))
        except OSError:  # pragma: no cover - launcher died; nothing to report to
            pass
        runtime.exit_event.wait(timeout=_EXIT_GRACE)
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)
        runtime.close()


def run_spmd_tcp(
    n_ranks: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    timeout: float | None = 300.0,
    fault_injector: FaultInjector | None = None,
    on_rank_failure: str = "abort",
    tracer: Tracer | None = None,
    n_hosts: int = 2,
    tcp_options: TcpOptions | None = None,
    max_respawns: int = 8,
    start_method: str | None = None,
) -> SPMDResult:
    """Run ``fn(comm, *args)`` on ``n_ranks`` ranks across ``n_hosts`` hosts.

    The TCP twin of :func:`repro.mpi.executor.run_spmd` /
    :func:`repro.mpi.procexec.run_spmd_process`: same parameters, same
    :class:`~repro.mpi.executor.SPMDResult`, same abort / timeout /
    ``on_rank_failure`` semantics — with ranks dealt round-robin across
    ``n_hosts`` OS-process hosts talking framed TCP (loopback here; the
    protocol carries no same-machine assumption).  See the module
    docstring for the robustness machinery; ``tcp_options`` tunes it.

    ``on_rank_failure="respawn"`` replaces a dead non-zero rank with a
    fresh incarnation *thread* on its host (budgeted by ``max_respawns``),
    generalising the process backend's respawn across hosts: the
    replacement's rejoin handshake crosses real sockets.
    """
    if not 1 <= n_ranks <= MAX_TCP_RANKS:
        raise MPIError(f"n_ranks must be in [1, {MAX_TCP_RANKS}], got {n_ranks}")
    if not 1 <= n_hosts <= MAX_TCP_HOSTS:
        raise MPIError(f"n_hosts must be in [1, {MAX_TCP_HOSTS}], got {n_hosts}")
    if on_rank_failure not in ("abort", "continue", "respawn"):
        raise MPIError(
            "on_rank_failure must be 'abort', 'continue' or 'respawn',"
            f" got {on_rank_failure!r}"
        )
    if max_respawns < 0:
        raise MPIError(f"max_respawns must be >= 0, got {max_respawns}")
    n_hosts = min(n_hosts, n_ranks)
    options = tcp_options if tcp_options is not None else TcpOptions()
    respawning = on_rank_failure == "respawn"
    ctx = _pick_context(start_method)
    tracing = tracer is not None and tracer.enabled
    if tracing:
        named = tracer.rank_names()
        for rank in range(n_ranks):
            if rank not in named:
                tracer.name_rank(rank, f"rank {rank}")
    rank_names = tracer.rank_names() if tracing else {}

    host_ranks: dict[int, tuple[int, ...]] = {
        h: tuple(r for r in range(n_ranks) if _host_of(r, n_hosts) == h)
        for h in range(n_hosts)
    }
    rank_hosts = {r: _host_of(r, n_hosts) for r in range(n_ranks)}

    # Launcher-side state, mutated by the rendezvous reader threads and the
    # main wait loop below; every event funnels through one queue.
    events: stdlib_queue.Queue = stdlib_queue.Queue()
    state_lock = threading.Lock()
    world_size = n_ranks
    incarnations: dict[int, int] = {r: 0 for r in range(n_ranks)}
    failed_flags: dict[int, str] = {}
    respawn_log: list[RespawnRecord] = []
    respawn_budget = max_respawns if respawning else 0
    hosts_done: dict[int, tuple] = {}
    aborted: list[str] = []

    def _handle(host_id: int, msg: Any) -> None:
        nonlocal world_size, respawn_budget
        op = msg[0]
        if op == "ctrl":
            what = msg[1]
            if what == "mark_failed":
                with state_lock:
                    failed_flags.setdefault(msg[2], msg[3])
                rendezvous.broadcast(("apply", "mark_failed", msg[2], msg[3]))
            elif what == "mark_alive":
                with state_lock:
                    failed_flags.pop(msg[2], None)
                rendezvous.broadcast(("apply", "mark_alive", msg[2]))
            elif what == "abort":
                with state_lock:
                    if not aborted:
                        aborted.append(msg[2])
                rendezvous.broadcast(("apply", "abort", msg[2]))
                events.put(("aborted", msg[2]))
            elif what == "shutdown":
                rendezvous.broadcast(("apply", "shutdown"))
            elif what == "retire":
                rendezvous.broadcast(("apply", "retire", msg[2]))
                events.put(("retired", msg[2]))
        elif op == "req":
            req_id, what = msg[1], msg[2]
            if what == "grow":
                n = msg[3]
                with state_lock:
                    first = world_size
                    new_ranks = tuple(range(first, first + n))
                    world_size = first + n
                    assignments = tuple(
                        (rank, _host_of(rank, n_hosts)) for rank in new_ranks
                    )
                    for rank in new_ranks:
                        incarnations[rank] = 0
                # Order matters: every host learns the membership before
                # the requester's grow() returns and traffic starts.
                rendezvous.broadcast(("apply", "grow", assignments))
                rendezvous.send(host_id, ("rep", req_id, new_ranks))
                events.put(("grew", new_ranks))
            elif what == "respawn":
                rank, reason = msg[3], msg[4]
                with state_lock:
                    granted = rank != 0 and respawn_budget > 0
                    if granted:
                        respawn_budget -= 1
                        incarnations[rank] += 1
                        grant = incarnations[rank]
                        respawn_log.append(
                            RespawnRecord(rank=rank, incarnation=grant, reason=reason)
                        )
                rendezvous.send(host_id, ("rep", req_id, grant if granted else None))
                events.put(("respawn", rank) if granted else ("respawn_denied", rank))
        elif op == "result":
            events.put(("result", msg[1]))
        elif op == "host_done":
            with state_lock:
                hosts_done[host_id] = (msg[2], msg[3], msg[4])
            events.put(("host_done", host_id))
        elif op == "ctrl_lost":
            events.put(("ctrl_lost", host_id))

    rendezvous = Rendezvous(n_hosts, rank_hosts, _handle)
    fault_plan = fault_injector.plan if fault_injector is not None else None
    processes = []
    for host_id in range(n_hosts):
        proc = ctx.Process(
            target=_host_main,
            args=(
                host_id, n_hosts, host_ranks[host_id], rendezvous.addr, fn,
                tuple(args), fault_plan, on_rank_failure,
                tracer.epoch if tracing else None,
                rank_names,
                tracer.reserve_flow_stripe() if tracing else 0,
                options,
            ),
            name=f"vmpi-host-{host_id}",
            daemon=True,
        )
        proc.start()
        processes.append(proc)

    returns: dict[int, Any] = {}
    failures: list[tuple[int, BaseException]] = []
    pending = set(range(n_ranks))
    deadline = None if timeout is None else time.monotonic() + timeout
    timed_out = False
    abort_seen_at: float | None = None

    def _consume_result(message: tuple) -> None:
        kind, rank, incarnation = message[0], message[1], message[2]
        with state_lock:
            current = incarnations.get(rank, 0)
        if incarnation != current:
            return  # a stale incarnation's parting words
        if kind == "done":
            returns[rank] = message[3]
            if incarnation > 0:
                with state_lock:
                    failed_flags.pop(rank, None)
            pending.discard(rank)
        elif kind == "quiet":
            pending.discard(rank)
        elif kind == "err":
            failures.append((rank, pickle.loads(message[3])))
            pending.discard(rank)
        elif kind == "selfdead":
            with state_lock:
                failed_flags.setdefault(rank, message[3])
            if respawning and rank != 0:
                return  # stay pending: the replacement will report
            if respawning and rank == 0:
                failures.append(
                    (0, MPIError(
                        "the Nature rank (0) died and cannot be respawned:"
                        f" {message[3]}"
                    ))
                )
                with state_lock:
                    if not aborted:
                        aborted.append("rank 0 died")
                rendezvous.broadcast(("apply", "abort", "rank 0 died"))
            pending.discard(rank)

    while pending:
        try:
            event = events.get(timeout=0.05)
        except stdlib_queue.Empty:
            event = None
        now = time.monotonic()
        if event is not None:
            kind = event[0]
            if kind == "result":
                _consume_result(event[1])
            elif kind == "grew":
                pending.update(event[1])
            elif kind == "respawn_denied":
                pending.discard(event[1])
            elif kind == "aborted":
                abort_seen_at = abort_seen_at or now
            elif kind == "ctrl_lost":
                host_id = event[1]
                with state_lock:
                    already_done = host_id in hosts_done
                if not already_done and not aborted:
                    reason = f"host {host_id} lost its control link"
                    with state_lock:
                        aborted.append(reason)
                    rendezvous.broadcast(("apply", "abort", reason))
                    abort_seen_at = abort_seen_at or now
            continue
        if abort_seen_at is not None and now - abort_seen_at > _ABORT_DRAIN_GRACE:
            break  # aborted ranks that never managed a parting word
        for host_id, proc in enumerate(processes):
            if not proc.is_alive() and proc.exitcode not in (0, None):
                with state_lock:
                    host_dead = host_id not in hosts_done
                if host_dead and not aborted:
                    reason = f"host {host_id} process died with exit code {proc.exitcode}"
                    with state_lock:
                        aborted.append(reason)
                    rendezvous.broadcast(("apply", "abort", reason))
                    abort_seen_at = abort_seen_at or now
        if deadline is not None and now >= deadline:
            timed_out = True
            with state_lock:
                if not aborted:
                    aborted.append("executor timeout")
            rendezvous.broadcast(("apply", "abort", "executor timeout"))
            break

    # Drain: ask every host for its epilogue (counters, fault log, trace),
    # then release them.
    rendezvous.broadcast(("drain",))
    drain_deadline = time.monotonic() + 30.0
    while time.monotonic() < drain_deadline:
        with state_lock:
            done = set(hosts_done)
        if all(
            h in done or not processes[h].is_alive() for h in range(n_hosts)
        ):
            break
        try:
            event = events.get(timeout=0.05)
        except stdlib_queue.Empty:
            continue
        if event[0] == "result":
            _consume_result(event[1])
    rendezvous.broadcast(("exit",))
    for proc in processes:
        proc.join(timeout=10.0)
        if proc.is_alive():  # pragma: no cover - last-resort cleanup
            proc.terminate()
            proc.join(timeout=5.0)
    rendezvous.close()

    merged_counters = CommCounters()
    merged_faults: list = []
    merged_events: list = []
    with state_lock:
        epilogues = [hosts_done[h] for h in sorted(hosts_done)]
        final_size = world_size
        final_failed = dict(failed_flags)
        abort_reason = aborted[0] if aborted else None
    for counters, fault_log, trace_events in epilogues:
        merged_counters.absorb(counters)
        merged_faults.extend(fault_log)
        merged_events.extend(trace_events)
    if fault_injector is not None and merged_faults:
        with fault_injector._lock:
            fault_injector.log.extend(merged_faults)
    if tracing and merged_events:
        tracer.absorb_events(merged_events)

    world = World(final_size, injector=fault_injector, tracer=tracer)
    world.counters.absorb(merged_counters.snapshot())
    for rank in sorted(final_failed):
        world.failed_ranks.add(rank)
        world.failure_reasons.setdefault(rank, final_failed[rank])
    if abort_reason is not None:
        world.abort_event.set()
        world.abort_reason = abort_reason

    if timed_out:
        raise MPIError(f"SPMD program timed out after {timeout} s")
    if failures:
        failures.sort(key=lambda item: item[0])
        _rank, exc = failures[0]
        raise exc
    if world.abort_event.is_set():
        raise CommAbortError(world.abort_reason or "world aborted")
    return SPMDResult(
        returns=[returns.get(rank) for rank in range(final_size)],
        world=world,
        failed_ranks=tuple(sorted(final_failed)),
        respawns=tuple(respawn_log),
    )
