"""Message status and matching constants for the virtual MPI runtime."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Status", "ANY_SOURCE", "ANY_TAG", "MAX_USER_TAG"]

#: Wildcard source for :meth:`repro.mpi.comm.Comm.recv`.
ANY_SOURCE = -1

#: Wildcard tag for :meth:`repro.mpi.comm.Comm.recv`.
ANY_TAG = -1

#: Largest tag available to applications; higher tags are reserved for the
#: runtime's internal collective protocols.
MAX_USER_TAG = (1 << 28) - 1


@dataclass(frozen=True)
class Status:
    """Delivery metadata of a received message.

    Attributes
    ----------
    source:
        Rank that sent the message.
    tag:
        Tag the message was sent with.
    nbytes:
        Estimated on-wire size of the payload (exact for ndarray/bytes
        payloads, pickled size otherwise).
    """

    source: int
    tag: int
    nbytes: int
