"""Simulation configuration.

:class:`SimulationConfig` gathers every knob of the paper's model with the
paper's §V-C defaults: payoffs ``f[R,S,T,P] = [3,0,4,1]``, 200 rounds per
generation, pairwise-comparison rate 0.1, mutation rate μ = 0.05, and
agents-per-SSet equal to the number of SSets (so each agent handles one
opponent per generation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

import numpy as np

from repro.errors import ConfigError
from repro.game.engine import DEFAULT_ROUNDS
from repro.game.noise import NoiseModel
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.states import MAX_MEMORY, StateSpace

__all__ = ["SimulationConfig"]

PCRule = Literal["paper", "fermi"]
StrategyKind = Literal["pure", "mixed"]
FitnessMode = Literal["auto", "sampled", "expected"]
MutationDistribution = Literal["uniform", "ushaped"]
EngineKind = Literal["auto", "vector", "batch"]
EngineJit = Literal["auto", "on", "off"]


@dataclass(frozen=True)
class SimulationConfig:
    """All parameters of one evolutionary-game-dynamics simulation.

    Parameters
    ----------
    memory:
        Memory depth *n* of the strategies (1..6 in the paper).
    n_ssets:
        Number of Strategy Sets in the population.
    generations:
        Number of generations to evolve.
    agents_per_sset:
        Agents in each SSet.  ``None`` (default) follows §V-C and uses
        ``n_ssets`` so that "each agent would handle one game per
        generation".
    rounds:
        IPD rounds per game (paper: 200).
    pc_rate:
        Per-generation probability that the Nature Agent runs a pairwise
        comparison (paper: 0.1 for science runs, 0.01 for scaling runs).
    mutation_rate:
        Per-generation probability of a random mutation (paper: μ = 0.05).
    mutation_distribution:
        How mixed-strategy mutants are drawn: ``"uniform"`` takes each
        per-state probability iid uniform on [0, 1]; ``"ushaped"`` draws
        from Beta(0.1, 0.1), concentrating mass near the deterministic
        corners as in Nowak & Sigmund's WSLS study [11] — near-pure mutants
        are what lets WSLS take over the population.  Ignored for pure
        populations.
    beta:
        Selection intensity in the Fermi function (Eq. 1).
    payoff:
        Payoff matrix (defaults to the paper's Table I values).
    noise:
        Execution-error model for game play.
    strategy_kind:
        ``"pure"`` for deterministic tables, ``"mixed"`` for probabilistic
        ones (the paper's validation study uses mixed memory-one).
    pc_rule:
        ``"paper"`` gates adoption on the teacher's fitness being strictly
        higher, then applies the Fermi probability (the paper's pseudocode);
        ``"fermi"`` applies the Fermi probability unconditionally (the
        Traulsen et al. convention the paper cites).
    include_self_play:
        Whether an SSet's agents also play their own strategy.  The paper
        plays "all other strategies", so the default is False.
    use_fitness_cache:
        Memoise deterministic pair fitness across generations (exact for
        pure noiseless play; ignored otherwise).
    fitness_mode:
        How SSet fitness is evaluated.  ``"auto"`` plays deterministically
        for pure noiseless populations and samples otherwise (the paper's
        behaviour); ``"sampled"`` always plays the games with live
        randomness; ``"expected"`` uses the exact Markov-chain expectation
        (:mod:`repro.game.markov`) — deterministic even for mixed/noisy
        play, at Θ(rounds x 4^memory) per pair.
    seed:
        Root seed for every random stream in the run.
    engine:
        Which tournament engine plays the games: ``"vector"`` (dense
        :class:`~repro.game.vector_engine.VectorEngine`), ``"batch"``
        (bit-packed :class:`~repro.game.batch_engine.BatchEngine`) or
        ``"auto"`` (default), which picks ``"batch"`` for pure populations
        and ``"vector"`` for mixed ones.  All engines produce bit-identical
        fitness and share the fingerprint/FitnessCache contract, so this is
        purely a performance knob — see docs/kernels.md.
    engine_jit:
        Kernel selection inside the batch engine: ``"auto"`` compiles with
        numba when available (NumPy otherwise), ``"on"`` requires numba,
        ``"off"`` pins the pure NumPy kernel.  Ignored by ``"vector"``.
    """

    memory: int = 1
    n_ssets: int = 64
    generations: int = 1000
    agents_per_sset: int | None = None
    rounds: int = DEFAULT_ROUNDS
    pc_rate: float = 0.1
    mutation_rate: float = 0.05
    mutation_distribution: MutationDistribution = "uniform"
    beta: float = 1.0
    payoff: PayoffMatrix = field(default_factory=lambda: PAPER_PAYOFFS)
    noise: NoiseModel = field(default_factory=NoiseModel)
    strategy_kind: StrategyKind = "pure"
    pc_rule: PCRule = "paper"
    include_self_play: bool = False
    use_fitness_cache: bool = True
    fitness_mode: FitnessMode = "auto"
    seed: int = 0
    engine: EngineKind = "auto"
    engine_jit: EngineJit = "auto"

    def __post_init__(self) -> None:
        if not 1 <= self.memory <= MAX_MEMORY:
            raise ConfigError(f"memory must be in [1, {MAX_MEMORY}], got {self.memory}")
        if self.n_ssets < 2:
            raise ConfigError(f"need at least 2 SSets for pairwise comparison, got {self.n_ssets}")
        if self.generations < 0:
            raise ConfigError(f"generations must be non-negative, got {self.generations}")
        if self.rounds <= 0:
            raise ConfigError(f"rounds must be positive, got {self.rounds}")
        if not 0.0 <= self.pc_rate <= 1.0:
            raise ConfigError(f"pc_rate must lie in [0, 1], got {self.pc_rate}")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigError(f"mutation_rate must lie in [0, 1], got {self.mutation_rate}")
        if not np.isfinite(self.beta) or self.beta < 0:
            raise ConfigError(f"beta must be finite and non-negative, got {self.beta}")
        if self.agents_per_sset is not None and self.agents_per_sset < 1:
            raise ConfigError(f"agents_per_sset must be >= 1, got {self.agents_per_sset}")
        if self.strategy_kind not in ("pure", "mixed"):
            raise ConfigError(f"strategy_kind must be 'pure' or 'mixed', got {self.strategy_kind}")
        if self.pc_rule not in ("paper", "fermi"):
            raise ConfigError(f"pc_rule must be 'paper' or 'fermi', got {self.pc_rule}")
        if self.mutation_distribution not in ("uniform", "ushaped"):
            raise ConfigError(
                "mutation_distribution must be 'uniform' or 'ushaped',"
                f" got {self.mutation_distribution}"
            )
        if self.fitness_mode not in ("auto", "sampled", "expected"):
            raise ConfigError(
                f"fitness_mode must be 'auto', 'sampled' or 'expected', got {self.fitness_mode}"
            )
        if not isinstance(self.seed, (int, np.integer)):
            raise ConfigError(f"seed must be an int, got {type(self.seed).__name__}")
        if self.engine not in ("auto", "vector", "batch"):
            raise ConfigError(
                f"engine must be 'auto', 'vector' or 'batch', got {self.engine}"
            )
        if self.engine_jit not in ("auto", "on", "off"):
            raise ConfigError(
                f"engine_jit must be 'auto', 'on' or 'off', got {self.engine_jit}"
            )

    # -- derived quantities ------------------------------------------------

    @property
    def space(self) -> StateSpace:
        """The memory-*n* state space of this configuration."""
        return StateSpace(self.memory)

    @property
    def effective_agents_per_sset(self) -> int:
        """Agents per SSet after applying the §V-C default (= n_ssets)."""
        return self.n_ssets if self.agents_per_sset is None else self.agents_per_sset

    @property
    def population_size(self) -> int:
        """Total number of agents: SSets x agents per SSet."""
        return self.n_ssets * self.effective_agents_per_sset

    @property
    def opponents_per_sset(self) -> int:
        """Opponent strategies each SSet faces per generation."""
        return self.n_ssets if self.include_self_play else self.n_ssets - 1

    @property
    def games_per_generation(self) -> int:
        """Unordered matchups played per generation (each counted once)."""
        n = self.n_ssets
        pairs = n * (n - 1) // 2
        return pairs + (n if self.include_self_play else 0)

    @property
    def deterministic_games(self) -> bool:
        """True when game outcomes are pure functions of the strategy pair."""
        return self.strategy_kind == "pure" and self.noise.is_noiseless

    @property
    def resolved_fitness_mode(self) -> str:
        """The fitness mode after resolving ``"auto"``.

        Returns one of ``"deterministic"`` (pure noiseless play, memoisable),
        ``"expected"`` (exact Markov expectation) or ``"sampled"`` (live
        random play).
        """
        if self.fitness_mode == "expected":
            return "expected"
        if self.fitness_mode == "sampled":
            return "sampled"
        return "deterministic" if self.deterministic_games else "sampled"

    @property
    def resolved_engine(self) -> str:
        """The engine kind after resolving ``"auto"``: ``"vector"`` or ``"batch"``.

        ``"auto"`` prefers the bit-packed batch kernel for pure populations
        (where there is a bit to pack); mixed populations stay on the dense
        vector path, which the batch engine would delegate to anyway.
        """
        if self.engine != "auto":
            return self.engine
        return "batch" if self.strategy_kind == "pure" else "vector"

    def with_updates(self, **changes: object) -> "SimulationConfig":
        """Return a copy with the given fields replaced (validated anew)."""
        return replace(self, **changes)  # type: ignore[arg-type]
