"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause.  Sub-families
mirror the package layout: game construction, configuration, the virtual MPI
runtime, the machine model, and the performance model each get their own
branch.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "GameError",
    "PayoffError",
    "StrategyError",
    "StateSpaceError",
    "PopulationError",
    "ScheduleError",
    "MPIError",
    "CommAbortError",
    "TagMismatchError",
    "RankError",
    "RecvTimeoutError",
    "RankFailedError",
    "PeerUnreachableError",
    "RankCrashError",
    "FaultPlanError",
    "MachineModelError",
    "PartitionError",
    "PerfModelError",
    "CalibrationError",
    "ExperimentError",
    "CheckpointError",
    "SupervisorError",
    "RunStoreError",
    "ServiceError",
    "QuotaError",
    "UnknownRunError",
    "StaleLeaseError",
    "DrainingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigError(ReproError, ValueError):
    """A configuration value is missing, out of range, or inconsistent."""


class GameError(ReproError):
    """Base class for errors in game construction or play."""


class PayoffError(GameError, ValueError):
    """A payoff matrix violates the Prisoner's Dilemma constraints."""


class StrategyError(GameError, ValueError):
    """A strategy table is malformed (wrong length, bad values, bad memory)."""


class StateSpaceError(GameError, ValueError):
    """A state index or history view is invalid for the given memory depth."""


class PopulationError(ReproError):
    """Base class for errors in population dynamics."""


class ScheduleError(PopulationError, ValueError):
    """An opponent schedule cannot be constructed (e.g. agents > SSets)."""


class MPIError(ReproError):
    """Base class for errors in the virtual MPI runtime."""


class CommAbortError(MPIError, RuntimeError):
    """A rank called ``abort`` or the SPMD program crashed on some rank."""


class TagMismatchError(MPIError, RuntimeError):
    """Internal consistency failure when matching messages by tag."""


class RankError(MPIError, ValueError):
    """A rank index is outside the communicator's size."""


class RecvTimeoutError(MPIError, TimeoutError):
    """A ``recv`` gave up waiting for a matching message.

    Carries the source/tag the receiver was matching on, so retry loops and
    failure detectors can report exactly which channel went quiet.  ``rank``
    is the peer being waited on (``None`` for wildcard receives) and
    ``deadline`` the seconds budget that expired; both are ``None`` when the
    raise site predates the attribute or has nothing meaningful to report.

    The timeout taxonomy, from most to least recoverable:

    * :class:`RecvTimeoutError` — the peer may be merely slow; retrying is
      legitimate (the reliable layer does exactly that).
    * :class:`PeerUnreachableError` — the peer is *locally* unobservable
      (network partition past its grace deadline); the global view may
      still believe it alive.  Degrade or die quietly and rejoin.
    * :class:`RankFailedError` — the peer has been globally declared dead;
      waiting any longer is pointless.
    """

    def __init__(
        self, message: str = "", *, rank: int | None = None, deadline: float | None = None
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.deadline = deadline


class RankFailedError(MPIError, RuntimeError):
    """A peer rank is dead or unresponsive (no message, no acknowledgement).

    ``rank`` names the dead peer and ``deadline`` the seconds budget that
    was exhausted waiting on it (``None`` where not meaningful).
    """

    def __init__(
        self, message: str = "", *, rank: int | None = None, deadline: float | None = None
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.deadline = deadline


class PeerUnreachableError(RankFailedError):
    """A peer rank is unreachable over the network past its grace deadline.

    Raised by the TCP transport (:mod:`repro.mpi.tcp`) when a peer host's
    connection has been down longer than ``unreachable_grace`` seconds — a
    *local* observation, unlike :class:`RankFailedError`'s global verdict:
    the peer may be alive on the far side of a partition.  Subclasses
    :class:`RankFailedError` so every existing degradation path (worker
    SSet redistribution, quiet death + FTHello/FTRejoin) handles it
    unchanged.  Carries the peer ``rank`` and the grace ``deadline``.
    """


class RankCrashError(MPIError, RuntimeError):
    """An injected fault terminated this rank (raised *inside* the victim).

    Under ``run_spmd(..., on_rank_failure="continue")`` this is the one
    exception that kills a single rank without aborting the whole world.
    """


class FaultPlanError(MPIError, ValueError):
    """A fault-injection plan is malformed or inconsistent."""


class MachineModelError(ReproError):
    """Base class for errors in the Blue Gene machine model."""


class PartitionError(MachineModelError, ValueError):
    """A partition shape cannot be built for the requested node count."""


class PerfModelError(ReproError):
    """Base class for errors in the performance model."""


class CalibrationError(PerfModelError, RuntimeError):
    """Cost-model calibration failed (e.g. degenerate timing samples)."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured or its inputs are inconsistent."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is missing, corrupt, or from an incompatible run."""


class SupervisorError(ReproError, RuntimeError):
    """A supervised run exhausted its restart budget without completing."""


class RunStoreError(ReproError, RuntimeError):
    """A run-store operation failed (bad key, missing run, corrupt record)."""


class ServiceError(ReproError, RuntimeError):
    """Base class for errors raised by the run service (:mod:`repro.service`)."""


class QuotaError(ServiceError):
    """A tenant tried to exceed its admission quota."""


class UnknownRunError(ServiceError, KeyError):
    """A service operation named a run the job queue does not know."""


class StaleLeaseError(ServiceError):
    """This queue's store lease has been claimed by a newer queue (fenced).

    Raised at the *write* site — journal appends, status writes, worker
    dispatch — so a superseded queue can never double-dispatch a run or
    clobber records the current owner is writing.  ``epoch`` is the fenced
    queue's own epoch and ``current`` the epoch that displaced it (``None``
    where unknown, e.g. an unreadable lease file).
    """

    def __init__(
        self, message: str = "", *, epoch: int | None = None, current: int | None = None
    ) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.current = current


class DrainingError(ServiceError):
    """The service is draining and admits no new work (HTTP 503 material).

    ``retry_after`` is the seconds hint the HTTP layer surfaces as a
    ``Retry-After`` header — roughly the drain grace window.
    """

    def __init__(self, message: str = "", *, retry_after: float = 30.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
