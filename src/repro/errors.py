"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause.  Sub-families
mirror the package layout: game construction, configuration, the virtual MPI
runtime, the machine model, and the performance model each get their own
branch.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "GameError",
    "PayoffError",
    "StrategyError",
    "StateSpaceError",
    "PopulationError",
    "ScheduleError",
    "MPIError",
    "CommAbortError",
    "TagMismatchError",
    "RankError",
    "RecvTimeoutError",
    "RankFailedError",
    "RankCrashError",
    "FaultPlanError",
    "MachineModelError",
    "PartitionError",
    "PerfModelError",
    "CalibrationError",
    "ExperimentError",
    "CheckpointError",
    "SupervisorError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigError(ReproError, ValueError):
    """A configuration value is missing, out of range, or inconsistent."""


class GameError(ReproError):
    """Base class for errors in game construction or play."""


class PayoffError(GameError, ValueError):
    """A payoff matrix violates the Prisoner's Dilemma constraints."""


class StrategyError(GameError, ValueError):
    """A strategy table is malformed (wrong length, bad values, bad memory)."""


class StateSpaceError(GameError, ValueError):
    """A state index or history view is invalid for the given memory depth."""


class PopulationError(ReproError):
    """Base class for errors in population dynamics."""


class ScheduleError(PopulationError, ValueError):
    """An opponent schedule cannot be constructed (e.g. agents > SSets)."""


class MPIError(ReproError):
    """Base class for errors in the virtual MPI runtime."""


class CommAbortError(MPIError, RuntimeError):
    """A rank called ``abort`` or the SPMD program crashed on some rank."""


class TagMismatchError(MPIError, RuntimeError):
    """Internal consistency failure when matching messages by tag."""


class RankError(MPIError, ValueError):
    """A rank index is outside the communicator's size."""


class RecvTimeoutError(MPIError, TimeoutError):
    """A ``recv`` gave up waiting for a matching message.

    Carries the source/tag the receiver was matching on, so retry loops and
    failure detectors can report exactly which channel went quiet.
    """


class RankFailedError(MPIError, RuntimeError):
    """A peer rank is dead or unresponsive (no message, no acknowledgement)."""


class RankCrashError(MPIError, RuntimeError):
    """An injected fault terminated this rank (raised *inside* the victim).

    Under ``run_spmd(..., on_rank_failure="continue")`` this is the one
    exception that kills a single rank without aborting the whole world.
    """


class FaultPlanError(MPIError, ValueError):
    """A fault-injection plan is malformed or inconsistent."""


class MachineModelError(ReproError):
    """Base class for errors in the Blue Gene machine model."""


class PartitionError(MachineModelError, ValueError):
    """A partition shape cannot be built for the requested node count."""


class PerfModelError(ReproError):
    """Base class for errors in the performance model."""


class CalibrationError(PerfModelError, RuntimeError):
    """Cost-model calibration failed (e.g. degenerate timing samples)."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured or its inputs are inconsistent."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is missing, corrupt, or from an incompatible run."""


class SupervisorError(ReproError, RuntimeError):
    """A supervised run exhausted its restart budget without completing."""
