"""repro — a reproduction of "Massively Parallel Model of Evolutionary Game Dynamics" (SC 2012).

The package implements the paper's two-level framework — local game dynamics
(memory-*n* Iterated Prisoner's Dilemma between Strategy Sets) and global
population dynamics (a Nature Agent running Fermi pairwise-comparison
learning and mutation) — together with the substrates the original ran on:
a virtual MPI runtime (:mod:`repro.mpi`), a Blue Gene machine model
(:mod:`repro.machine`), and a performance model (:mod:`repro.perf`) that
regenerates every scaling table and figure in the paper's evaluation.

Quickstart
----------
>>> from repro import SimulationConfig, EvolutionDriver
>>> cfg = SimulationConfig(memory=1, n_ssets=32, generations=200, seed=7)
>>> driver = EvolutionDriver(cfg)
>>> final = driver.run()
>>> final.generation
200
"""

from repro.config import SimulationConfig
from repro.errors import ReproError
from repro.game import (
    Move,
    PayoffMatrix,
    PAPER_PAYOFFS,
    StateSpace,
    Strategy,
    StrategySpace,
    named_strategy,
    play_ipd,
    VectorEngine,
    BatchEngine,
    make_engine,
)
from repro.population import EvolutionDriver, Population
from repro.rng import StreamFactory

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "ReproError",
    "Move",
    "PayoffMatrix",
    "PAPER_PAYOFFS",
    "StateSpace",
    "Strategy",
    "StrategySpace",
    "named_strategy",
    "play_ipd",
    "VectorEngine",
    "BatchEngine",
    "make_engine",
    "EvolutionDriver",
    "Population",
    "StreamFactory",
    "__version__",
]
