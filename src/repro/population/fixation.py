"""Analytic fixation probabilities for the Moran process.

For two strategies A (the mutant) and B (the resident) in a population of
``N`` SSets with this package's fitness accounting (an SSet's fitness is
the sum of its pair payoffs against every other SSet) and the exponential
fitness mapping ``w = exp(beta * pi)``, the Moran birth-death chain has the
classical closed-form absorption probability

.. math::

    \\rho_A = \\left(1 + \\sum_{k=1}^{N-1} \\prod_{i=1}^{k}
              \\frac{T_i^-}{T_i^+}\\right)^{-1},
    \\qquad \\frac{T_i^-}{T_i^+} = e^{-\\beta (\\pi_A(i) - \\pi_B(i))}

with :math:`\\pi_A(i) = (i-1) f_{AA} + (N-i) f_{AB}` and
:math:`\\pi_B(i) = i f_{BA} + (N-i-1) f_{BB}` — the pair payoffs
:math:`f_{XY}` computed exactly by the Markov evaluator.  At ``beta = 0``
this collapses to the neutral :math:`1/N`.

:func:`fixation_probability` evaluates the formula (in log space, so huge
selection gradients don't overflow); the tests cross-check it against the
simulated :func:`repro.population.moran.fixation_experiment`.
"""

from __future__ import annotations

import numpy as np

from repro.config import SimulationConfig
from repro.errors import PopulationError
from repro.game.markov import expected_pair_payoffs

__all__ = ["pair_payoff_table", "fixation_probability_from_payoffs", "fixation_probability"]


def pair_payoff_table(
    mutant: np.ndarray, resident: np.ndarray, config: SimulationConfig
) -> tuple[float, float, float, float]:
    """Exact pair payoffs ``(f_AA, f_AB, f_BA, f_BB)`` under ``config``."""
    mat = np.vstack(
        [np.asarray(mutant, dtype=np.float64), np.asarray(resident, dtype=np.float64)]
    )
    ia = np.array([0, 0, 1, 1])
    ib = np.array([0, 1, 0, 1])
    ea, _ = expected_pair_payoffs(
        config.space,
        mat,
        ia,
        ib,
        payoff=config.payoff,
        rounds=config.rounds,
        noise=config.noise,
    )
    return float(ea[0]), float(ea[1]), float(ea[2]), float(ea[3])


def fixation_probability_from_payoffs(
    f_aa: float, f_ab: float, f_ba: float, f_bb: float, n: int, beta: float
) -> float:
    """Closed-form Moran fixation probability of one A mutant among B's."""
    if n < 2:
        raise PopulationError(f"population size must be >= 2, got {n}")
    if beta < 0 or not np.isfinite(beta):
        raise PopulationError(f"beta must be finite and non-negative, got {beta}")
    i = np.arange(1, n, dtype=np.float64)  # mutant counts 1..N-1
    pi_a = (i - 1) * f_aa + (n - i) * f_ab
    pi_b = i * f_ba + (n - i - 1) * f_bb
    # log of the k-th product is -beta * cumsum of (pi_a - pi_b).
    log_products = -beta * np.cumsum(pi_a - pi_b)
    # rho = 1 / (1 + sum_k exp(log_products[k])), computed stably.
    m = max(0.0, float(log_products.max()))
    denom = np.exp(-m) + np.exp(log_products - m).sum()
    return float(np.exp(-m) / denom)


def fixation_probability(
    mutant: np.ndarray, resident: np.ndarray, config: SimulationConfig
) -> float:
    """Fixation probability of one ``mutant`` SSet under ``config``'s Moran process.

    Combines the exact pair payoffs with the closed form; ``config`` gives
    the population size ``n_ssets``, rounds, payoffs, noise, and ``beta``.
    """
    f_aa, f_ab, f_ba, f_bb = pair_payoff_table(mutant, resident, config)
    return fixation_probability_from_payoffs(
        f_aa, f_ab, f_ba, f_bb, config.n_ssets, config.beta
    )
