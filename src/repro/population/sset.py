"""Strategy Sets: groups of agents sharing one strategy (paper §IV-D).

The :class:`StrategySet` object is the paper's SSet narrative made concrete:
it knows its id, its current strategy, its agents, and — through an
:class:`~repro.population.schedule.OpponentSchedule` — which opponents each
agent handles.  Playing a generation produces the SSet's *relative fitness*,
the quantity the Nature Agent compares during pairwise learning.

The high-throughput drivers operate on deduplicated matrices instead of
objects (see :mod:`repro.population.population`); this class is the
object-level API used by the parallel worker loop, by examples, and by the
agents-per-processor accounting of Table VIII.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PopulationError
from repro.game.vector_engine import VectorEngine
from repro.population.schedule import OpponentSchedule

__all__ = ["StrategySet", "AgentGameReport"]


@dataclass(frozen=True)
class AgentGameReport:
    """Games one agent played this generation and the fitness it earned."""

    agent: int
    opponents: np.ndarray
    fitness: float


class StrategySet:
    """One SSet: an id, a strategy, and a team of agents.

    Parameters
    ----------
    sset_id:
        This SSet's index in the population.
    schedule:
        The population-wide opponent schedule.
    """

    def __init__(self, sset_id: int, schedule: OpponentSchedule) -> None:
        if not 0 <= sset_id < schedule.n_ssets:
            raise PopulationError(
                f"sset_id {sset_id} out of range [0, {schedule.n_ssets})"
            )
        self.sset_id = int(sset_id)
        self.schedule = schedule
        self.last_fitness: float | None = None

    @property
    def n_agents(self) -> int:
        """Agents in this SSet."""
        return self.schedule.agents_per_sset

    def opponents(self) -> np.ndarray:
        """All opponent SSet ids this SSet plays each generation."""
        return self.schedule.opponents_of(self.sset_id)

    def agent_opponents(self, agent: int) -> np.ndarray:
        """The opponents handled by one of this SSet's agents."""
        return self.schedule.agent_opponents(self.sset_id, agent)

    # -- game play -------------------------------------------------------------

    def play_generation(
        self,
        engine: VectorEngine,
        assignment: np.ndarray,
        tables: np.ndarray,
        rng: np.random.Generator | None = None,
        per_agent: bool = False,
    ) -> float | tuple[float, list[AgentGameReport]]:
        """Play this SSet's games for one generation and return its fitness.

        Parameters
        ----------
        engine:
            The vectorised IPD engine (carries payoffs, rounds, noise).
        assignment:
            Population-wide SSet -> strategy-slot mapping.
        tables:
            The slot-table matrix the assignment indexes into.
        rng:
            Randomness for mixed/noisy play.  Opponents are played in
            ascending order in a single batch, so a stream keyed by
            ``(generation, sset)`` reproduces the serial evaluator exactly.
        per_agent:
            Also return each agent's :class:`AgentGameReport`.

        Notes
        -----
        Fitness is the sum of this SSet's agents' payoffs over all games —
        the paper's ``relative_fitness`` that SSets return to the Nature
        Agent on request.
        """
        opponents = self.opponents()
        my_slot = int(assignment[self.sset_id])
        ia = np.full(opponents.size, my_slot, dtype=np.intp)
        ib = np.asarray(assignment, dtype=np.intp)[opponents]
        result = engine.play(tables, ia, ib, rng=rng)
        fitness = float(result.fitness_a.sum())
        self.last_fitness = fitness
        if not per_agent:
            return fitness
        reports = []
        for agent in range(self.n_agents):
            lo, hi = self.schedule._chunk_bounds(agent)
            reports.append(
                AgentGameReport(
                    agent=agent,
                    opponents=opponents[lo:hi],
                    fitness=float(result.fitness_a[lo:hi].sum()),
                )
            )
        return fitness, reports

    def __repr__(self) -> str:
        return (
            f"StrategySet(id={self.sset_id}, agents={self.n_agents},"
            f" last_fitness={self.last_fitness})"
        )
