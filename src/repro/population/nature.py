"""The Nature Agent: pairwise-comparison learning and mutation (paper §IV-E).

The Nature Agent is the master of the population dynamics.  Each generation
it decides — from its own random stream — whether a pairwise comparison
happens (rate ``pc_rate``), which two SSets take the teacher and learner
roles, whether the learner adopts (Fermi probability on the fitness gap),
and whether a random mutation replaces some SSet's strategy (rate ``mu``).

Draw-order contract
-------------------
All decisions come from the single ``("nature",)`` stream in a fixed order
per generation::

    pc_uniform,
    [teacher, learner (redrawn until distinct), adoption_uniform]   if PC fires,
    mutation_uniform,
    [sset, strategy_table]                                          if mutation fires.

The serial driver and the virtual-MPI parallel runner both call the methods
below in exactly this order, which is what makes their population
trajectories bit-identical (the integration tests assert it).

The paper's pseudocode gates adoption on ``fitness_teacher >
fitness_learner`` before applying the Fermi probability; the Traulsen et al.
convention it cites applies the Fermi probability unconditionally.  Both are
implemented, selected by ``config.pc_rule``.  (The pseudocode's ``rand > p``
/ ``rand > mu`` comparisons are read as the obvious ``<`` typos — taken
literally a *higher* Fermi probability would mean *less* learning.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.errors import PopulationError
from repro.population.fermi import fermi_probability
from repro.rng import StreamFactory

__all__ = ["NatureAgent", "PCSelection", "AdoptionDecision", "MutationSelection"]


@dataclass(frozen=True)
class PCSelection:
    """A pairwise-comparison event: which SSets play teacher and learner."""

    teacher: int
    learner: int


@dataclass(frozen=True)
class AdoptionDecision:
    """Outcome of a pairwise comparison after fitnesses were gathered."""

    teacher: int
    learner: int
    pi_teacher: float
    pi_learner: float
    probability: float
    adopted: bool


@dataclass(frozen=True)
class MutationSelection:
    """A mutation event: which SSet receives which new strategy table."""

    sset: int
    table: np.ndarray


class NatureAgent:
    """Implements the paper's Nature Agent decision process.

    Parameters
    ----------
    config:
        Simulation parameters (pc_rate, mutation_rate, beta, pc_rule).
    streams:
        Stream factory; the agent consumes the ``("nature",)`` stream.
    """

    def __init__(self, config: SimulationConfig, streams: StreamFactory) -> None:
        self.config = config
        self._rng = streams.stream("nature")
        self.n_pc_events = 0
        self.n_adoptions = 0
        self.n_mutations = 0

    # -- the three decision steps, called in order each generation -----------------

    def select_pc(self) -> PCSelection | None:
        """Step 1: does a pairwise comparison fire, and between whom?"""
        if self._rng.random() >= self.config.pc_rate:
            return None
        n = self.config.n_ssets
        teacher = int(self._rng.integers(0, n))
        learner = int(self._rng.integers(0, n))
        while learner == teacher:
            learner = int(self._rng.integers(0, n))
        self.n_pc_events += 1
        return PCSelection(teacher=teacher, learner=learner)

    def decide_adoption(
        self, selection: PCSelection, pi_teacher: float, pi_learner: float
    ) -> AdoptionDecision:
        """Step 2: given both fitnesses, does the learner adopt?

        Under ``pc_rule="paper"`` the Fermi draw only happens when the
        teacher's fitness is strictly higher; under ``pc_rule="fermi"`` it is
        unconditional.  Either way exactly one uniform is consumed when the
        rule reaches the draw, keeping the stream order deterministic.
        """
        p = fermi_probability(pi_teacher, pi_learner, self.config.beta)
        if self.config.pc_rule == "paper" and not pi_teacher > pi_learner:
            adopted = False
            probability = 0.0
        else:
            probability = p
            adopted = bool(self._rng.random() < p)
        if adopted:
            self.n_adoptions += 1
        return AdoptionDecision(
            teacher=selection.teacher,
            learner=selection.learner,
            pi_teacher=float(pi_teacher),
            pi_learner=float(pi_learner),
            probability=probability,
            adopted=adopted,
        )

    def select_mutation(self, draw_table) -> MutationSelection | None:
        """Step 3: does a mutation fire, and what does it install?

        Parameters
        ----------
        draw_table:
            Callable ``rng -> table`` producing a random strategy table of
            the population's kind; usually
            :meth:`repro.population.population.Population.random_strategy_table`.
        """
        if self._rng.random() >= self.config.mutation_rate:
            return None
        sset = int(self._rng.integers(0, self.config.n_ssets))
        table = draw_table(self._rng)
        table = np.asarray(table)
        if table.shape != (self.config.space.n_states,):
            raise PopulationError(
                f"mutation table has shape {table.shape},"
                f" expected ({self.config.space.n_states},)"
            )
        self.n_mutations += 1
        return MutationSelection(sset=sset, table=table)

    def __repr__(self) -> str:
        return (
            f"NatureAgent(pc_events={self.n_pc_events}, adoptions={self.n_adoptions},"
            f" mutations={self.n_mutations})"
        )
