"""The Fermi pairwise-comparison probability (paper Eq. 1).

The learner adopts the teacher's strategy with probability

.. math:: p = \\frac{1}{1 + e^{-\\beta(\\pi_T - \\pi_L)}}

where :math:`\\pi_T`, :math:`\\pi_L` are the teacher's and learner's
fitnesses and :math:`\\beta` is the intensity of selection: :math:`\\beta
\\to 0` makes adoption a coin flip, :math:`\\beta \\to \\infty` makes the
fitter strategy always win.
"""

from __future__ import annotations

import numpy as np
from scipy.special import expit

from repro.errors import ConfigError

__all__ = ["fermi_probability", "fermi_probability_array"]


def fermi_probability(pi_teacher: float, pi_learner: float, beta: float) -> float:
    """Adoption probability for scalar payoffs (numerically stable for any β)."""
    if beta < 0 or not np.isfinite(beta):
        raise ConfigError(f"beta must be finite and non-negative, got {beta}")
    return float(expit(beta * (float(pi_teacher) - float(pi_learner))))


def fermi_probability_array(
    pi_teacher: np.ndarray, pi_learner: np.ndarray, beta: float
) -> np.ndarray:
    """Vectorised :func:`fermi_probability` over payoff arrays."""
    if beta < 0 or not np.isfinite(beta):
        raise ConfigError(f"beta must be finite and non-negative, got {beta}")
    diff = np.asarray(pi_teacher, dtype=np.float64) - np.asarray(pi_learner, dtype=np.float64)
    return expit(beta * diff)
