"""The Fermi pairwise-comparison probability (paper Eq. 1).

The learner adopts the teacher's strategy with probability

.. math:: p = \\frac{1}{1 + e^{-\\beta(\\pi_T - \\pi_L)}}

where :math:`\\pi_T`, :math:`\\pi_L` are the teacher's and learner's
fitnesses and :math:`\\beta` is the intensity of selection: :math:`\\beta
\\to 0` makes adoption a coin flip, :math:`\\beta \\to \\infty` makes the
fitter strategy always win.
"""

from __future__ import annotations

import numpy as np
from scipy.special import expit

from repro.errors import ConfigError

__all__ = ["fermi_probability", "fermi_probability_array"]


def _check_beta(beta: float) -> None:
    if np.isnan(beta) or beta < 0:
        raise ConfigError(f"beta must be non-negative (inf allowed), got {beta}")


def fermi_probability(pi_teacher: float, pi_learner: float, beta: float) -> float:
    """Adoption probability for scalar payoffs (numerically stable for any β).

    ``beta=inf`` is the deterministic-imitation limit the module docstring
    promises: the fitter strategy always wins (probability 1 when the
    teacher is fitter, 0 when less fit, a fair coin on exact ties —
    ``expit``'s own limit, since the exponent is 0 regardless of β).
    """
    _check_beta(beta)
    diff = float(pi_teacher) - float(pi_learner)
    if np.isinf(beta):
        # beta * 0 would be nan; take the limit explicitly.
        return 1.0 if diff > 0 else (0.0 if diff < 0 else 0.5)
    return float(expit(beta * diff))


def fermi_probability_array(
    pi_teacher: np.ndarray, pi_learner: np.ndarray, beta: float
) -> np.ndarray:
    """Vectorised :func:`fermi_probability` over payoff arrays."""
    _check_beta(beta)
    diff = np.asarray(pi_teacher, dtype=np.float64) - np.asarray(pi_learner, dtype=np.float64)
    if np.isinf(beta):
        return np.where(diff > 0, 1.0, np.where(diff < 0, 0.0, 0.5))
    return expit(beta * diff)
