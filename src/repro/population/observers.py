"""Observers: hooks that watch the evolution generation by generation.

The driver calls every observer once per generation with a
:class:`GenerationRecord`.  Built-in observers cover the common needs:
:class:`HistoryObserver` keeps the event log, :class:`SnapshotObserver`
samples full population strategy matrices (the data behind the paper's
Fig. 2 panels), and :class:`TrajectoryObserver` tracks summary series such
as the number of unique strategies and mean cooperativeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.population.nature import AdoptionDecision, MutationSelection

__all__ = [
    "GenerationRecord",
    "Observer",
    "HistoryObserver",
    "SnapshotObserver",
    "TrajectoryObserver",
]


@dataclass(frozen=True)
class GenerationRecord:
    """What happened in one generation of population dynamics.

    Attributes
    ----------
    generation:
        The (1-based) generation just completed.
    pc:
        Adoption decision when a pairwise comparison fired, else None.
    mutation:
        Mutation event when one fired, else None.
    n_unique:
        Number of distinct strategies after the generation's events.
    changed:
        True when the population's strategy assignment changed.
    """

    generation: int
    pc: AdoptionDecision | None
    mutation: MutationSelection | None
    n_unique: int
    changed: bool


class Observer(Protocol):
    """Anything that wants to watch a run, generation by generation."""

    def on_generation(self, record: GenerationRecord, population) -> None:
        """Called after each generation's events were applied."""
        ...  # pragma: no cover - protocol


@dataclass
class HistoryObserver:
    """Keeps every :class:`GenerationRecord` (memory ∝ generations)."""

    records: list[GenerationRecord] = field(default_factory=list)

    def on_generation(self, record: GenerationRecord, population) -> None:
        self.records.append(record)

    @property
    def n_adoptions(self) -> int:
        """Total successful strategy adoptions recorded."""
        return sum(1 for r in self.records if r.pc is not None and r.pc.adopted)

    @property
    def n_mutations(self) -> int:
        """Total mutations recorded."""
        return sum(1 for r in self.records if r.mutation is not None)


@dataclass
class SnapshotObserver:
    """Stores full strategy matrices every ``every`` generations.

    The stored matrices are exactly the population views that the paper's
    Fig. 2 renders (one row per SSet, one column per state).
    """

    every: int = 1000
    snapshots: list[tuple[int, np.ndarray]] = field(default_factory=list)

    def on_generation(self, record: GenerationRecord, population) -> None:
        if record.generation % self.every == 0:
            self.capture(record.generation, population)

    def capture(self, generation: int, population) -> None:
        """Store the population's current strategy matrix."""
        self.snapshots.append((generation, population.matrix()))

    def latest(self) -> tuple[int, np.ndarray]:
        """The most recent snapshot ``(generation, matrix)``."""
        if not self.snapshots:
            raise LookupError("no snapshots captured yet")
        return self.snapshots[-1]


@dataclass
class TrajectoryObserver:
    """Tracks light-weight summary series every ``every`` generations.

    Series
    ------
    ``generations`` — sample points;
    ``n_unique`` — distinct strategies in the population;
    ``mean_defection`` — population mean of per-state defection probability
    (a strategy-level cooperativeness proxy that needs no game play).
    """

    every: int = 100
    generations: list[int] = field(default_factory=list)
    n_unique: list[int] = field(default_factory=list)
    mean_defection: list[float] = field(default_factory=list)

    def on_generation(self, record: GenerationRecord, population) -> None:
        if record.generation % self.every != 0:
            return
        self.generations.append(record.generation)
        self.n_unique.append(record.n_unique)
        live = population.live_slots()
        counts = population.counts()[live].astype(np.float64)
        tables = population.tables_view()[live].astype(np.float64)
        weights = counts / counts.sum()
        self.mean_defection.append(float(weights @ tables.mean(axis=1)))
