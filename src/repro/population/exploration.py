"""Strategy-space exploration: searching for strong strategies directly.

The paper's related work (§II) covers the other road into huge strategy
spaces: instead of evolving a population and waiting, *search* — "By
establishing a search algorithm to intelligently focus on strategies that
are more likely to be strong, the problem space can be limited" (Jordan et
al.).  This module provides that tool for this package's populations:

* :func:`best_response_search` — greedy hill-climbing over pure strategy
  tables: repeatedly flip the single state-move whose flip most improves
  fitness against a fixed opponent field, until no flip helps.  With exact
  (deterministic or Markov-expected) fitness this finds a 1-flip-local
  best response in at most ``n_states`` sweeps.
* :func:`random_restart_search` — the classic multistart wrapper.

Useful both as an analysis instrument ("what beats this evolved
population?") and as a baseline to compare the evolutionary dynamics
against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.game.engine import DEFAULT_ROUNDS
from repro.game.markov import expected_pair_payoffs
from repro.game.noise import NO_NOISE, NoiseModel
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.states import StateSpace
from repro.game.strategy import Strategy

__all__ = ["SearchResult", "best_response_search", "random_restart_search"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a strategy search.

    Attributes
    ----------
    strategy:
        The best strategy found (pure).
    fitness:
        Its total fitness against the opponent field.
    evaluations:
        Candidate strategies whose fitness was computed.
    flips:
        Accepted single-state improvements.
    """

    strategy: Strategy
    fitness: float
    evaluations: int
    flips: int


def _field_fitness(
    table: np.ndarray,
    opponents: np.ndarray,
    space: StateSpace,
    payoff: PayoffMatrix,
    rounds: int,
    noise: NoiseModel,
) -> float:
    """Exact expected fitness of ``table`` against every opponent row."""
    mat = np.vstack([table.astype(np.float64), opponents.astype(np.float64)])
    n_opp = opponents.shape[0]
    ia = np.zeros(n_opp, dtype=np.intp)
    ib = np.arange(1, n_opp + 1, dtype=np.intp)
    ea, _ = expected_pair_payoffs(
        space, mat, ia, ib, payoff=payoff, rounds=rounds, noise=noise
    )
    return float(ea.sum())


def best_response_search(
    opponents: np.ndarray,
    space: StateSpace,
    start: Strategy | None = None,
    payoff: PayoffMatrix = PAPER_PAYOFFS,
    rounds: int = DEFAULT_ROUNDS,
    noise: NoiseModel = NO_NOISE,
    max_sweeps: int | None = None,
) -> SearchResult:
    """Greedy 1-flip hill climbing toward a best response to ``opponents``.

    Parameters
    ----------
    opponents:
        (n_opponents, n_states) strategy matrix of the fixed field (the
        rows of a :meth:`Population.matrix`, for instance).
    space:
        The shared state space.
    start:
        Starting pure strategy; defaults to ALLC (all-zeros).
    payoff, rounds, noise:
        Game parameters; fitness is the exact expectation, so the search
        is deterministic.
    max_sweeps:
        Cap on full flip sweeps; ``None`` means run to a local optimum
        (guaranteed to terminate — fitness strictly increases per flip).

    Returns
    -------
    SearchResult
    """
    opp = np.asarray(opponents, dtype=np.float64)
    if opp.ndim != 2 or opp.shape[1] != space.n_states:
        raise ExperimentError(
            f"opponents must be (n, {space.n_states}), got {opp.shape}"
        )
    if opp.shape[0] == 0:
        raise ExperimentError("need at least one opponent")
    if start is not None and start.space != space:
        raise ExperimentError("start strategy has the wrong memory depth")

    table = (
        start.table.astype(np.uint8).copy()
        if start is not None and start.is_pure
        else np.zeros(space.n_states, dtype=np.uint8)
    )
    if start is not None and not start.is_pure:
        raise ExperimentError("the search walks pure strategies; start must be pure")

    evaluations = 0
    flips = 0
    current = _field_fitness(table, opp, space, payoff, rounds, noise)
    evaluations += 1

    sweeps = 0
    improved = True
    while improved and (max_sweeps is None or sweeps < max_sweeps):
        sweeps += 1
        improved = False
        best_gain = 0.0
        best_state = -1
        best_fitness = current
        for state in range(space.n_states):
            table[state] ^= 1
            fitness = _field_fitness(table, opp, space, payoff, rounds, noise)
            evaluations += 1
            table[state] ^= 1
            if fitness - current > best_gain + 1e-12:
                best_gain = fitness - current
                best_state = state
                best_fitness = fitness
        if best_state >= 0:
            table[best_state] ^= 1
            current = best_fitness
            flips += 1
            improved = True

    return SearchResult(
        strategy=Strategy(space, table.copy(), name="best-response"),
        fitness=current,
        evaluations=evaluations,
        flips=flips,
    )


def random_restart_search(
    opponents: np.ndarray,
    space: StateSpace,
    rng: np.random.Generator,
    restarts: int = 4,
    **kwargs,
) -> SearchResult:
    """Run :func:`best_response_search` from random starts; keep the best."""
    if restarts < 1:
        raise ExperimentError(f"restarts must be >= 1, got {restarts}")
    best: SearchResult | None = None
    total_evals = 0
    total_flips = 0
    for _ in range(restarts):
        start = Strategy.random_pure(space, rng)
        result = best_response_search(opponents, space, start=start, **kwargs)
        total_evals += result.evaluations
        total_flips += result.flips
        if best is None or result.fitness > best.fitness:
            best = result
    assert best is not None
    return SearchResult(
        strategy=best.strategy,
        fitness=best.fitness,
        evaluations=total_evals,
        flips=total_flips,
    )
