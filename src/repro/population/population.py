"""Population state: which strategy every SSet currently plays.

The paper's Nature Agent keeps one strategy id per SSet; after learning
spreads a successful strategy, many SSets share a table.  We therefore store
strategies *deduplicated*: SSets map to slots in a unique-strategy pool,
with reference counts.  That is both the paper's memory optimisation ("only
strategies currently held by other SSets at the given generation are kept in
memory") and the key to fast fitness evaluation — pair fitness only needs
computing per unique pair, not per SSet pair.

Every mutation of the population bumps a version counter, and every slot
carries an allocation stamp, so downstream caches (the pair-fitness matrix
in :mod:`repro.population.fitness`) can invalidate precisely.
"""

from __future__ import annotations

import numpy as np

from repro.config import SimulationConfig
from repro.errors import PopulationError, StrategyError
from repro.game.fitness_cache import strategy_row_digest
from repro.game.states import StateSpace
from repro.game.strategy import Strategy

__all__ = ["Population"]


class Population:
    """Deduplicated strategy assignment for all SSets.

    Parameters
    ----------
    config:
        Simulation configuration (memory depth, SSet count, strategy kind).
    matrix:
        Initial (n_ssets, n_states) strategy matrix; dtype uint8 for pure
        populations, float64 for mixed ones.

    Notes
    -----
    Use :meth:`Population.random` to draw the paper's random initial
    population from a seeded generator.
    """

    def __init__(self, config: SimulationConfig, matrix: np.ndarray) -> None:
        self.config = config
        self.space: StateSpace = config.space
        arr = np.asarray(matrix)
        if arr.shape != (config.n_ssets, self.space.n_states):
            raise PopulationError(
                f"matrix must be ({config.n_ssets}, {self.space.n_states}), got {arr.shape}"
            )
        if config.strategy_kind == "pure":
            if not np.issubdtype(arr.dtype, np.integer):
                raise PopulationError("pure populations need an integer 0/1 matrix")
            arr = arr.astype(np.uint8)
            if arr.size and arr.max() > 1:
                raise PopulationError("pure strategy entries must be 0 or 1")
            self._dtype = np.uint8
        else:
            arr = arr.astype(np.float64)
            if arr.size and (arr.min() < 0 or arr.max() > 1 or not np.all(np.isfinite(arr))):
                raise PopulationError("mixed strategy entries must lie in [0, 1]")
            self._dtype = np.float64

        n = config.n_ssets
        capacity = max(8, n)
        self._tables = np.zeros((capacity, self.space.n_states), dtype=self._dtype)
        self._counts = np.zeros(capacity, dtype=np.int64)
        self._stamps = np.zeros(capacity, dtype=np.int64)
        self._digests: list[bytes | None] = [None] * capacity
        self._slot_by_digest: dict[bytes, int] = {}
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._assign = np.empty(n, dtype=np.intp)
        self._next_stamp = 1
        self.version = 0

        for sset in range(n):
            self._assign[sset] = self._intern(arr[sset])

    # -- construction ----------------------------------------------------------

    @classmethod
    def random(cls, config: SimulationConfig, rng: np.random.Generator) -> "Population":
        """Draw the random initial population of the paper's setup phase."""
        shape = (config.n_ssets, config.space.n_states)
        if config.strategy_kind == "pure":
            matrix = rng.integers(0, 2, size=shape, dtype=np.uint8)
        else:
            matrix = rng.random(shape)
        return cls(config, matrix)

    @classmethod
    def uniform(cls, config: SimulationConfig, strategy: Strategy) -> "Population":
        """A monomorphic population where every SSet plays ``strategy``."""
        if strategy.space != config.space:
            raise PopulationError(
                f"strategy memory {strategy.memory} does not match config memory {config.memory}"
            )
        table = np.asarray(strategy.table)
        if config.strategy_kind == "mixed":
            table = table.astype(np.float64)
        elif not strategy.is_pure:
            raise PopulationError("cannot place a mixed strategy in a pure population")
        matrix = np.repeat(table[None, :], config.n_ssets, axis=0)
        return cls(config, matrix)

    # -- slot management ----------------------------------------------------------

    def _grow(self) -> None:
        old_cap = self._tables.shape[0]
        new_cap = old_cap * 2
        tables = np.zeros((new_cap, self.space.n_states), dtype=self._dtype)
        tables[:old_cap] = self._tables
        self._tables = tables
        self._counts = np.concatenate([self._counts, np.zeros(old_cap, dtype=np.int64)])
        self._stamps = np.concatenate([self._stamps, np.zeros(old_cap, dtype=np.int64)])
        self._digests.extend([None] * old_cap)
        self._free.extend(range(new_cap - 1, old_cap - 1, -1))

    def _intern(self, table: np.ndarray) -> int:
        """Return the slot holding ``table``, allocating and refcounting as needed."""
        digest = strategy_row_digest(np.ascontiguousarray(table, dtype=self._dtype))
        slot = self._slot_by_digest.get(digest)
        if slot is None:
            if not self._free:
                self._grow()
            slot = self._free.pop()
            self._tables[slot] = table
            self._digests[slot] = digest
            self._slot_by_digest[digest] = slot
            self._stamps[slot] = self._next_stamp
            self._next_stamp += 1
        self._counts[slot] += 1
        return slot

    def _release(self, slot: int) -> None:
        self._counts[slot] -= 1
        if self._counts[slot] == 0:
            digest = self._digests[slot]
            assert digest is not None
            del self._slot_by_digest[digest]
            self._digests[slot] = None
            self._stamps[slot] = 0
            self._free.append(slot)

    # -- queries ---------------------------------------------------------------

    @property
    def n_ssets(self) -> int:
        """Number of SSets (constant through the run)."""
        return self.config.n_ssets

    @property
    def n_unique(self) -> int:
        """Number of distinct strategies currently in the population."""
        return len(self._slot_by_digest)

    @property
    def capacity(self) -> int:
        """Allocated unique-strategy slots (internal; grows on demand)."""
        return self._tables.shape[0]

    def slot_of(self, sset: int) -> int:
        """Unique-strategy slot currently assigned to ``sset``."""
        return int(self._assign[self._check_sset(sset)])

    def slot_stamp(self, slot: int) -> int:
        """Allocation stamp of a slot (0 when free); changes when reused."""
        return int(self._stamps[slot])

    def slot_table(self, slot: int) -> np.ndarray:
        """Read-only view of a slot's strategy table."""
        if self._counts[slot] <= 0:
            raise PopulationError(f"slot {slot} is free")
        view = self._tables[slot]
        view.flags.writeable = False
        return view

    def slot_count(self, slot: int) -> int:
        """How many SSets currently hold this slot's strategy."""
        return int(self._counts[slot])

    def live_slots(self) -> np.ndarray:
        """Sorted array of occupied slot indices."""
        return np.flatnonzero(self._counts > 0)

    def assignment(self) -> np.ndarray:
        """Copy of the SSet -> slot mapping."""
        return self._assign.copy()

    def counts(self) -> np.ndarray:
        """Copy of per-slot reference counts (0 for free slots)."""
        return self._counts.copy()

    def table_of(self, sset: int) -> np.ndarray:
        """Read-only view of the strategy table played by ``sset``."""
        return self.slot_table(self.slot_of(sset))

    def strategy_of(self, sset: int) -> Strategy:
        """The :class:`~repro.game.strategy.Strategy` object for ``sset``."""
        return Strategy(self.space, self.table_of(sset).copy())

    def matrix(self) -> np.ndarray:
        """Materialise the full (n_ssets, n_states) strategy matrix (a copy)."""
        return self._tables[self._assign].copy()

    def tables_view(self) -> np.ndarray:
        """The raw slot-table array (capacity, n_states); rows of free slots are stale."""
        return self._tables

    def digest_of_slot(self, slot: int) -> bytes:
        """Digest identity of an occupied slot's table."""
        d = self._digests[slot]
        if d is None:
            raise PopulationError(f"slot {slot} is free")
        return d

    def _check_sset(self, sset: int) -> int:
        s = int(sset)
        if not 0 <= s < self.n_ssets:
            raise PopulationError(f"SSet index {sset} out of range [0, {self.n_ssets})")
        return s

    # -- mutation -----------------------------------------------------------------

    def adopt(self, learner: int, teacher: int) -> bool:
        """Make ``learner`` play ``teacher``'s strategy (the PC learning step).

        Returns True when the assignment actually changed.
        """
        learner = self._check_sset(learner)
        teacher = self._check_sset(teacher)
        src = self._assign[teacher]
        dst = self._assign[learner]
        if src == dst:
            return False
        self._counts[src] += 1
        self._release(int(dst))
        self._assign[learner] = src
        self.version += 1
        return True

    def set_strategy(self, sset: int, table: np.ndarray) -> int:
        """Assign a brand-new strategy table to ``sset`` (the mutation step).

        Returns the slot now holding the table (existing identical strategies
        are shared, not duplicated).
        """
        sset = self._check_sset(sset)
        arr = np.ascontiguousarray(table, dtype=self._dtype)
        if arr.shape != (self.space.n_states,):
            raise StrategyError(
                f"table must have {self.space.n_states} entries, got shape {arr.shape}"
            )
        if self._dtype == np.uint8:
            if arr.size and arr.max() > 1:
                raise StrategyError("pure strategy entries must be 0 or 1")
        elif arr.size and (arr.min() < 0 or arr.max() > 1 or not np.all(np.isfinite(arr))):
            raise StrategyError("mixed strategy entries must lie in [0, 1]")
        old = int(self._assign[sset])
        new = self._intern(arr)
        if new != old:
            self._release(old)
            self._assign[sset] = new
            self.version += 1
        else:
            # _intern bumped the refcount of the slot we already held.
            self._counts[new] -= 1
        return new

    def random_strategy_table(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a random strategy table of this population's kind (mutation draw).

        Pure populations draw each state's move as a fair coin.  Mixed
        populations follow ``config.mutation_distribution``: iid uniform
        probabilities, or the corner-concentrated Beta(0.1, 0.1) draw of
        the Nowak-Sigmund WSLS study.
        """
        if self._dtype == np.uint8:
            return rng.integers(0, 2, size=self.space.n_states, dtype=np.uint8)
        if self.config.mutation_distribution == "ushaped":
            return rng.beta(0.1, 0.1, self.space.n_states)
        return rng.random(self.space.n_states)

    # -- diagnostics ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert internal consistency (used by tests and property checks)."""
        counts = np.zeros_like(self._counts)
        for slot in self._assign:
            counts[slot] += 1
        if not np.array_equal(counts, self._counts):
            raise PopulationError("refcounts out of sync with assignment")
        for digest, slot in self._slot_by_digest.items():
            if self._digests[slot] != digest:
                raise PopulationError("digest map out of sync")
            if self._counts[slot] <= 0:
                raise PopulationError("digest map points at a free slot")
        live = set(self.live_slots().tolist())
        if live != set(self._slot_by_digest.values()):
            raise PopulationError("live slots and digest map disagree")
        free = set(self._free)
        if free & live or len(free) + len(live) != self.capacity:
            raise PopulationError("free list corrupt")

    def __repr__(self) -> str:
        return (
            f"Population(n_ssets={self.n_ssets}, memory={self.space.memory},"
            f" kind={self.config.strategy_kind}, unique={self.n_unique},"
            f" version={self.version})"
        )
