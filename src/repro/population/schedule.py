"""Opponent assignment within an SSet (paper §IV-A, §V-A).

Every generation each SSet must play every opponent strategy in the
population.  The paper splits that work over the SSet's agents: with *s*
SSets and *a* agents per SSet, "each agent is assigned s/a opposing SSets to
play against", and each agent works out its share purely from its own index
— no communication ("we are able to leverage the system size and processor
rank data to allow each node to calculate its position within an SSet and
its subsequent opponent strategies individually").

:class:`OpponentSchedule` reproduces that arithmetic: opponents are listed
in ascending SSet order and dealt to agents in balanced contiguous chunks
(sizes differing by at most one).  The schedule is pure arithmetic — any
rank, given only ``(n_ssets, agents_per_sset, include_self)``, computes the
same assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError

__all__ = ["OpponentSchedule"]


@dataclass(frozen=True)
class OpponentSchedule:
    """Deterministic agent-to-opponent assignment for every SSet.

    Parameters
    ----------
    n_ssets:
        Number of SSets *s* in the population.
    agents_per_sset:
        Number of agents *a* in each SSet (the paper's default is *s*).
    include_self:
        Whether an SSet's own strategy appears among its opponents.
    """

    n_ssets: int
    agents_per_sset: int
    include_self: bool = False

    def __post_init__(self) -> None:
        if self.n_ssets < 1:
            raise ScheduleError(f"n_ssets must be >= 1, got {self.n_ssets}")
        if self.agents_per_sset < 1:
            raise ScheduleError(f"agents_per_sset must be >= 1, got {self.agents_per_sset}")

    # -- opponents ------------------------------------------------------------

    @property
    def opponents_per_sset(self) -> int:
        """Number of opponent strategies each SSet faces per generation."""
        return self.n_ssets if self.include_self else self.n_ssets - 1

    def opponents_of(self, sset: int) -> np.ndarray:
        """All opponent SSet ids for ``sset``, in ascending order."""
        self._check_sset(sset)
        if self.include_self:
            return np.arange(self.n_ssets, dtype=np.intp)
        out = np.empty(self.n_ssets - 1, dtype=np.intp)
        out[:sset] = np.arange(sset)
        out[sset:] = np.arange(sset + 1, self.n_ssets)
        return out

    # -- agent chunks ------------------------------------------------------------

    def _chunk_bounds(self, agent: int) -> tuple[int, int]:
        """Half-open slice of the opponent list handled by ``agent``."""
        m = self.opponents_per_sset
        a = self.agents_per_sset
        base, extra = divmod(m, a)
        if agent < extra:
            start = agent * (base + 1)
            return start, start + base + 1
        start = extra * (base + 1) + (agent - extra) * base
        return start, start + base

    def agent_opponents(self, sset: int, agent: int) -> np.ndarray:
        """Opponent SSet ids played by agent ``agent`` of SSet ``sset``.

        Agents beyond the opponent count receive empty assignments (they sit
        idle that generation, exactly as spare agents do in the paper).
        """
        self._check_agent(agent)
        lo, hi = self._chunk_bounds(agent)
        return self.opponents_of(sset)[lo:hi]

    def games_of_agent(self, agent: int) -> int:
        """Number of games agent index ``agent`` plays (same for every SSet)."""
        self._check_agent(agent)
        lo, hi = self._chunk_bounds(agent)
        return hi - lo

    def agent_for_opponent(self, sset: int, opponent: int) -> int:
        """Which agent of ``sset`` handles the game against ``opponent``."""
        self._check_sset(sset)
        self._check_sset(opponent)
        if not self.include_self and opponent == sset:
            raise ScheduleError(f"SSet {sset} does not play itself in this schedule")
        opponents = self.opponents_of(sset)
        pos = int(np.searchsorted(opponents, opponent))
        m = self.opponents_per_sset
        a = self.agents_per_sset
        base, extra = divmod(m, a)
        head = extra * (base + 1)
        if pos < head:
            return pos // (base + 1)
        if base == 0:
            raise ScheduleError("internal: position beyond all non-empty chunks")
        return extra + (pos - head) // base

    @property
    def max_games_per_agent(self) -> int:
        """The paper's ``s/a`` rounded up: the busiest agent's game count."""
        return -(-self.opponents_per_sset // self.agents_per_sset)

    @property
    def total_games_per_sset(self) -> int:
        """Games one SSet's agents play per generation (= opponents)."""
        return self.opponents_per_sset

    @property
    def total_games_per_generation(self) -> int:
        """Directed games across the whole population per generation."""
        return self.n_ssets * self.opponents_per_sset

    # -- validation helpers --------------------------------------------------------

    def _check_sset(self, sset: int) -> None:
        if not 0 <= sset < self.n_ssets:
            raise ScheduleError(f"SSet index {sset} out of range [0, {self.n_ssets})")

    def _check_agent(self, agent: int) -> None:
        if not 0 <= agent < self.agents_per_sset:
            raise ScheduleError(
                f"agent index {agent} out of range [0, {self.agents_per_sset})"
            )

    def validate_cover(self, sset: int) -> None:
        """Assert the agents of ``sset`` cover each opponent exactly once."""
        seen: list[int] = []
        for agent in range(self.agents_per_sset):
            seen.extend(self.agent_opponents(sset, agent).tolist())
        expected = self.opponents_of(sset).tolist()
        if sorted(seen) != expected:
            raise ScheduleError(f"agents of SSet {sset} do not cover opponents exactly once")
