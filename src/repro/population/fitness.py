"""SSet fitness evaluation (paper §IV-A, §IV-D).

An SSet's *relative fitness* is the total payoff its agents collect against
all opponent strategies in the population.  This module evaluates it in the
three modes resolved by
:attr:`repro.config.SimulationConfig.resolved_fitness_mode`:

``deterministic``
    Pure, noiseless play: the outcome of a matchup is a function of the two
    strategy tables, so per-*unique*-pair payoffs are memoised against the
    population's deduplicated slots and an SSet's fitness is a weighted sum
    over unique opponents.  This is what makes 10^7-generation runs cheap.

``expected``
    Exact Markov-chain expectation (:mod:`repro.game.markov`) — also a pure
    function of the pair, memoised the same way.  Available for mixed and
    noisy play.

``sampled``
    Faithful to the paper: the games are actually played each time fitness
    is requested, with randomness drawn from a stream keyed by
    ``(generation, sset)`` so serial and parallel executions sample
    identical games.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import SimulationConfig
from repro.errors import PopulationError
from repro.game.batch_engine import make_engine
from repro.game.markov import expected_pair_payoffs
from repro.population.population import Population
from repro.rng import StreamFactory

__all__ = ["FitnessEvaluator"]


class FitnessEvaluator:
    """Evaluates per-SSet relative fitness for one population.

    Parameters
    ----------
    config:
        The simulation configuration (payoffs, rounds, noise, mode).
    population:
        The population whose fitness is queried; the evaluator tracks its
        slot stamps so memoised pair payoffs invalidate precisely when a
        slot is reused for a new strategy.
    streams:
        Stream factory for sampled play.  Only needed in sampled mode.
    """

    def __init__(
        self,
        config: SimulationConfig,
        population: Population,
        streams: StreamFactory | None = None,
    ) -> None:
        if population.config is not config:
            # Allow equal-but-distinct configs (e.g. reconstructed); require equality.
            if population.config != config:
                raise PopulationError("population was built for a different configuration")
        self.config = config
        self.population = population
        self.streams = streams
        self.mode = config.resolved_fitness_mode
        if self.mode == "sampled" and streams is None:
            raise PopulationError("sampled fitness mode needs a StreamFactory")
        # Engine selection (vector vs bit-packed batch, NumPy vs numba) is a
        # config knob; every kind is fitness-bit-identical (docs/kernels.md).
        self.engine = make_engine(
            config.space,
            payoff=config.payoff,
            rounds=config.rounds,
            noise=config.noise,
            kind=config.resolved_engine,
            jit=config.engine_jit,
        )
        # Memoised rows: slot -> (row_stamp, {col_slot: (col_stamp, payoff_row_vs_col)})
        self._rows: dict[int, tuple[int, dict[int, tuple[int, float]]]] = {}
        self.pairs_computed = 0
        self.pair_lookups = 0

    # -- public API -------------------------------------------------------------

    def fitness(self, ssets: Sequence[int], generation: int) -> np.ndarray:
        """Relative fitness of each requested SSet at ``generation``.

        In memoised modes the generation is irrelevant (fitness is a pure
        function of the current population); in sampled mode it keys the
        random streams, so asking twice for the same generation returns the
        same sample.
        """
        ssets = [int(s) for s in ssets]
        if self.mode == "sampled":
            return np.array([self._sampled_fitness(s, generation) for s in ssets])
        return np.array([self._memoised_fitness(s) for s in ssets])

    def all_fitness(self, generation: int) -> np.ndarray:
        """Fitness of every SSet (used by observers; costly in sampled mode)."""
        return self.fitness(range(self.population.n_ssets), generation)

    # -- memoised modes ----------------------------------------------------------

    def _memoised_fitness(self, sset: int) -> float:
        pop = self.population
        slot = pop.slot_of(sset)
        live = pop.live_slots()
        row = self._row_payoffs(slot, live)
        counts = pop.counts()[live].astype(np.float64)
        total = float(row @ counts)
        if not self.config.include_self_play:
            self_idx = int(np.searchsorted(live, slot))
            total -= float(row[self_idx])
        return total

    def _row_payoffs(self, slot: int, cols: np.ndarray) -> np.ndarray:
        """Payoff of ``slot``'s strategy against each column slot (memoised)."""
        pop = self.population
        row_stamp = pop.slot_stamp(slot)
        entry = self._rows.get(slot)
        if entry is None or entry[0] != row_stamp:
            entry = (row_stamp, {})
            self._rows[slot] = entry
        cache = entry[1]

        out = np.empty(cols.size, dtype=np.float64)
        missing: list[int] = []
        missing_pos: list[int] = []
        for pos, col in enumerate(cols):
            col = int(col)
            col_stamp = pop.slot_stamp(col)
            hit = cache.get(col)
            if hit is not None and hit[0] == col_stamp:
                out[pos] = hit[1]
                self.pair_lookups += 1
            else:
                missing.append(col)
                missing_pos.append(pos)
        if missing:
            fa, fb = self._compute_pairs(slot, np.asarray(missing, dtype=np.intp))
            for k, col in enumerate(missing):
                col_stamp = pop.slot_stamp(col)
                cache[col] = (col_stamp, float(fa[k]))
                out[missing_pos[k]] = fa[k]
                # Store the mirrored payoff for the opponent's row too.
                rev = self._rows.get(col)
                if rev is None or rev[0] != col_stamp:
                    rev = (col_stamp, {})
                    self._rows[col] = rev
                rev[1][slot] = (pop.slot_stamp(slot), float(fb[k]))
            self.pairs_computed += len(missing)
        return out

    def _compute_pairs(self, slot: int, cols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        tables = self.population.tables_view()
        ia = np.full(cols.size, slot, dtype=np.intp)
        if self.mode == "expected":
            return expected_pair_payoffs(
                self.config.space,
                tables,
                ia,
                cols,
                payoff=self.config.payoff,
                rounds=self.config.rounds,
                noise=self.config.noise,
            )
        res = self.engine.play(tables, ia, cols)
        return res.fitness_a, res.fitness_b

    # -- sampled mode ----------------------------------------------------------------

    def _sampled_fitness(self, sset: int, generation: int) -> float:
        pop = self.population
        if self.streams is None:  # pragma: no cover - guarded in __init__
            raise PopulationError("sampled fitness mode needs a StreamFactory")
        opponents = [j for j in range(pop.n_ssets) if j != sset]
        if self.config.include_self_play:
            opponents.append(sset)
        assign = pop.assignment()
        ia = np.full(len(opponents), assign[sset], dtype=np.intp)
        ib = assign[np.asarray(opponents, dtype=np.intp)]
        rng = self.streams.fresh("fitness", generation, sset)
        res = self.engine.play(pop.tables_view(), ia, ib, rng=rng)
        return float(res.fitness_a.sum())

    # -- maintenance ------------------------------------------------------------------

    def prune(self) -> None:
        """Drop memoised rows for slots that are no longer live (housekeeping)."""
        pop = self.population
        live = set(int(s) for s in pop.live_slots())
        for slot in list(self._rows):
            if slot not in live or self._rows[slot][0] != pop.slot_stamp(slot):
                del self._rows[slot]

    def __repr__(self) -> str:
        return (
            f"FitnessEvaluator(mode={self.mode}, rows={len(self._rows)},"
            f" pairs_computed={self.pairs_computed}, lookups={self.pair_lookups})"
        )
