"""Serial evolution driver.

:class:`EvolutionDriver` runs the paper's population dynamics in a single
process: per generation the Nature Agent decides on a pairwise comparison
(fitnesses evaluated on demand) and a mutation, the population updates, and
observers are notified.  This is the reference implementation the parallel
runner (:mod:`repro.parallel.runner`) must match trajectory-for-trajectory.

Note on faithfulness: the paper's SSets replay every game every generation
even when no pairwise comparison fires, because on Blue Gene compute is free
relative to communication.  The trajectory only ever consumes fitness at PC
events, so we evaluate lazily — identical dynamics, far less work.  The
performance model (:mod:`repro.perf`) accounts for the paper's
all-games-every-generation cost when reproducing the scaling studies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.config import SimulationConfig
from repro.errors import PopulationError
from repro.population.fitness import FitnessEvaluator
from repro.population.nature import NatureAgent
from repro.population.observers import GenerationRecord, Observer
from repro.population.population import Population
from repro.rng import StreamFactory

__all__ = ["EvolutionDriver", "RunResult"]


@dataclass(frozen=True)
class RunResult:
    """Summary of a finished (or paused) run.

    Attributes
    ----------
    population:
        The population in its final state.
    generation:
        Generations completed so far.
    n_pc_events, n_adoptions, n_mutations:
        Nature Agent counters.
    elapsed_seconds:
        Wall-clock time spent inside :meth:`EvolutionDriver.run`.
    """

    population: Population
    generation: int
    n_pc_events: int
    n_adoptions: int
    n_mutations: int
    elapsed_seconds: float


class EvolutionDriver:
    """Runs the full model — game dynamics plus population dynamics — serially.

    Parameters
    ----------
    config:
        Simulation parameters.
    population:
        Starting population; defaults to the random initial population drawn
        from the ``("init",)`` stream of ``config.seed``.
    observers:
        Objects with an ``on_generation(record, population)`` method.

    Examples
    --------
    >>> from repro.config import SimulationConfig
    >>> driver = EvolutionDriver(SimulationConfig(n_ssets=16, generations=50, seed=3))
    >>> result = driver.run()
    >>> result.generation
    50
    """

    def __init__(
        self,
        config: SimulationConfig,
        population: Population | None = None,
        observers: Sequence[Observer] = (),
    ) -> None:
        self.config = config
        self.streams = StreamFactory(config.seed)
        if population is None:
            population = Population.random(config, self.streams.fresh("init"))
        elif population.config != config:
            raise PopulationError("population was built for a different configuration")
        self.population = population
        self.nature = NatureAgent(config, self.streams)
        self.evaluator = FitnessEvaluator(config, population, self.streams)
        self.observers = list(observers)
        self.generation = 0

    def add_observer(self, observer: Observer) -> None:
        """Attach another observer (takes effect from the next generation)."""
        self.observers.append(observer)

    # -- stepping --------------------------------------------------------------

    def step(self) -> GenerationRecord:
        """Advance exactly one generation and return its record."""
        cfg = self.config
        pop = self.population
        gen = self.generation + 1
        changed = False

        decision = None
        selection = self.nature.select_pc()
        if selection is not None:
            pi_t, pi_l = self.evaluator.fitness(
                [selection.teacher, selection.learner], generation=gen
            )
            decision = self.nature.decide_adoption(selection, pi_t, pi_l)
            if decision.adopted:
                changed |= pop.adopt(decision.learner, decision.teacher)

        mutation = self.nature.select_mutation(pop.random_strategy_table)
        if mutation is not None:
            before = pop.version
            pop.set_strategy(mutation.sset, mutation.table)
            changed |= pop.version != before

        self.generation = gen
        record = GenerationRecord(
            generation=gen,
            pc=decision,
            mutation=mutation,
            n_unique=pop.n_unique,
            changed=changed,
        )
        for obs in self.observers:
            obs.on_generation(record, pop)
        return record

    def run(self, generations: int | None = None) -> RunResult:
        """Run ``generations`` more generations (default: the config's total).

        Returns a :class:`RunResult`; call again to continue the same
        trajectory (all random streams keep their positions).
        """
        todo = self.config.generations if generations is None else int(generations)
        if todo < 0:
            raise PopulationError(f"generations must be non-negative, got {todo}")
        start = time.perf_counter()
        for _ in range(todo):
            self.step()
        elapsed = time.perf_counter() - start
        return RunResult(
            population=self.population,
            generation=self.generation,
            n_pc_events=self.nature.n_pc_events,
            n_adoptions=self.nature.n_adoptions,
            n_mutations=self.nature.n_mutations,
            elapsed_seconds=elapsed,
        )

    def __repr__(self) -> str:
        return (
            f"EvolutionDriver(generation={self.generation}/{self.config.generations},"
            f" population={self.population!r})"
        )
