"""Population dynamics: SSets, the Nature Agent, and the evolution drivers.

* :mod:`repro.population.population` — deduplicated strategy assignment.
* :mod:`repro.population.fitness` — the three fitness-evaluation modes.
* :mod:`repro.population.fermi` — the pairwise-comparison probability (Eq. 1).
* :mod:`repro.population.nature` — the Nature Agent's decision process.
* :mod:`repro.population.schedule` — agent-to-opponent assignment.
* :mod:`repro.population.sset` — the object-level Strategy Set API.
* :mod:`repro.population.dynamics` — the serial evolution driver.
* :mod:`repro.population.observers` — per-generation hooks and recorders.
"""

from repro.population.dynamics import EvolutionDriver, RunResult
from repro.population.exploration import (
    SearchResult,
    best_response_search,
    random_restart_search,
)
from repro.population.fermi import fermi_probability, fermi_probability_array
from repro.population.fitness import FitnessEvaluator
from repro.population.fixation import (
    fixation_probability,
    fixation_probability_from_payoffs,
    pair_payoff_table,
)
from repro.population.moran import MoranDriver, MoranStep, fixation_experiment
from repro.population.nature import (
    AdoptionDecision,
    MutationSelection,
    NatureAgent,
    PCSelection,
)
from repro.population.observers import (
    GenerationRecord,
    HistoryObserver,
    SnapshotObserver,
    TrajectoryObserver,
)
from repro.population.population import Population
from repro.population.schedule import OpponentSchedule
from repro.population.sset import StrategySet

__all__ = [
    "EvolutionDriver",
    "RunResult",
    "SearchResult",
    "best_response_search",
    "random_restart_search",
    "fermi_probability",
    "fermi_probability_array",
    "FitnessEvaluator",
    "fixation_probability",
    "fixation_probability_from_payoffs",
    "pair_payoff_table",
    "MoranDriver",
    "MoranStep",
    "fixation_experiment",
    "NatureAgent",
    "PCSelection",
    "AdoptionDecision",
    "MutationSelection",
    "GenerationRecord",
    "HistoryObserver",
    "SnapshotObserver",
    "TrajectoryObserver",
    "Population",
    "OpponentSchedule",
    "StrategySet",
]
