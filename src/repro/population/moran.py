"""The Moran process: the classic alternative to pairwise comparison.

The paper's population dynamics use the Fermi pairwise-comparison rule from
Traulsen, Pacheco & Nowak [15]; the same literature's reference dynamic is
the *Moran process*: each step one individual reproduces with probability
proportional to fitness and its offspring replaces a uniformly random
individual.  Implementing it against the same Population/fitness machinery
gives (a) a baseline to compare the paper's PC dynamics with, and (b) some
of evolutionary dynamics' sharpest testable predictions — a neutral
mutant's fixation probability is exactly ``1/N``.

Fitness enters through the exponential mapping ``w = exp(beta * pi)``
(selection intensity ``beta``, as in the Fermi rule; ``beta = 0`` is
neutral drift).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimulationConfig
from repro.errors import PopulationError
from repro.population.fitness import FitnessEvaluator
from repro.population.population import Population
from repro.rng import StreamFactory

__all__ = ["MoranStep", "MoranDriver", "fixation_experiment"]


@dataclass(frozen=True)
class MoranStep:
    """One birth-death event."""

    generation: int
    parent: int
    replaced: int
    changed: bool


class MoranDriver:
    """Runs Moran birth-death dynamics over a Population.

    Parameters
    ----------
    config:
        Simulation parameters.  ``beta`` is the selection intensity of the
        exponential fitness mapping; ``pc_rate``/``mutation_rate`` are
        ignored (the Moran process replaces the Nature Agent's event
        schedule with one birth-death event per generation).
    population:
        Starting population; defaults to the seeded random one.
    """

    def __init__(
        self, config: SimulationConfig, population: Population | None = None
    ) -> None:
        self.config = config
        self.streams = StreamFactory(config.seed)
        if population is None:
            population = Population.random(config, self.streams.fresh("init"))
        elif population.config != config:
            raise PopulationError("population was built for a different configuration")
        self.population = population
        self.evaluator = FitnessEvaluator(config, population, self.streams)
        self._rng = self.streams.stream("moran")
        self.generation = 0

    def step(self) -> MoranStep:
        """One birth-death event: fitness-proportional parent, random death."""
        self.generation += 1
        pop = self.population
        fitness = self.evaluator.all_fitness(self.generation)
        weights = np.exp(self.config.beta * (fitness - fitness.max()))
        weights = weights / weights.sum()
        parent = int(self._rng.choice(pop.n_ssets, p=weights))
        replaced = int(self._rng.integers(pop.n_ssets))
        changed = pop.adopt(replaced, parent) if replaced != parent else False
        return MoranStep(
            generation=self.generation, parent=parent, replaced=replaced, changed=changed
        )

    def run_until_fixation(self, max_steps: int = 100_000) -> int:
        """Step until the population is monomorphic; returns steps taken.

        Raises
        ------
        PopulationError
            If fixation is not reached within ``max_steps`` (a guard, not
            an expectation — absorption is certain without mutation).
        """
        steps = 0
        while self.population.n_unique > 1:
            if steps >= max_steps:
                raise PopulationError(f"no fixation within {max_steps} steps")
            self.step()
            steps += 1
        return steps

    def __repr__(self) -> str:
        return (
            f"MoranDriver(generation={self.generation},"
            f" unique={self.population.n_unique}/{self.population.n_ssets})"
        )


def fixation_experiment(
    resident: np.ndarray,
    mutant: np.ndarray,
    config: SimulationConfig,
    replicates: int,
) -> float:
    """Probability that one ``mutant`` fixes in an ``N-1`` ``resident`` population.

    Each replicate seeds SSet 0 with the mutant table, the rest with the
    resident table, and runs the Moran process to absorption.  Returns the
    fraction of replicates in which the mutant's strategy took over.

    For a *payoff-neutral* mutant this must converge to ``1/N`` — the
    canonical sanity check of any Moran implementation.
    """
    if replicates < 1:
        raise PopulationError(f"replicates must be >= 1, got {replicates}")
    resident = np.asarray(resident)
    mutant = np.asarray(mutant)
    fixed = 0
    for rep in range(replicates):
        cfg = config.with_updates(seed=config.seed + rep)
        matrix = np.vstack([mutant[None, :], np.repeat(resident[None, :], cfg.n_ssets - 1, axis=0)])
        pop = Population(cfg, matrix)
        mutant_digest = pop.digest_of_slot(pop.slot_of(0))
        driver = MoranDriver(cfg, population=pop)
        driver.run_until_fixation()
        survivor = pop.digest_of_slot(pop.slot_of(0))
        if survivor == mutant_digest:
            fixed += 1
    return fixed / replicates
