"""Games on interaction graphs: neighbour-local play, imitate-the-best.

This generalises the lattice dynamics to arbitrary topologies.  A
:class:`GraphGame` holds one strategy index per node and a roster-level
pair-payoff matrix; a generation scores every node against its neighbours
(sum of pair payoffs, in stored neighbour order) and then lets each node
copy the best-scoring node it can see, with the same documented tie-breaks
as the grid implementations (switch only on a *strict* improvement; among
equally-best neighbours adopt the lowest strategy index).

The kernels are written so that computing any contiguous node block of a
step is bit-identical to computing it as part of the whole — per-node
arithmetic never depends on which other nodes share the call.  That is the
contract the rank-partitioned runner (:mod:`repro.spatial.parallel`) builds
on to stay bit-identical to the single-rank reference.

Two front doors:

* :class:`GraphIPD` — the paper's memory-*n* iterated games, priced by the
  exact Markov expectation (memoised whole-roster matrix, so a generation
  costs O(roster²) payoff evaluations regardless of graph size).
* :func:`graph_nowak_may` — the classic one-shot spatial PD as a pair
  matrix ``[[1, 0], [b, 0]]``, on any topology.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, GameError
from repro.game.engine import DEFAULT_ROUNDS
from repro.game.noise import NO_NOISE, NoiseModel
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.strategy import Strategy
from repro.spatial.graph import InteractionGraph
from repro.spatial.roster import check_roster, roster_pair_matrix

__all__ = ["GraphGame", "GraphIPD", "graph_nowak_may"]


class GraphGame:
    """Imitate-the-best dynamics on an interaction graph.

    Parameters
    ----------
    graph:
        The topology.
    pair:
        ``(k, k)`` payoff matrix: ``pair[a, b]`` is what a node playing
        strategy ``a`` earns from one neighbour playing ``b``.
    state:
        Initial per-node strategy indices, shape ``(n_nodes,)``.
    include_self_interaction:
        Whether each node also earns ``pair[s, s]`` from playing itself
        (the original Nowak-May setting; off for the iterated games).
    """

    def __init__(
        self,
        graph: InteractionGraph,
        pair: np.ndarray,
        state: np.ndarray,
        include_self_interaction: bool = False,
    ) -> None:
        self.graph = graph
        pair = np.asarray(pair, dtype=np.float64)
        if pair.ndim != 2 or pair.shape[0] != pair.shape[1] or pair.shape[0] < 1:
            raise ConfigError(f"pair must be a square (k, k) matrix, got {pair.shape}")
        self.pair = pair
        self.n_strategies = pair.shape[0]
        state = np.asarray(state)
        if state.shape != (graph.n_nodes,):
            raise ConfigError(
                f"state must have shape ({graph.n_nodes},), got {state.shape}"
            )
        state = state.astype(np.intp)
        if state.size and (state.min() < 0 or state.max() >= self.n_strategies):
            raise ConfigError(f"state entries must lie in [0, {self.n_strategies})")
        self.state = state.copy()
        self.include_self_interaction = bool(include_self_interaction)
        self.generation = 0

    # -- block kernels -------------------------------------------------------
    #
    # Both kernels take the *full* state (and scores) array plus a node
    # block [lo, hi); every per-node result depends only on that node's own
    # row of the padded neighbour view, so a block computed alone is
    # bit-identical to the same block computed as part of the whole.

    def block_payoffs(self, state: np.ndarray, lo: int = 0, hi: int | None = None) -> np.ndarray:
        """Total payoff of nodes ``[lo, hi)`` against their neighbours.

        ``state`` must be valid for the block's nodes and their neighbours;
        entries elsewhere are never read.
        """
        hi = self.graph.n_nodes if hi is None else hi
        nbr = self.graph.nbr[lo:hi]
        mask = self.graph.nbr_mask[lo:hi]
        own = state[lo:hi]
        total = np.zeros(hi - lo, dtype=np.float64)
        # Accumulate one neighbour column at a time: per node, additions
        # happen in stored neighbour order (the grid's offset order for
        # lattice graphs), independent of the block bounds.
        for col in range(self.graph.max_degree):
            idx = np.flatnonzero(mask[:, col])
            j = nbr[idx, col]
            total[idx] += self.pair[own[idx], state[j]]
        if self.include_self_interaction:
            total += self.pair[own, own]
        return total

    def block_imitate(
        self, state: np.ndarray, scores: np.ndarray, lo: int = 0, hi: int | None = None
    ) -> np.ndarray:
        """Next strategies of nodes ``[lo, hi)`` under imitate-the-best.

        A node switches only when some neighbour's score *strictly* beats
        its own; among equally-best neighbours it adopts the lowest
        strategy index (deterministic, the grid implementations' documented
        tie-break).  ``scores`` must be valid for the block's nodes and
        their neighbours.
        """
        hi = self.graph.n_nodes if hi is None else hi
        nbr = self.graph.nbr[lo:hi]
        mask = self.graph.nbr_mask[lo:hi]
        own = state[lo:hi]
        best = np.full(hi - lo, -np.inf)
        adopt = np.full(hi - lo, self.n_strategies, dtype=np.intp)
        for col in range(self.graph.max_degree):
            idx = np.flatnonzero(mask[:, col])
            j = nbr[idx, col]
            s = scores[j]
            st = state[j]
            improved = s > best[idx]
            tied = s == best[idx]
            up = idx[improved]
            best[up] = s[improved]
            adopt[up] = st[improved]
            eq = idx[tied]
            adopt[eq] = np.minimum(adopt[eq], st[tied])
        return np.where(best > scores[lo:hi], adopt, own)

    # -- whole-graph dynamics ------------------------------------------------

    def payoffs(self) -> np.ndarray:
        """Per-node total payoff of the current configuration."""
        return self.block_payoffs(self.state)

    def step(self) -> np.ndarray:
        """One synchronous imitate-the-best update; returns the new state."""
        scores = self.block_payoffs(self.state)
        self.state = self.block_imitate(self.state, scores)
        self.generation += 1
        return self.state

    def run(self, steps: int) -> list[np.ndarray]:
        """Advance ``steps`` generations; returns per-step strategy counts."""
        if steps < 0:
            raise GameError(f"steps must be non-negative, got {steps}")
        out = []
        for _ in range(steps):
            self.step()
            out.append(np.bincount(self.state, minlength=self.n_strategies))
        return out

    def counts(self) -> np.ndarray:
        """Nodes currently holding each strategy index."""
        return np.bincount(self.state, minlength=self.n_strategies)


class GraphIPD(GraphGame):
    """Memory-*n* iterated games on an interaction graph.

    The graph generalisation of :class:`~repro.spatial.spatial_ipd.
    SpatialIPD`: each node holds a roster strategy, plays an exact-Markov
    IPD against every neighbour, and imitates the best node it can see.
    On a lattice graph (:func:`~repro.spatial.graph.lattice_graph`) the
    trajectory is bit-identical to the grid implementation's.

    Parameters
    ----------
    graph:
        The topology.
    roster:
        ``(name, Strategy)`` pairs sharing one memory depth.
    state:
        Initial per-node roster indices.
    payoff, rounds, noise:
        Game parameters; pair payoffs use the exact Markov expectation, so
        the dynamics are deterministic (noise folds in analytically).
    """

    def __init__(
        self,
        graph: InteractionGraph,
        roster: list[tuple[str, Strategy]],
        state: np.ndarray,
        payoff: PayoffMatrix = PAPER_PAYOFFS,
        rounds: int = DEFAULT_ROUNDS,
        noise: NoiseModel = NO_NOISE,
    ) -> None:
        space, tables = check_roster(roster)
        pair = roster_pair_matrix(
            space, tables, payoff=payoff, rounds=rounds, noise=noise
        )
        super().__init__(graph, pair, state)
        self.roster = list(roster)
        self.space = space
        self.payoff_matrix = payoff
        self.rounds = rounds
        self.noise = noise

    def shares(self) -> dict[str, float]:
        """Fraction of nodes holding each roster strategy (plain floats)."""
        counts = self.counts()
        return {
            name: int(counts[idx]) / self.graph.n_nodes
            for idx, (name, _) in enumerate(self.roster)
        }


def graph_nowak_may(
    graph: InteractionGraph,
    b: float,
    state: np.ndarray,
    include_self_interaction: bool = True,
) -> GraphGame:
    """The Nowak-May one-shot spatial PD on an arbitrary topology.

    Strategy 0 cooperates, 1 defects; payoffs R=1, T=b, S=P=0 as in the
    1992 setting, so the pair matrix is ``[[1, 0], [b, 0]]``.  On a Moore
    lattice this plays the same game as :class:`~repro.spatial.nowak_may.
    NowakMayGame` (scores may differ in the last float bit because the grid
    implementation multiplies ``b`` by a cooperator *count* while this one
    sums per-neighbour payoffs; at temptations exactly representable in a
    few mantissa bits, e.g. ``b = 1.8125``, the two are bit-identical).
    """
    if b <= 1.0:
        raise ConfigError(f"temptation b must exceed R = 1, got {b}")
    pair = np.array([[1.0, 0.0], [float(b), 0.0]])
    return GraphGame(graph, pair, state, include_self_interaction=include_self_interaction)
