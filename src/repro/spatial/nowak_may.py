"""The Nowak-May spatial Prisoner's Dilemma (Nature 359, 1992).

The canonical spatial game the paper's ref [30] builds on: cooperators and
defectors on a lattice, each cell playing a one-shot PD with its
neighbourhood (and, in the classic setting, itself), then adopting the
strategy of the highest-scoring cell it can see.  One parameter matters —
the temptation ``b`` (payoffs R=1, T=b, S=P=0):

* ``b < 8/5``: defectors cannot expand; cooperation sweeps;
* ``1.8 < b < 2``: the famous regime — "dynamic fractals", endless
  coexistence with the cooperator fraction fluctuating around ~0.3;
* ``b > 2``: defection expands almost everywhere.

The update is fully deterministic and synchronous; ties go to the cell's
own current strategy (so a cell only switches when a neighbour *strictly*
beats everyone else it sees, matching the standard formulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.spatial.lattice import Lattice

__all__ = ["NowakMayGame"]


@dataclass
class NowakMayGame:
    """One-shot spatial PD with imitate-the-best updating.

    Parameters
    ----------
    lattice:
        The grid geometry (Moore neighbourhood for the classic results).
    b:
        Temptation payoff; R=1, S=P=0 as in Nowak-May.
    include_self_interaction:
        Whether each cell also plays itself (the original does).
    grid:
        Initial 0/1 (C/D) configuration.

    Examples
    --------
    >>> lat = Lattice(9, 9)
    >>> game = NowakMayGame(lat, b=1.9, grid=lat.single_defector_grid())
    >>> game.cooperation_fraction()
    0.9876543209876543
    """

    lattice: Lattice
    b: float
    grid: np.ndarray
    include_self_interaction: bool = True
    generation: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.b <= 1.0:
            raise ConfigError(f"temptation b must exceed R = 1, got {self.b}")
        arr = self.lattice.check_grid(self.grid).astype(np.uint8)
        if arr.size and arr.max() > 1:
            raise ConfigError("grid entries must be 0 (C) or 1 (D)")
        self.grid = arr.copy()

    # -- scoring ------------------------------------------------------------

    def payoffs(self) -> np.ndarray:
        """Per-cell total payoff of the current configuration.

        A cooperator earns 1 per cooperating co-player; a defector earns
        ``b`` per cooperating co-player; everything else pays 0.
        """
        coop = (self.grid == 0)
        neighbor_coop = self.lattice.neighbor_views(coop.astype(np.int64)).sum(axis=0)
        if self.include_self_interaction:
            neighbor_coop = neighbor_coop + coop  # playing oneself
        return np.where(coop, neighbor_coop.astype(np.float64), self.b * neighbor_coop)

    def step(self) -> np.ndarray:
        """One synchronous imitate-the-best update; returns the new grid."""
        scores = self.payoffs()
        neighbor_scores = self.lattice.neighbor_views(scores)
        neighbor_strats = self.lattice.neighbor_views(self.grid)
        best_neighbor = neighbor_scores.max(axis=0)
        # A cell switches only when some neighbour strictly beats it and
        # every equally-best neighbour plays the other strategy; with
        # deterministic scores it suffices to pick, among {self} ∪
        # neighbours, the maximum score with ties resolved toward self,
        # then toward cooperators (stable, documented choice).
        take_neighbor = best_neighbor > scores
        # Among neighbours achieving the maximum, prefer a cooperator.
        is_best = neighbor_scores == best_neighbor[None, :, :]
        any_coop_best = np.logical_and(is_best, neighbor_strats == 0).any(axis=0)
        adopted = np.where(any_coop_best, 0, 1).astype(np.uint8)
        self.grid = np.where(take_neighbor, adopted, self.grid).astype(np.uint8)
        self.generation += 1
        return self.grid

    def run(self, steps: int) -> list[float]:
        """Advance ``steps`` generations; returns the cooperation series."""
        if steps < 0:
            raise ConfigError(f"steps must be non-negative, got {steps}")
        series = []
        for _ in range(steps):
            self.step()
            series.append(self.cooperation_fraction())
        return series

    def cooperation_fraction(self) -> float:
        """Fraction of cells currently cooperating."""
        return float((self.grid == 0).mean())

    def render(self) -> str:
        """ASCII view: '.' cooperator, '#' defector."""
        return "\n".join(
            "".join("#" if v else "." for v in row) for row in self.grid
        )
