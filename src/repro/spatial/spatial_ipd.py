"""Spatial *iterated* PD: the paper's memory-n games on a lattice.

Where :mod:`repro.spatial.nowak_may` plays the classic one-shot game, this
variant puts the package's full machinery on the grid: each cell holds a
memory-*n* strategy from a roster, plays a 200-round IPD against each
neighbour (exact Markov expectation, with optional execution errors folded
in), and imitates the best-scoring cell in its neighbourhood.  Pair payoffs
are memoised per roster pair, so a whole-grid generation costs a handful of
expected-payoff evaluations regardless of lattice size.

The headline spatial result this reproduces: under noise, WSLS domains
expand against ALLD and TFT — the §III-E robustness story, spatially.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, GameError
from repro.game.engine import DEFAULT_ROUNDS
from repro.game.markov import expected_pair_payoffs
from repro.game.noise import NO_NOISE, NoiseModel
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.strategy import Strategy
from repro.spatial.lattice import Lattice
from repro.spatial.roster import assign_glyphs, check_roster, roster_pair_matrix

__all__ = ["SpatialIPD"]


@dataclass
class SpatialIPD:
    """Lattice of IPD strategies with imitate-the-best updating.

    Parameters
    ----------
    lattice:
        Grid geometry.
    roster:
        ``(name, Strategy)`` pairs; all must share one memory depth.  Cells
        hold roster indices.
    grid:
        Initial (rows, cols) array of roster indices.
    payoff, rounds, noise:
        Game parameters.  Pair payoffs use the exact Markov expectation, so
        the dynamics are deterministic (noise folds in analytically).
    """

    lattice: Lattice
    roster: list[tuple[str, Strategy]]
    grid: np.ndarray
    payoff: PayoffMatrix = field(default_factory=lambda: PAPER_PAYOFFS)
    rounds: int = DEFAULT_ROUNDS
    noise: NoiseModel = field(default_factory=lambda: NO_NOISE)
    generation: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.space, self.tables = check_roster(self.roster)
        arr = self.lattice.check_grid(self.grid).astype(np.intp)
        if arr.size and (arr.min() < 0 or arr.max() >= len(self.roster)):
            raise ConfigError("grid entries must index the roster")
        self.grid = arr.copy()
        # Pairwise payoff matrix over the roster, memoised lazily.
        k = len(self.roster)
        self._pair = np.full((k, k), np.nan)

    # -- pair payoffs -----------------------------------------------------------

    def _pair_payoff(self, i: int, j: int) -> float:
        """Expected payoff of roster strategy i against j (memoised)."""
        if np.isnan(self._pair[i, j]):
            ea, eb = expected_pair_payoffs(
                self.space,
                self.tables,
                np.array([i]),
                np.array([j]),
                payoff=self.payoff,
                rounds=self.rounds,
                noise=self.noise,
            )
            self._pair[i, j] = ea[0]
            self._pair[j, i] = eb[0]
        return float(self._pair[i, j])

    def pair_matrix(self) -> np.ndarray:
        """The full roster-vs-roster expected payoff matrix.

        Entries not already memoised by :meth:`_pair_payoff` come from one
        batched :func:`~repro.spatial.roster.roster_pair_matrix` call over
        the whole roster — bit-identical to the historical k**2 single-pair
        loop, without its k**2 trips through the Markov solver.
        """
        missing = np.isnan(self._pair)
        if missing.any():
            full = roster_pair_matrix(
                self.space,
                self.tables,
                payoff=self.payoff,
                rounds=self.rounds,
                noise=self.noise,
            )
            self._pair[missing] = full[missing]
        return self._pair.copy()

    # -- dynamics ---------------------------------------------------------------

    def payoffs(self) -> np.ndarray:
        """Per-cell total payoff against its neighbours."""
        pair = self.pair_matrix()
        neighbor_ids = self.lattice.neighbor_views(self.grid)
        total = np.zeros(self.grid.shape, dtype=np.float64)
        for k in range(self.lattice.n_neighbors):
            total += pair[self.grid, neighbor_ids[k]]
        return total

    def step(self) -> np.ndarray:
        """One synchronous imitate-the-best update."""
        scores = self.payoffs()
        neighbor_scores = self.lattice.neighbor_views(scores)
        neighbor_ids = self.lattice.neighbor_views(self.grid)
        best = neighbor_scores.max(axis=0)
        take = best > scores
        # Among best-scoring neighbours pick the one with the lowest
        # roster index (deterministic, documented tie-break).
        masked = np.where(neighbor_scores == best[None], neighbor_ids, len(self.roster))
        adopted = masked.min(axis=0)
        self.grid = np.where(take, adopted, self.grid).astype(np.intp)
        self.generation += 1
        return self.grid

    def run(self, steps: int) -> list[dict[str, float]]:
        """Advance ``steps`` generations; returns per-step roster shares."""
        if steps < 0:
            raise GameError(f"steps must be non-negative, got {steps}")
        out = []
        for _ in range(steps):
            self.step()
            out.append(self.shares())
        return out

    def shares(self) -> dict[str, float]:
        """Fraction of cells holding each roster strategy (plain floats).

        Values are builtin ``float``, not numpy scalars, so the dict is
        ``json.dumps``-able as-is (RunStore events, SSE payloads).
        """
        counts = np.bincount(self.grid.reshape(-1), minlength=len(self.roster))
        return {
            name: int(counts[idx]) / self.lattice.n_cells
            for idx, (name, _) in enumerate(self.roster)
        }

    def render(self) -> str:
        """ASCII view with one unique glyph per roster entry.

        Glyphs come from :func:`~repro.spatial.roster.assign_glyphs`, so
        rosters whose names share a first letter (``TFT`` vs ``TF2T``)
        stay distinguishable.
        """
        glyphs = assign_glyphs([name for name, _ in self.roster])
        return "\n".join("".join(glyphs[v] for v in row) for row in self.grid)
