"""Rank-partitioned spatial games: block decomposition plus halo exchange.

The graph's nodes are split into contiguous blocks, one per rank (the same
``divmod`` distribution the evolution runner uses for SSets).  Each rank
advances only its own block; the per-node quantities its block reads from
other ranks' nodes — boundary *strategies* before scoring, boundary
*scores* before imitation — arrive through two halo exchanges per
generation over the ordinary :class:`~repro.mpi.comm.Comm` point-to-point
API, so the same rank program runs unchanged on the thread, process/shm and
tcp transports.

Bit-identity with the single-rank reference is by construction, not luck:
the :class:`~repro.spatial.graph_game.GraphGame` kernels accumulate per
node in stored neighbour order regardless of which block they are asked
for, so a rank computing rows ``[lo, hi)`` produces exactly the bits the
reference produces for those rows.  The parity tests assert equality of
final states and per-step counts across 1, 2 and 3 ranks on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.mpi.comm import Comm
from repro.mpi.executor import run_spmd
from repro.spatial.graph import InteractionGraph
from repro.spatial.spec import SpatialRunSpec

__all__ = [
    "GraphBlocks",
    "HaloPlan",
    "build_halo_plan",
    "halo_exchange",
    "SpatialRunResult",
    "run_reference",
    "run_partitioned",
]

#: Point-to-point tags for the two per-generation exchanges.
STATE_TAG = 1
SCORE_TAG = 2


class GraphBlocks:
    """Contiguous block distribution of ``n_nodes`` over ``n_ranks``.

    The first ``n_nodes % n_ranks`` ranks get one extra node — the same
    deterministic split :class:`~repro.parallel.decomposition.
    SSetDecomposition` uses for populations, so placement reasoning carries
    over.
    """

    def __init__(self, n_nodes: int, n_ranks: int) -> None:
        if n_ranks < 1 or n_ranks > n_nodes:
            raise ConfigError(
                f"n_ranks must lie in [1, n_nodes={n_nodes}], got {n_ranks}"
            )
        self.n_nodes = n_nodes
        self.n_ranks = n_ranks
        base, extra = divmod(n_nodes, n_ranks)
        starts = [0]
        for r in range(n_ranks):
            starts.append(starts[-1] + base + (1 if r < extra else 0))
        self._starts = starts

    def bounds(self, rank: int) -> tuple[int, int]:
        """The half-open node range ``[lo, hi)`` owned by ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise ConfigError(f"rank must lie in [0, {self.n_ranks}), got {rank}")
        return self._starts[rank], self._starts[rank + 1]

    def owners(self) -> np.ndarray:
        """Per-node owning rank, shape ``(n_nodes,)``."""
        out = np.empty(self.n_nodes, dtype=np.intp)
        for r in range(self.n_ranks):
            lo, hi = self.bounds(r)
            out[lo:hi] = r
        return out


@dataclass(frozen=True)
class HaloPlan:
    """One rank's halo-exchange schedule.

    For every peer rank (sorted, so all ranks agree on traversal order)
    this names the owned boundary nodes whose values the peer reads
    (``send_ids``) and the peer's nodes this rank reads (``recv_ids``).
    Both sides derive the plan independently from the same graph, and each
    id list is sorted ascending — so the flat payload arrays line up
    without any negotiation.
    """

    rank: int
    send_ids: dict[int, np.ndarray]
    recv_ids: dict[int, np.ndarray]

    @property
    def peers(self) -> list[int]:
        """Neighbouring ranks, ascending."""
        return sorted(self.send_ids)


def build_halo_plan(graph: InteractionGraph, blocks: GraphBlocks, rank: int) -> HaloPlan:
    """Derive ``rank``'s halo schedule from the graph and the block split.

    A node is sent to a peer iff at least one of its neighbours lives in
    the peer's block; symmetry of the interaction graph makes the reverse
    direction the peer's mirror image, so ``send_ids`` here equals the
    peer's ``recv_ids`` for this rank entry-for-entry.
    """
    owners = blocks.owners()
    lo, hi = blocks.bounds(rank)
    send: dict[int, set[int]] = {}
    recv: dict[int, set[int]] = {}
    for node in range(lo, hi):
        for j in graph.neighbors(node):
            owner = int(owners[j])
            if owner != rank:
                send.setdefault(owner, set()).add(node)
                recv.setdefault(owner, set()).add(int(j))
    return HaloPlan(
        rank=rank,
        send_ids={p: np.array(sorted(ids), dtype=np.intp) for p, ids in send.items()},
        recv_ids={p: np.array(sorted(ids), dtype=np.intp) for p, ids in recv.items()},
    )


def halo_exchange(comm: Comm, plan: HaloPlan, values: np.ndarray, tag: int) -> None:
    """Refresh this rank's ghost entries of ``values`` in place.

    Sends the owned boundary slice to every peer, then fills the ghost
    slots from the peers' matching sends.  Sends are posted non-blocking
    before any receive, so the exchange cannot deadlock regardless of peer
    ordering; per-peer payloads are dense arrays in the plan's agreed
    (sorted-id) order.
    """
    requests = [
        comm.isend(values[plan.send_ids[p]].copy(), dest=p, tag=tag)
        for p in plan.peers
    ]
    for p in plan.peers:
        values[plan.recv_ids[p]] = comm.recv(source=p, tag=tag)
    for req in requests:
        req.wait()


@dataclass(frozen=True)
class SpatialRunResult:
    """Outcome of a spatial run, shaped for the RunStore result contract.

    ``matrix`` is the final strategy configuration — ``(rows, cols)`` for
    lattice topologies, ``(n_nodes,)`` otherwise.  ``history`` holds the
    per-generation strategy counts (plain ints, JSON-safe).  The
    ``n_pc_events``/``n_mutations`` fields exist because
    :meth:`~repro.io.runstore.RunStore.save_result` stores one summary
    schema for every run family; spatial dynamics have no Nature phase, so
    both are zero.
    """

    matrix: np.ndarray
    names: tuple[str, ...]
    history: list[list[int]]
    generation: int
    n_adoptions: int
    n_pc_events: int = 0
    n_mutations: int = 0

    def counts(self) -> list[int]:
        """Final per-strategy node counts."""
        arr = np.bincount(self.matrix.reshape(-1), minlength=len(self.names))
        return [int(c) for c in arr]

    def shares(self) -> dict[str, float]:
        """Final per-strategy shares (plain floats, ``json.dumps``-able)."""
        n = self.matrix.size
        return {name: c / n for name, c in zip(self.names, self.counts())}


def _as_result(spec: SpatialRunSpec, state: np.ndarray, history: list, adoptions: int) -> SpatialRunResult:
    matrix = state
    if spec.graph.kind == "lattice":
        matrix = state.reshape(spec.graph.params["rows"], spec.graph.params["cols"])
    return SpatialRunResult(
        matrix=matrix,
        names=spec.strategy_names(),
        history=[[int(c) for c in counts] for counts in history],
        generation=spec.steps,
        n_adoptions=int(adoptions),
    )


def run_reference(spec: SpatialRunSpec) -> SpatialRunResult:
    """The single-process reference run (no Comm, no partitioning)."""
    game = spec.build_game()
    history = []
    adoptions = 0
    for _ in range(spec.steps):
        before = game.state.copy()
        game.step()
        adoptions += int(np.count_nonzero(game.state != before))
        history.append(game.counts())
    return _as_result(spec, game.state, history, adoptions)


def _spatial_rank_program(comm: Comm, spec_dict: dict):
    """One rank of a partitioned spatial run (module-level: must pickle).

    Every rank rebuilds the full graph, pair matrix and initial state from
    the spec (all deterministic), then owns one contiguous node block.  Per
    generation: refresh ghost strategies, score the owned block, refresh
    ghost scores, imitate on the owned block.  Rank 0 accumulates the
    per-generation global counts via a reduce and gathers the final blocks.
    """
    spec = SpatialRunSpec.from_dict(spec_dict)
    game = spec.build_game()
    graph = game.graph
    blocks = GraphBlocks(graph.n_nodes, comm.size)
    lo, hi = blocks.bounds(comm.rank)
    plan = build_halo_plan(graph, blocks, comm.rank)

    # Full-length working arrays; only the owned block plus the ghost
    # entries named by the plan are ever kept current.
    state = game.state.copy()
    scores = np.zeros(graph.n_nodes, dtype=np.float64)
    history = []
    adoptions = 0
    for _ in range(spec.steps):
        halo_exchange(comm, plan, state, STATE_TAG)
        scores[lo:hi] = game.block_payoffs(state, lo, hi)
        halo_exchange(comm, plan, scores, SCORE_TAG)
        new_block = game.block_imitate(state, scores, lo, hi)
        adoptions += int(np.count_nonzero(new_block != state[lo:hi]))
        state[lo:hi] = new_block
        local = np.bincount(state[lo:hi], minlength=game.n_strategies)
        counts = comm.reduce(local, root=0)
        if comm.rank == 0:
            history.append(counts)

    final_blocks = comm.gather(state[lo:hi], root=0)
    total_adoptions = comm.reduce(adoptions, root=0)
    if comm.rank != 0:
        return None
    return {
        "state": np.concatenate(final_blocks),
        "history": history,
        "adoptions": total_adoptions,
    }


def run_partitioned(spec: SpatialRunSpec) -> SpatialRunResult:
    """Run ``spec`` block-partitioned over its ranks and backend.

    ``n_ranks = 1`` short-circuits to :func:`run_reference`; larger worlds
    go through :func:`~repro.mpi.executor.run_spmd` on the spec's backend.
    Either way the returned state and counts are bit-identical to the
    reference — that is the module's contract, enforced by the parity
    tests.
    """
    if spec.n_ranks == 1:
        return run_reference(spec)
    result = run_spmd(
        spec.n_ranks,
        _spatial_rank_program,
        (spec.to_dict(),),
        backend=spec.backend,
        timeout=spec.attempt_timeout,
    )
    payload = result.returns[0]
    return _as_result(spec, payload["state"], payload["history"], payload["adoptions"])
