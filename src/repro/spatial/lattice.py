"""2-D lattices for spatial game dynamics.

The paper takes its learning/mutation phase from the spatialised
Prisoner's Dilemma literature (ref [30]); this subpackage implements that
substrate: populations living on a grid, interacting with neighbours.
:class:`Lattice` provides the geometry — neighbourhood offsets, periodic
wrapping, and vectorised neighbour views built from ``np.roll``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["Lattice", "MOORE", "VON_NEUMANN"]

#: The eight surrounding cells.
MOORE = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)

#: The four orthogonal cells.
VON_NEUMANN = ((-1, 0), (0, -1), (0, 1), (1, 0))


@dataclass(frozen=True)
class Lattice:
    """A rows x cols grid with a fixed neighbourhood and periodic edges.

    Parameters
    ----------
    rows, cols:
        Grid extents (>= 3 each so neighbourhoods don't self-overlap).
    neighborhood:
        ``"moore"`` (8 neighbours, the Nowak-May setting) or
        ``"von_neumann"`` (4 neighbours).
    """

    rows: int
    cols: int
    neighborhood: str = "moore"

    def __post_init__(self) -> None:
        if self.rows < 3 or self.cols < 3:
            raise ConfigError(f"lattice must be at least 3x3, got {self.rows}x{self.cols}")
        if self.neighborhood not in ("moore", "von_neumann"):
            raise ConfigError(
                f"neighborhood must be 'moore' or 'von_neumann', got {self.neighborhood!r}"
            )

    @property
    def offsets(self) -> tuple[tuple[int, int], ...]:
        """Relative (dr, dc) positions of the neighbours."""
        return MOORE if self.neighborhood == "moore" else VON_NEUMANN

    @property
    def n_neighbors(self) -> int:
        """Neighbours per cell."""
        return len(self.offsets)

    @property
    def n_cells(self) -> int:
        """Total cells."""
        return self.rows * self.cols

    def check_grid(self, grid: np.ndarray) -> np.ndarray:
        """Validate a per-cell array's shape."""
        arr = np.asarray(grid)
        if arr.shape != (self.rows, self.cols):
            raise ConfigError(
                f"grid must be ({self.rows}, {self.cols}), got {arr.shape}"
            )
        return arr

    def neighbor_views(self, grid: np.ndarray) -> np.ndarray:
        """Stack of the grid as seen shifted to each neighbour offset.

        Returns shape ``(n_neighbors, rows, cols)``: entry ``[k, r, c]`` is
        the value held by the ``k``-th neighbour of cell ``(r, c)``
        (periodic wrap).
        """
        arr = self.check_grid(grid)
        return np.stack(
            [np.roll(arr, shift=(-dr, -dc), axis=(0, 1)) for dr, dc in self.offsets]
        )

    def random_grid(self, rng: np.random.Generator, p_defect: float = 0.5) -> np.ndarray:
        """Random 0/1 (C/D) grid with defector density ``p_defect``."""
        if not 0.0 <= p_defect <= 1.0:
            raise ConfigError(f"p_defect must lie in [0, 1], got {p_defect}")
        return (rng.random((self.rows, self.cols)) < p_defect).astype(np.uint8)

    def single_defector_grid(self) -> np.ndarray:
        """All cooperators with one defector at the centre (the classic seed)."""
        grid = np.zeros((self.rows, self.cols), dtype=np.uint8)
        grid[self.rows // 2, self.cols // 2] = 1
        return grid
