"""Declarative spatial run specifications.

A :class:`SpatialRunSpec` is the structured-population sibling of
:class:`~repro.parallel.spec.RunSpec`: one JSON-safe value object naming a
topology (:class:`~repro.spatial.graph.GraphSpec`), a game family (the
memory-*n* iterated games or the one-shot Nowak-May PD), the initial
configuration, and the substrate (rank count, backend).  Its dict form
carries ``kind: "spatial"`` so :func:`~repro.parallel.spec.spec_from_dict`
can revive either family from the same stored ``spec.json`` — which is what
lets the run service queue and persist spatial runs through the exact
machinery built for evolution runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import ClassVar, Mapping

import numpy as np

from repro.errors import ConfigError
from repro.game.engine import DEFAULT_ROUNDS
from repro.game.noise import NoiseModel
from repro.game.strategy import NAMED_STRATEGIES, named_strategy
from repro.parallel.spec import FaultPolicy
from repro.spatial.graph import GraphSpec
from repro.spatial.graph_game import GraphGame, GraphIPD, graph_nowak_may

__all__ = ["SpatialRunSpec"]

_BACKENDS = ("thread", "process", "tcp")
_GAMES = ("ipd", "nowak_may")
_INITS = ("random", "single_defector")


@dataclass(frozen=True)
class SpatialRunSpec:
    """A complete, declarative description of one spatial run.

    Parameters
    ----------
    graph:
        The interaction topology, as a buildable :class:`GraphSpec`.
    game:
        ``"ipd"`` (memory-*n* iterated games over ``roster``) or
        ``"nowak_may"`` (the one-shot spatial PD at temptation ``b``).
    roster:
        Strategy names for the ``ipd`` game (see
        :func:`~repro.game.strategy.named_strategy`); ignored by
        ``nowak_may``, whose roster is always ``("C", "D")``.
    memory:
        Memory depth the roster strategies are instantiated at.
    rounds, noise_rate:
        IPD game length and execution-error rate (exact-Markov pricing, so
        noise folds in analytically and the dynamics stay deterministic).
    b:
        Nowak-May temptation payoff (> 1); ignored by ``ipd``.
    init:
        ``"random"`` (seeded uniform draw over the roster) or
        ``"single_defector"`` (all nodes hold the first roster entry except
        the centre node, which holds the last — the classic NM seeding).
    seed:
        Seed for both graph construction and the initial configuration.
    steps:
        Generations to run.
    n_ranks, backend:
        Execution substrate; ``n_ranks = 1`` is the single-rank reference,
        larger worlds block-partition the graph with halo exchange
        (:mod:`repro.spatial.parallel`), bit-identical by construction.
    attempt_timeout:
        Per-attempt deadline in seconds (``None`` waits forever).
    fault:
        Service-level :class:`~repro.parallel.spec.FaultPolicy` (the queue
        reads ``max_requeues``; spatial runs have no supervisor restarts).
    name:
        Free-form label (shown by the service; no semantics).
    """

    #: Discriminator for :func:`~repro.parallel.spec.spec_from_dict`.
    kind: ClassVar[str] = "spatial"

    graph: GraphSpec
    game: str = "ipd"
    roster: tuple[str, ...] = ("WSLS", "TFT", "ALLD")
    memory: int = 1
    rounds: int = DEFAULT_ROUNDS
    noise_rate: float = 0.0
    b: float = 1.8125
    init: str = "random"
    seed: int = 0
    steps: int = 50
    n_ranks: int = 1
    backend: str = "thread"
    attempt_timeout: float | None = 600.0
    fault: FaultPolicy = field(default_factory=FaultPolicy)
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.graph, GraphSpec):
            raise ConfigError(
                f"graph must be a GraphSpec, got {type(self.graph).__name__}"
            )
        if self.game not in _GAMES:
            raise ConfigError(f"game must be one of {_GAMES}, got {self.game!r}")
        object.__setattr__(self, "roster", tuple(self.roster))
        if self.game == "ipd":
            if not self.roster:
                raise ConfigError("an ipd spec needs a non-empty roster")
            unknown = [n for n in self.roster if n not in NAMED_STRATEGIES]
            if unknown:
                raise ConfigError(
                    f"unknown roster strategies {unknown};"
                    f" known names: {NAMED_STRATEGIES}"
                )
        if self.memory < 1:
            raise ConfigError(f"memory must be >= 1, got {self.memory}")
        if self.rounds < 1:
            raise ConfigError(f"rounds must be >= 1, got {self.rounds}")
        NoiseModel(self.noise_rate)  # range-checks the rate
        if self.game == "nowak_may" and self.b <= 1.0:
            raise ConfigError(f"temptation b must exceed 1, got {self.b}")
        if self.init not in _INITS:
            raise ConfigError(f"init must be one of {_INITS}, got {self.init!r}")
        if self.steps < 0:
            raise ConfigError(f"steps must be >= 0, got {self.steps}")
        n_nodes = self.graph.n_nodes
        if not 1 <= self.n_ranks <= n_nodes:
            raise ConfigError(
                f"n_ranks must lie in [1, n_nodes={n_nodes}], got {self.n_ranks}"
            )
        if self.backend not in _BACKENDS:
            raise ConfigError(f"backend must be one of {_BACKENDS}, got {self.backend!r}")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ConfigError(
                f"attempt_timeout must be > 0 or None, got {self.attempt_timeout}"
            )
        if not isinstance(self.fault, FaultPolicy):
            raise ConfigError(
                f"fault must be a FaultPolicy, got {type(self.fault).__name__}"
            )

    def with_updates(self, **changes: object) -> "SpatialRunSpec":
        """Return a copy with the given fields replaced (validated anew)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """Flatten the spec into JSON-safe primitives (no pickle)."""
        return {
            "kind": "spatial",
            "graph": self.graph.to_dict(),
            "game": self.game,
            "roster": list(self.roster),
            "memory": self.memory,
            "rounds": self.rounds,
            "noise_rate": self.noise_rate,
            "b": self.b,
            "init": self.init,
            "seed": self.seed,
            "steps": self.steps,
            "n_ranks": self.n_ranks,
            "backend": self.backend,
            "attempt_timeout": self.attempt_timeout,
            "fault": self.fault.to_dict(),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpatialRunSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected, values validated)."""
        kwargs = dict(data)
        kind = kwargs.pop("kind", "spatial")
        if kind != "spatial":
            raise ConfigError(
                f"SpatialRunSpec.from_dict only reads kind='spatial' specs, got {kind!r}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(kwargs) - known
        if unknown:
            raise ConfigError(f"unknown SpatialRunSpec fields: {sorted(unknown)}")
        if "graph" not in kwargs:
            raise ConfigError("a SpatialRunSpec dict needs a 'graph' section")
        kwargs["graph"] = GraphSpec.from_dict(kwargs["graph"])
        if "roster" in kwargs:
            kwargs["roster"] = tuple(kwargs["roster"])
        if kwargs.get("fault") is not None:
            kwargs["fault"] = FaultPolicy.from_dict(kwargs["fault"])
        else:
            kwargs.pop("fault", None)
        return cls(**kwargs)

    # -- materialisation -----------------------------------------------------

    def strategy_names(self) -> tuple[str, ...]:
        """Labels for the per-strategy share/count vectors this spec yields."""
        return self.roster if self.game == "ipd" else ("C", "D")

    def initial_state(self) -> np.ndarray:
        """The seeded initial per-node strategy indices."""
        n = self.graph.n_nodes
        k = len(self.strategy_names())
        if self.init == "random":
            rng = np.random.default_rng(self.seed)
            return rng.integers(0, k, size=n).astype(np.intp)
        state = np.zeros(n, dtype=np.intp)
        state[n // 2] = k - 1
        return state

    def build_game(self) -> GraphGame:
        """Materialise the spec: build the graph, seed the state, price the game.

        Deterministic — every rank of a partitioned run calls this and gets
        the same graph, the same initial state, and the same pair matrix.
        """
        graph = self.graph.build()
        state = self.initial_state()
        if self.game == "nowak_may":
            return graph_nowak_may(graph, self.b, state)
        roster = [(n, named_strategy(n, memory=self.memory)) for n in self.roster]
        return GraphIPD(
            graph, roster, state, rounds=self.rounds, noise=NoiseModel(self.noise_rate)
        )
