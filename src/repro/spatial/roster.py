"""Roster plumbing shared by the grid and graph spatial games.

A *roster* is the list of ``(name, Strategy)`` pairs a structured
population draws its cells from.  Both :class:`~repro.spatial.spatial_ipd.
SpatialIPD` (the ``np.roll`` grid) and :class:`~repro.spatial.graph_game.
GraphIPD` (arbitrary interaction graphs) validate rosters the same way,
price them with the same exact-Markov pair payoffs, and render them with
the same glyph assignment — so that logic lives here once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.game.markov import expected_pair_payoffs
from repro.game.noise import NoiseModel
from repro.game.payoff import PayoffMatrix
from repro.game.states import StateSpace
from repro.game.strategy import Strategy

__all__ = ["check_roster", "roster_pair_matrix", "assign_glyphs"]

#: Glyphs handed out when every character of a roster name is taken.
FALLBACK_GLYPHS = "abcdefghijklmnopqrstuvwxyz0123456789"


def check_roster(roster: list[tuple[str, Strategy]]) -> tuple[StateSpace, np.ndarray]:
    """Validate a roster; returns its shared state space and table matrix.

    Names must be unique and every strategy must share one memory depth
    (cells hold roster indices, so a mixed-depth roster would have no
    single pair-payoff chain).
    """
    if len(roster) < 1:
        raise ConfigError("roster must not be empty")
    names = [n for n, _ in roster]
    if len(set(names)) != len(names):
        raise ConfigError(f"roster names must be unique, got {names}")
    spaces = {s.space for _, s in roster}
    if len(spaces) != 1:
        raise ConfigError("roster strategies must share one memory depth")
    space = next(iter(spaces))
    tables = np.vstack([np.asarray(s.table, dtype=np.float64) for _, s in roster])
    return space, tables


def roster_pair_matrix(
    space: StateSpace,
    tables: np.ndarray,
    *,
    payoff: PayoffMatrix,
    rounds: int,
    noise: NoiseModel,
) -> np.ndarray:
    """The full roster-vs-roster expected-payoff matrix in one batched call.

    One :func:`~repro.game.markov.expected_pair_payoffs` evaluation over the
    ``k(k+1)/2`` unordered pairs prices the whole ``k x k`` matrix (each
    pair yields both directions), replacing the historical ``k**2``
    single-pair calls without changing a single bit of the result: entry
    ``[i, j]`` with ``i <= j`` is player A's expectation of pair ``(i, j)``
    and entry ``[j, i]`` player B's, exactly the values the memoised
    per-pair path produced.
    """
    k = tables.shape[0]
    iu, ju = np.triu_indices(k)
    ea, eb = expected_pair_payoffs(
        space, tables, iu, ju, payoff=payoff, rounds=rounds, noise=noise
    )
    pair = np.empty((k, k), dtype=np.float64)
    # Assignment order matters on the diagonal: the per-pair path stored
    # ea then overwrote with eb for i == j, so eb wins here too.
    pair[iu, ju] = ea
    pair[ju, iu] = eb
    return pair


def assign_glyphs(names: list[str]) -> list[str]:
    """One unique render glyph per roster name, deterministically.

    Each name gets the first character of its lowercased spelling that no
    earlier name claimed; when every character of the name is taken the
    glyph comes from a fixed fallback alphabet.  (Keying on the first
    letter alone aliased rosters like ``("TFT", "TF2T")`` into one glyph.)
    """
    used: set[str] = set()
    glyphs: list[str] = []
    for name in names:
        candidates = [c for c in name.lower() if not c.isspace()]
        candidates += [c for c in FALLBACK_GLYPHS]
        for c in candidates:
            if c not in used:
                used.add(c)
                glyphs.append(c)
                break
        else:
            raise ConfigError(
                f"cannot assign a unique glyph to {name!r}:"
                f" all {len(used)} candidate glyphs are taken"
            )
    return glyphs
