"""Interaction graphs: who plays whom, beyond the lattice.

ROADMAP item 3 asks for structure as a first-class citizen: the spatial-PD
literature the paper's learning phase descends from (ref [30]) studies not
just grids but small-world and scale-free contact structures, and which
strategies win depends on the topology.  This module provides that
substrate as one value type:

* :class:`InteractionGraph` — an undirected simple graph in CSR form
  (``indptr``/``indices``), with a padded dense neighbour view used by the
  vectorised game kernels and the halo arithmetic used by the
  rank-partitioned runner (:mod:`repro.spatial.parallel`).
* Seeded constructors — :func:`lattice_graph` (the classic torus, neighbour
  order matching :class:`~repro.spatial.lattice.Lattice` offsets),
  :func:`watts_strogatz_graph` (small world) and
  :func:`barabasi_albert_graph` (scale free).
* :class:`GraphSpec` — a JSON-serialisable description (kind, parameters,
  seed) that builds the same graph on every rank, which is what lets a
  partitioned run construct its topology without shipping edge lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import ConfigError
from repro.spatial.lattice import Lattice

__all__ = [
    "InteractionGraph",
    "GraphSpec",
    "GRAPH_KINDS",
    "lattice_graph",
    "watts_strogatz_graph",
    "barabasi_albert_graph",
]

#: The topology families :class:`GraphSpec` knows how to build.
GRAPH_KINDS = ("lattice", "small_world", "scale_free")


class InteractionGraph:
    """An undirected simple graph in CSR form.

    Parameters
    ----------
    indptr:
        ``(n_nodes + 1,)`` row pointers; node ``i``'s neighbours are
        ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        Flat neighbour ids.  Every edge must appear in both directions and
        no node may neighbour itself; neighbour *order* within a row is
        preserved (the game kernels accumulate payoffs in that order, so it
        is part of the graph's bit-level identity).

    The padded dense view (:attr:`nbr`, :attr:`nbr_mask`) is precomputed:
    ``nbr[i, c]`` is node ``i``'s ``c``-th neighbour (or ``-1`` beyond its
    degree), which lets the kernels process any node subset with identical
    per-node arithmetic — the property the rank-partitioned runner's
    bit-parity rests on.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.intp)
        indices = np.asarray(indices, dtype=np.intp)
        if indptr.ndim != 1 or indptr.size < 2 or indices.ndim != 1:
            raise ConfigError("indptr must be 1-D with >= 2 entries, indices 1-D")
        if indptr[0] != 0 or indptr[-1] != indices.size or np.any(np.diff(indptr) < 0):
            raise ConfigError("indptr must rise monotonically from 0 to len(indices)")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ConfigError(f"neighbour ids must lie in [0, {n})")
        self.indptr = indptr
        self.indices = indices
        self.n_nodes = n
        self.degrees = np.diff(indptr)
        self._check_simple_symmetric()
        self.max_degree = int(self.degrees.max()) if n else 0
        # Padded dense neighbour view: -1 beyond each node's degree.
        nbr = np.full((n, self.max_degree), -1, dtype=np.intp)
        for i in range(n):
            row = indices[indptr[i]:indptr[i + 1]]
            nbr[i, : row.size] = row
        self.nbr = nbr
        self.nbr_mask = nbr >= 0

    def _check_simple_symmetric(self) -> None:
        rows = np.repeat(np.arange(self.n_nodes), self.degrees)
        if np.any(rows == self.indices):
            raise ConfigError("self-loops are not allowed")
        fwd = {*zip(rows.tolist(), self.indices.tolist())}
        if len(fwd) != self.indices.size:
            raise ConfigError("duplicate edges are not allowed")
        if any((j, i) not in fwd for i, j in fwd):
            raise ConfigError("the graph must be undirected (every edge in both directions)")

    @property
    def n_edges(self) -> int:
        """Undirected edge count."""
        return self.indices.size // 2

    def neighbors(self, node: int) -> np.ndarray:
        """Node ``node``'s neighbour ids, in stored order."""
        if not 0 <= node < self.n_nodes:
            raise ConfigError(f"node {node} out of range [0, {self.n_nodes})")
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    @classmethod
    def from_edges(cls, n_nodes: int, edges) -> "InteractionGraph":
        """Build from an iterable of undirected ``(i, j)`` pairs.

        Each pair is inserted in both directions; neighbour lists come out
        sorted ascending (a canonical order for generated topologies).
        """
        if n_nodes < 1:
            raise ConfigError(f"n_nodes must be >= 1, got {n_nodes}")
        adj: list[set[int]] = [set() for _ in range(n_nodes)]
        for i, j in edges:
            i, j = int(i), int(j)
            if i == j:
                raise ConfigError(f"self-loop on node {i}")
            if not (0 <= i < n_nodes and 0 <= j < n_nodes):
                raise ConfigError(f"edge ({i}, {j}) out of range [0, {n_nodes})")
            adj[i].add(j)
            adj[j].add(i)
        indptr = np.zeros(n_nodes + 1, dtype=np.intp)
        for i, nbrs in enumerate(adj):
            indptr[i + 1] = indptr[i] + len(nbrs)
        indices = np.empty(int(indptr[-1]), dtype=np.intp)
        for i, nbrs in enumerate(adj):
            indices[indptr[i]:indptr[i + 1]] = sorted(nbrs)
        return cls(indptr, indices)

    # -- partition accounting ------------------------------------------------

    def edge_cut(self, owners: np.ndarray) -> int:
        """Undirected edges whose endpoints live on different owners."""
        owners = self._check_owners(owners)
        rows = np.repeat(np.arange(self.n_nodes), self.degrees)
        return int(np.sum(owners[rows] != owners[self.indices]) // 2)

    def halo_counts(self, owners: np.ndarray) -> dict[tuple[int, int], int]:
        """Boundary *nodes* each owner must ship to each other owner.

        ``result[(a, b)]`` is the number of distinct nodes owned by ``a``
        that some node of ``b`` neighbours — exactly the per-exchange
        message payload of the halo protocol (a boundary node's value is
        sent once per neighbouring partition, not once per cut edge).
        Feeds :meth:`repro.machine.torus.TorusNetwork.partition_traffic`.
        """
        owners = self._check_owners(owners)
        rows = np.repeat(np.arange(self.n_nodes), self.degrees)
        cross = owners[rows] != owners[self.indices]
        # (sender node, receiving owner) pairs, deduplicated.
        pairs = {
            (int(node), int(owners[nbr]))
            for node, nbr in zip(rows[cross].tolist(), self.indices[cross].tolist())
        }
        counts: dict[tuple[int, int], int] = {}
        for node, dst in pairs:
            key = (int(owners[node]), dst)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def _check_owners(self, owners: np.ndarray) -> np.ndarray:
        owners = np.asarray(owners, dtype=np.intp)
        if owners.shape != (self.n_nodes,):
            raise ConfigError(
                f"owners must have shape ({self.n_nodes},), got {owners.shape}"
            )
        return owners

    def __repr__(self) -> str:
        return f"InteractionGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"


# -- constructors --------------------------------------------------------------


def lattice_graph(lattice: Lattice) -> InteractionGraph:
    """The lattice as a graph: node ``r * cols + c`` is cell ``(r, c)``.

    Neighbour order within each row follows the lattice's offset order, so
    a game on this graph accumulates payoffs in exactly the order the
    ``np.roll`` grid implementation does — the bit-parity bridge between
    :class:`~repro.spatial.spatial_ipd.SpatialIPD` and
    :class:`~repro.spatial.graph_game.GraphIPD`.
    """
    rows, cols = lattice.rows, lattice.cols
    n = lattice.n_cells
    deg = lattice.n_neighbors
    indptr = np.arange(0, n * deg + 1, deg, dtype=np.intp)
    indices = np.empty(n * deg, dtype=np.intp)
    r = np.repeat(np.arange(rows), cols)
    c = np.tile(np.arange(cols), rows)
    for k, (dr, dc) in enumerate(lattice.offsets):
        indices[k::deg] = ((r + dr) % rows) * cols + (c + dc) % cols
    return InteractionGraph(indptr, indices)


def watts_strogatz_graph(n: int, k: int, p: float, seed: int) -> InteractionGraph:
    """A Watts-Strogatz small-world graph: ring lattice plus rewiring.

    ``n`` nodes on a ring, each joined to its ``k // 2`` nearest neighbours
    on either side; each ring edge ``(i, i + j)`` is then rewired with
    probability ``p`` to ``(i, random)``, avoiding self-loops and duplicate
    edges (the standard construction).  Deterministic in ``seed``.
    """
    if k < 2 or k % 2 != 0:
        raise ConfigError(f"k must be a positive even degree, got {k}")
    if n <= k:
        raise ConfigError(f"need n > k, got n={n}, k={k}")
    if not 0.0 <= p <= 1.0:
        raise ConfigError(f"rewiring probability must lie in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    adj: list[set[int]] = [set() for _ in range(n)]
    for j in range(1, k // 2 + 1):
        for i in range(n):
            adj[i].add((i + j) % n)
            adj[(i + j) % n].add(i)
    for j in range(1, k // 2 + 1):
        for i in range(n):
            old = (i + j) % n
            if rng.random() >= p:
                continue
            # A node joined to everyone else has nowhere to rewire to.
            if len(adj[i]) >= n - 1:
                continue
            new = int(rng.integers(n))
            while new == i or new in adj[i]:
                new = int(rng.integers(n))
            adj[i].discard(old)
            adj[old].discard(i)
            adj[i].add(new)
            adj[new].add(i)
    return InteractionGraph.from_edges(
        n, ((i, j) for i in range(n) for j in adj[i] if i < j)
    )


def barabasi_albert_graph(n: int, m: int, seed: int) -> InteractionGraph:
    """A Barabási-Albert scale-free graph via preferential attachment.

    Starts from a star on ``m + 1`` nodes; each subsequent node attaches to
    ``m`` distinct existing nodes chosen with probability proportional to
    their degree (the repeated-endpoints urn).  Deterministic in ``seed``.
    """
    if m < 1:
        raise ConfigError(f"m must be >= 1, got {m}")
    if n <= m:
        raise ConfigError(f"need n > m, got n={n}, m={m}")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = [(i, m) for i in range(m)]
    # The urn holds one copy of each edge endpoint: degree-proportional draws.
    urn: list[int] = [v for e in edges for v in e]
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(int(urn[int(rng.integers(len(urn)))]))
        for t in sorted(targets):
            edges.append((t, new))
            urn.extend((t, new))
    return InteractionGraph.from_edges(n, edges)


# -- the declarative form ------------------------------------------------------

_PARAM_SPECS: dict[str, dict[str, object]] = {
    "lattice": {"rows": 10, "cols": 10, "neighborhood": "moore"},
    "small_world": {"n": 100, "k": 8, "p": 0.1},
    "scale_free": {"n": 100, "m": 4},
}


@dataclass(frozen=True)
class GraphSpec:
    """A seeded, JSON-serialisable recipe for one interaction graph.

    Parameters
    ----------
    kind:
        One of :data:`GRAPH_KINDS`.
    params:
        Kind-specific parameters (unknown keys rejected):
        ``lattice`` takes ``rows``/``cols``/``neighborhood``;
        ``small_world`` takes ``n``/``k``/``p``;
        ``scale_free`` takes ``n``/``m``.
    seed:
        Generator seed for the randomised kinds (ignored by ``lattice``).

    Two equal specs build bit-identical graphs on any machine — the
    property the rank-partitioned runner relies on to construct its
    topology locally on every rank.
    """

    kind: str
    params: dict = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in GRAPH_KINDS:
            raise ConfigError(f"kind must be one of {GRAPH_KINDS}, got {self.kind!r}")
        defaults = _PARAM_SPECS[self.kind]
        unknown = set(self.params) - set(defaults)
        if unknown:
            raise ConfigError(
                f"unknown {self.kind} parameters: {sorted(unknown)}"
                f" (valid: {sorted(defaults)})"
            )
        merged = {**defaults, **dict(self.params)}
        object.__setattr__(self, "params", merged)
        self._validate_params()

    def _validate_params(self) -> None:
        """Validate parameters without paying for a build."""
        p = self.params
        if self.kind == "lattice":
            Lattice(int(p["rows"]), int(p["cols"]), str(p["neighborhood"]))
        elif self.kind == "small_world":
            n, k, prob = int(p["n"]), int(p["k"]), float(p["p"])
            if k < 2 or k % 2 != 0 or n <= k or not 0.0 <= prob <= 1.0:
                raise ConfigError(
                    f"small_world needs even k >= 2 < n and p in [0, 1],"
                    f" got n={n}, k={k}, p={prob}"
                )
        else:
            n, m = int(p["n"]), int(p["m"])
            if m < 1 or n <= m:
                raise ConfigError(f"scale_free needs 1 <= m < n, got n={n}, m={m}")

    @property
    def n_nodes(self) -> int:
        """Node count, computable without building."""
        p = self.params
        if self.kind == "lattice":
            return int(p["rows"]) * int(p["cols"])
        return int(p["n"])

    def build(self) -> InteractionGraph:
        """Construct the graph (bit-identical for equal specs)."""
        p = self.params
        if self.kind == "lattice":
            return lattice_graph(
                Lattice(int(p["rows"]), int(p["cols"]), str(p["neighborhood"]))
            )
        if self.kind == "small_world":
            return watts_strogatz_graph(int(p["n"]), int(p["k"]), float(p["p"]), self.seed)
        return barabasi_albert_graph(int(p["n"]), int(p["m"]), self.seed)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {"kind": self.kind, "params": dict(self.params), "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Mapping) -> "GraphSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        unknown = set(data) - {"kind", "params", "seed"}
        if unknown:
            raise ConfigError(f"unknown GraphSpec fields: {sorted(unknown)}")
        if "kind" not in data:
            raise ConfigError("a GraphSpec dict needs a 'kind'")
        return cls(
            kind=data["kind"],
            params=dict(data.get("params") or {}),
            seed=int(data.get("seed", 0)),
        )
