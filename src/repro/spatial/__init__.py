"""Spatial game dynamics: populations on lattices (paper ref [30] lineage).

* :mod:`repro.spatial.lattice` — grid geometry and vectorised neighbour views.
* :mod:`repro.spatial.nowak_may` — the classic one-shot spatial PD
  (Nowak & May 1992), with its 12·ln2 − 8 ≈ 0.318 cooperation asymptote.
* :mod:`repro.spatial.spatial_ipd` — the paper's memory-n iterated games on
  a lattice, with exact expected payoffs and imitate-the-best updating.
"""

from repro.spatial.lattice import MOORE, VON_NEUMANN, Lattice
from repro.spatial.nowak_may import NowakMayGame
from repro.spatial.spatial_ipd import SpatialIPD

__all__ = ["Lattice", "MOORE", "VON_NEUMANN", "NowakMayGame", "SpatialIPD"]
