"""Spatial game dynamics: structured populations (paper ref [30] lineage).

* :mod:`repro.spatial.lattice` — grid geometry and vectorised neighbour views.
* :mod:`repro.spatial.nowak_may` — the classic one-shot spatial PD
  (Nowak & May 1992), with its 12·ln2 − 8 ≈ 0.318 cooperation asymptote.
* :mod:`repro.spatial.spatial_ipd` — the paper's memory-n iterated games on
  a lattice, with exact expected payoffs and imitate-the-best updating.
* :mod:`repro.spatial.graph` — interaction graphs (lattice, Watts–Strogatz,
  Barabási–Albert) as seeded CSR neighbour arrays, plus partition accounting.
* :mod:`repro.spatial.graph_game` — neighbour-local play and imitate-the-best
  updating on arbitrary graphs, bit-identical to the grid games on lattices.
* :mod:`repro.spatial.roster` — roster validation, batched pair payoffs and
  unambiguous render glyphs shared by the grid and graph games.
* :mod:`repro.spatial.spec` — declarative, serialisable spatial run specs.
* :mod:`repro.spatial.parallel` — block partitioning, halo exchange, and the
  rank-partitioned runner (bit-identical to the single-rank reference).
"""

from repro.spatial.graph import (
    GRAPH_KINDS,
    GraphSpec,
    InteractionGraph,
    barabasi_albert_graph,
    lattice_graph,
    watts_strogatz_graph,
)
from repro.spatial.graph_game import GraphGame, GraphIPD, graph_nowak_may
from repro.spatial.lattice import MOORE, VON_NEUMANN, Lattice
from repro.spatial.nowak_may import NowakMayGame
from repro.spatial.parallel import (
    GraphBlocks,
    HaloPlan,
    SpatialRunResult,
    build_halo_plan,
    halo_exchange,
    run_partitioned,
    run_reference,
)
from repro.spatial.roster import assign_glyphs, check_roster, roster_pair_matrix
from repro.spatial.spatial_ipd import SpatialIPD
from repro.spatial.spec import SpatialRunSpec

__all__ = [
    "GRAPH_KINDS",
    "GraphBlocks",
    "GraphGame",
    "GraphIPD",
    "GraphSpec",
    "HaloPlan",
    "InteractionGraph",
    "Lattice",
    "MOORE",
    "NowakMayGame",
    "SpatialIPD",
    "SpatialRunResult",
    "SpatialRunSpec",
    "VON_NEUMANN",
    "assign_glyphs",
    "barabasi_albert_graph",
    "build_halo_plan",
    "check_roster",
    "graph_nowak_may",
    "halo_exchange",
    "lattice_graph",
    "roster_pair_matrix",
    "run_partitioned",
    "run_reference",
    "watts_strogatz_graph",
]
