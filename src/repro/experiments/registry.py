"""Experiment registry: every table and figure of the paper, indexed.

Maps each evaluation artefact (Table I .. Table VIII, Fig. 2 .. Fig. 7,
§VI-D) to its driver in :mod:`repro.experiments` and the bench that
regenerates it — the machine-readable form of DESIGN.md's experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentInfo", "EXPERIMENTS", "experiment_ids"]


@dataclass(frozen=True)
class ExperimentInfo:
    """One paper artefact and how this package regenerates it.

    Attributes
    ----------
    experiment_id:
        Short id used by the CLI, e.g. ``"fig2"``.
    paper_ref:
        Where it lives in the paper.
    title:
        What it shows.
    driver:
        Dotted path of the function that produces it.
    bench:
        The pytest-benchmark file that regenerates and prints it.
    mode:
        ``"exact"`` (combinatorics reproduced exactly), ``"science"``
        (dynamics re-run at reduced scale), ``"model"`` (regenerated
        through the calibrated performance model), or ``"measured"``
        (timed live on this machine).
    """

    experiment_id: str
    paper_ref: str
    title: str
    driver: str
    bench: str
    mode: str


_E = ExperimentInfo

EXPERIMENTS: dict[str, ExperimentInfo] = {
    e.experiment_id: e
    for e in [
        _E(
            "table1",
            "Table I",
            "Prisoner's Dilemma payoff matrix",
            "repro.experiments.tables.table1_payoff",
            "benchmarks/test_table1_payoff.py",
            "exact",
        ),
        _E(
            "table2",
            "Table II",
            "Memory-one game states",
            "repro.experiments.tables.table2_states",
            "benchmarks/test_table2_states.py",
            "exact",
        ),
        _E(
            "table3",
            "Table III",
            "All sixteen memory-one pure strategies",
            "repro.experiments.tables.table3_strategies",
            "benchmarks/test_table3_strategies.py",
            "exact",
        ),
        _E(
            "table4",
            "Table IV",
            "Pure-strategy counts for memory 1..6",
            "repro.experiments.tables.table4_space_sizes",
            "benchmarks/test_table4_space_size.py",
            "exact",
        ),
        _E(
            "table5",
            "Table V",
            "WSLS state/strategy table",
            "repro.experiments.tables.table5_wsls",
            "benchmarks/test_table5_wsls.py",
            "exact",
        ),
        _E(
            "fig2",
            "Fig. 2",
            "Validation: WSLS emergence with k-means-clustered snapshots",
            "repro.experiments.validation_wsls.run_wsls_validation",
            "benchmarks/test_fig2_wsls_validation.py",
            "science",
        ),
        _E(
            "table6",
            "Table VI",
            "Runtime vs memory steps across processor counts",
            "repro.experiments.memory_scaling.run_table6",
            "benchmarks/test_table6_memory_runtime.py",
            "model",
        ),
        _E(
            "fig3",
            "Fig. 3",
            "Strong-scaling efficiency per memory depth",
            "repro.experiments.memory_scaling.run_fig3",
            "benchmarks/test_fig3_memory_strong_scaling.py",
            "model",
        ),
        _E(
            "fig4",
            "Fig. 4",
            "Runtime growth with memory steps (state identification)",
            "repro.experiments.memory_scaling.run_fig4",
            "benchmarks/test_fig4_memory_runtime.py",
            "model+measured",
        ),
        _E(
            "table7",
            "Table VII",
            "Runtime vs population size across processor counts",
            "repro.experiments.population_scaling.run_table7",
            "benchmarks/test_table7_population_runtime.py",
            "model",
        ),
        _E(
            "fig5",
            "Fig. 5",
            "Strong scaling vs population size",
            "repro.experiments.population_scaling.run_fig5",
            "benchmarks/test_fig5_population_strong_scaling.py",
            "model",
        ),
        _E(
            "table8",
            "Table VIII",
            "Agents per processor",
            "repro.experiments.tables.table8_agents",
            "benchmarks/test_table8_agents_per_proc.py",
            "exact",
        ),
        _E(
            "fig6",
            "Fig. 6",
            "Weak scaling, 4,096 SSets per processor, to 262,144 procs",
            "repro.experiments.large_scale.run_fig6_weak_scaling",
            "benchmarks/test_fig6_weak_scaling.py",
            "model",
        ),
        _E(
            "fig7",
            "Fig. 7",
            "Strong scaling for large systems (82% at 262,144)",
            "repro.experiments.large_scale.run_fig7_strong_scaling",
            "benchmarks/test_fig7_large_strong_scaling.py",
            "model",
        ),
        _E(
            "nonpow2",
            "Section VI-D",
            "Non-power-of-two partition penalty (294,912 procs)",
            "repro.experiments.large_scale.run_nonpow2_discussion",
            "benchmarks/test_discussion_nonpow2.py",
            "model",
        ),
        _E(
            "ablation-lookup",
            "Section VI-B-1 claim",
            "State identification ablation: linear search vs incremental",
            "repro.experiments.measured.measure_memory_runtime",
            "benchmarks/test_ablation_state_lookup.py",
            "measured",
        ),
        _E(
            "memory-cooperation",
            "Section II claim (Brunauer et al. [12])",
            "Extension: more memory steps -> more cooperation",
            "repro.experiments.memory_cooperation.run_memory_cooperation",
            "benchmarks/test_extension_memory_cooperation.py",
            "science",
        ),
        _E(
            "wsls-robustness",
            "Section I mission ('assess the importance of factors')",
            "Factor sweep: WSLS emergence vs selection and mutation",
            "repro.experiments.sweeps.wsls_robustness_sweep",
            "benchmarks/test_sweep_wsls_robustness.py",
            "science",
        ),
        _E(
            "heterogeneous",
            "Section VI-E future work",
            "Extension: modelled GPU-CPU hybrid execution",
            "repro.perf.heterogeneous.hybrid_speedup_by_memory",
            "benchmarks/test_extension_heterogeneous.py",
            "model",
        ),
        _E(
            "ablation-mapping",
            "Section VI-E future work",
            "Custom rank mappings for non-power-of-two partitions",
            "repro.machine.mapping.compare_mappings",
            "benchmarks/test_ablation_rank_mapping.py",
            "measured",
        ),
        _E(
            "spatial-phase",
            "Ref [30] lineage (Nowak & May 1992)",
            "Extension: spatial cooperation phase diagram across topologies",
            "repro.experiments.spatial_phase.run_spatial_phase",
            "benchmarks/test_spatial_phase.py",
            "science",
        ),
        _E(
            "spatial-noise",
            "Section III-E claim, on structured populations",
            "Extension: memory-n noise robustness across topologies",
            "repro.experiments.spatial_phase.run_spatial_noise_phase",
            "benchmarks/test_spatial_noise.py",
            "science",
        ),
    ]
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in registry order."""
    return list(EXPERIMENTS)
