"""Self-measured experiments: real engine timings on this machine.

The modelled studies regenerate the paper's published numbers; these
functions *measure* the same effects with the package's own engines:

* :func:`measure_memory_runtime` — per-game time at memory one through six
  for both state-identification strategies (the paper's linear search and
  our incremental tracker).  The lookup column reproduces Fig. 4's growth
  shape; the pair is the ablation that isolates the paper's claimed
  bottleneck.
* :func:`measure_generation_throughput` — end-to-end generations/second of
  the evolution driver across population sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_seconds, render_table
from repro.config import SimulationConfig
from repro.errors import ExperimentError
from repro.game.lookup_engine import build_states_table, play_ipd_lookup
from repro.game.states import StateSpace
from repro.game.strategy import Strategy
from repro.game.vector_engine import VectorEngine
from repro.population.dynamics import EvolutionDriver

__all__ = [
    "MeasuredMemoryRuntime",
    "measure_memory_runtime",
    "measure_generation_throughput",
]


@dataclass(frozen=True)
class MeasuredMemoryRuntime:
    """Measured per-game times by memory depth and engine.

    Attributes
    ----------
    rounds:
        Rounds per timed game.
    lookup_seconds, incremental_seconds:
        memory -> measured seconds per game.
    """

    rounds: int
    lookup_seconds: dict[int, float]
    incremental_seconds: dict[int, float]

    def render(self) -> str:
        """Fig. 4 (measured) plus the state-identification ablation."""
        rows = []
        for mem in sorted(self.lookup_seconds):
            lk = self.lookup_seconds[mem]
            inc = self.incremental_seconds.get(mem)
            ratio = f"{lk / inc:.1f}x" if inc else "-"
            rows.append(
                (
                    f"memory-{mem}",
                    format_seconds(lk),
                    format_seconds(inc) if inc else "-",
                    ratio,
                )
            )
        return render_table(
            ["Memory Steps", "lookup (paper algo)", "incremental (ours)", "ratio"],
            rows,
            title=f"Fig. 4 (measured) - seconds per {self.rounds}-round game",
        )


def measure_memory_runtime(
    memories: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    rounds: int = 50,
    seed: int = 0,
) -> MeasuredMemoryRuntime:
    """Time one game per memory depth on both engines.

    The lookup engine's cost grows as ``4**memory`` per round, so high
    memories run a single short game; the incremental engine amortises over
    a batch.
    """
    if rounds < 1:
        raise ExperimentError(f"rounds must be positive, got {rounds}")
    rng = np.random.default_rng(seed)
    lookup: dict[int, float] = {}
    incremental: dict[int, float] = {}
    for mem in memories:
        space = StateSpace(mem)
        a = Strategy.random_pure(space, rng)
        b = Strategy.random_pure(space, rng)
        table = build_states_table(space)
        play_ipd_lookup(a, b, rounds=2, states_table=table)  # warm-up
        # Best-of-3: the low-memory games run in microseconds, where a
        # single sample is at the mercy of the scheduler.
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            play_ipd_lookup(a, b, rounds=rounds, states_table=table)
            samples.append(time.perf_counter() - start)
        lookup[mem] = min(samples)

        batch = 32
        mat = rng.integers(0, 2, size=(batch, space.n_states), dtype=np.uint8)
        engine = VectorEngine(space, rounds=rounds)
        ia = rng.integers(0, batch, size=batch).astype(np.intp)
        ib = rng.integers(0, batch, size=batch).astype(np.intp)
        engine.play(mat, ia, ib)  # warm-up
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            engine.play(mat, ia, ib)
            samples.append(time.perf_counter() - start)
        incremental[mem] = min(samples) / batch
    return MeasuredMemoryRuntime(
        rounds=rounds, lookup_seconds=lookup, incremental_seconds=incremental
    )


def measure_generation_throughput(
    sset_counts: tuple[int, ...] = (16, 32, 64),
    generations: int = 200,
    seed: int = 0,
) -> list[tuple[int, float]]:
    """Generations/second of the serial driver per population size."""
    out = []
    for n in sset_counts:
        cfg = SimulationConfig(
            memory=1, n_ssets=n, generations=generations, pc_rate=0.1, seed=seed
        )
        driver = EvolutionDriver(cfg)
        start = time.perf_counter()
        driver.run()
        elapsed = time.perf_counter() - start
        out.append((n, generations / elapsed))
    return out
