"""Parameter sweeps: how the dynamics respond to the knobs.

The paper's stated purpose is to let domain scientists "assess the
importance of factors such as history of previous game play" — which in
practice means sweeping parameters and watching outcomes.  This module
provides the generic machinery: a grid of configuration overrides, a run
per cell (seed-averaged), a scalar metric over the final population, and
text/CSV output.

:func:`wsls_robustness_sweep` is the built-in study: how the WSLS outcome
of the Fig. 2 validation responds to selection intensity and mutation rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.analysis.metrics import wsls_fraction
from repro.analysis.report import render_table
from repro.config import SimulationConfig
from repro.errors import ExperimentError
from repro.population.dynamics import EvolutionDriver

__all__ = ["SweepResult", "run_sweep", "wsls_robustness_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a 2-D parameter sweep.

    Attributes
    ----------
    x_name, y_name:
        The swept configuration fields.
    x_values, y_values:
        Grid axes.
    metric:
        (len(y_values), len(x_values)) array of seed-averaged metric values.
    metric_name:
        Label of the measured quantity.
    seeds:
        Seeds averaged per cell.
    """

    x_name: str
    y_name: str
    x_values: tuple
    y_values: tuple
    metric: np.ndarray
    metric_name: str
    seeds: tuple[int, ...]

    def render(self) -> str:
        """Grid as a text table (rows = y, columns = x)."""
        rows = [
            (f"{self.y_name}={y}", *[f"{v:.2f}" for v in self.metric[j]])
            for j, y in enumerate(self.y_values)
        ]
        return render_table(
            [self.metric_name, *[f"{self.x_name}={x}" for x in self.x_values]],
            rows,
            title=f"Sweep - {self.metric_name} over {self.x_name} x {self.y_name}"
            f" (seeds {list(self.seeds)})",
        )

    def cell(self, x, y) -> float:
        """Metric value at one grid point."""
        try:
            i = self.x_values.index(x)
            j = self.y_values.index(y)
        except ValueError:
            raise ExperimentError(f"({x}, {y}) not on the sweep grid") from None
        return float(self.metric[j, i])


def run_sweep(
    base: SimulationConfig,
    x_name: str,
    x_values: Sequence,
    y_name: str,
    y_values: Sequence,
    metric: Callable[[np.ndarray], float],
    metric_name: str = "metric",
    seeds: Sequence[int] = (0,),
    extra_overrides: Mapping | None = None,
) -> SweepResult:
    """Run the grid: one :class:`EvolutionDriver` per (cell, seed).

    ``metric`` maps the final population matrix to a scalar; cells average
    it over ``seeds``.
    """
    if not x_values or not y_values or not seeds:
        raise ExperimentError("x_values, y_values and seeds must be non-empty")
    grid = np.zeros((len(y_values), len(x_values)))
    for j, y in enumerate(y_values):
        for i, x in enumerate(x_values):
            samples = []
            for seed in seeds:
                overrides = {x_name: x, y_name: y, "seed": seed}
                if extra_overrides:
                    overrides.update(extra_overrides)
                config = base.with_updates(**overrides)
                driver = EvolutionDriver(config)
                driver.run()
                samples.append(metric(driver.population.matrix()))
            grid[j, i] = float(np.mean(samples))
    return SweepResult(
        x_name=x_name,
        y_name=y_name,
        x_values=tuple(x_values),
        y_values=tuple(y_values),
        metric=grid,
        metric_name=metric_name,
        seeds=tuple(seeds),
    )


def wsls_robustness_sweep(
    betas: Sequence[float] = (0.01, 0.1, 1.0),
    mutation_rates: Sequence[float] = (0.005, 0.02, 0.08),
    n_ssets: int = 16,
    generations: int = 30_000,
    seeds: Sequence[int] = (1, 2),
) -> SweepResult:
    """The built-in factor study: WSLS share vs selection and mutation.

    Uses the Fig. 2 validation setting (mixed memory-one, U-shaped mutants,
    2% errors) at reduced scale; cells report the seed-averaged final WSLS
    fraction.
    """
    from repro.experiments.validation_wsls import wsls_validation_config

    base = wsls_validation_config(n_ssets=n_ssets, generations=generations)
    return run_sweep(
        base,
        x_name="beta",
        x_values=list(betas),
        y_name="mutation_rate",
        y_values=list(mutation_rates),
        metric=lambda matrix: wsls_fraction(matrix, tolerance=0.2),
        metric_name="WSLS fraction",
        seeds=seeds,
    )
