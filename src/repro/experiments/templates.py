"""Experiment ids as run-spec templates.

The registry (:mod:`repro.experiments.registry`) indexes every paper
artefact; the *config-driven* subset — experiments whose driver evolves a
population from a :class:`~repro.config.SimulationConfig` — can also be
addressed as :class:`~repro.parallel.spec.RunSpec` templates: the run
service accepts ``{"template": "fig2"}`` and expands it into a full spec,
so an experiment id is a submittable workload, not just a CLI artefact.

Model-mode experiments (Table VI, the scaling figures, ...) regenerate
numbers through the calibrated performance model without evolving anything,
so there is no simulation to spec; asking for them raises
:class:`~repro.errors.ExperimentError` naming the templatable ids.

Two template families exist: config-driven evolution experiments expand to
a :class:`~repro.parallel.spec.RunSpec`, and the spatial phase-diagram
experiments expand to a :class:`~repro.spatial.spec.SpatialRunSpec` (one
representative cell of their sweep — a spec names a single run).
"""

from __future__ import annotations

from typing import Callable

from repro.config import SimulationConfig
from repro.errors import ExperimentError
from repro.experiments.registry import EXPERIMENTS
from repro.parallel.spec import RunSpec

__all__ = ["spec_template", "template_ids"]


def _fig2_config(**overrides) -> SimulationConfig:
    from repro.experiments.validation_wsls import wsls_validation_config

    return wsls_validation_config(**overrides)


def _memory_cooperation_config(
    memory: int = 1,
    n_ssets: int = 16,
    generations: int = 20_000,
    seed: int = 1,
    noise_rate: float = 0.02,
) -> SimulationConfig:
    # One cell of the memory-cooperation study (the driver sweeps
    # memory x seed; a spec names a single run, so the template exposes the
    # cell parameters).  Mirrors run_memory_cooperation's construction.
    from repro.game.noise import NoiseModel

    return SimulationConfig(
        memory=memory,
        n_ssets=n_ssets,
        generations=generations,
        seed=seed,
        strategy_kind="pure",
        fitness_mode="expected",
        noise=NoiseModel(noise_rate),
        pc_rate=0.2,
        mutation_rate=0.05,
        beta=0.1,
    )


#: Experiment ids that expand to a SimulationConfig (and hence a RunSpec).
_TEMPLATE_CONFIGS: dict[str, Callable[..., SimulationConfig]] = {
    "fig2": _fig2_config,
    "memory-cooperation": _memory_cooperation_config,
}


def _spatial_phase_spec(
    topology: str = "lattice", b: float = 1.8125, steps: int = 60, seed: int = 1, **spec_overrides
):
    # One cell of the Nowak-May b-sweep (the driver sweeps b x topology).
    from repro.experiments.spatial_phase import phase_graph_spec
    from repro.spatial.spec import SpatialRunSpec

    return SpatialRunSpec(
        graph=phase_graph_spec(topology, seed=seed),
        game="nowak_may",
        b=b,
        init="random",
        seed=seed,
        steps=steps,
        **spec_overrides,
    )


def _spatial_noise_spec(
    topology: str = "lattice",
    noise_rate: float = 0.02,
    steps: int = 40,
    seed: int = 1,
    **spec_overrides,
):
    # One cell of the memory-n noise sweep (the driver sweeps noise x topology).
    from repro.experiments.spatial_phase import NOISE_ROSTER, phase_graph_spec
    from repro.spatial.spec import SpatialRunSpec

    return SpatialRunSpec(
        graph=phase_graph_spec(topology, seed=seed),
        game="ipd",
        roster=NOISE_ROSTER,
        noise_rate=noise_rate,
        init="random",
        seed=seed,
        steps=steps,
        **spec_overrides,
    )


#: Experiment ids that expand directly to a SpatialRunSpec.  These factories
#: take the *cell* parameters as keywords and pass spec field overrides
#: straight through to the SpatialRunSpec constructor.
_TEMPLATE_SPECS: dict[str, Callable] = {
    "spatial-phase": _spatial_phase_spec,
    "spatial-noise": _spatial_noise_spec,
}


def template_ids() -> list[str]:
    """Registry ids addressable as run-spec templates, in registry order."""
    return [
        eid for eid in EXPERIMENTS if eid in _TEMPLATE_CONFIGS or eid in _TEMPLATE_SPECS
    ]


def spec_template(
    experiment_id: str,
    *,
    config_overrides: dict | None = None,
    **spec_overrides,
) -> RunSpec:
    """Expand a registry id into a submittable :class:`~repro.parallel.spec.RunSpec`.

    ``config_overrides`` are keyword arguments of the experiment's config
    factory (``n_ssets``, ``generations``, ``seed``, ...); ``spec_overrides``
    set spec fields (``n_ranks``, ``backend``, ``fault``, ...).  Evolution
    ids yield a :class:`~repro.parallel.spec.RunSpec`, spatial ids a
    :class:`~repro.spatial.spec.SpatialRunSpec`.  Unknown ids — including
    registered experiments that are not config-driven — raise
    :class:`~repro.errors.ExperimentError` listing what is templatable.
    """
    spec_factory = _TEMPLATE_SPECS.get(experiment_id)
    if spec_factory is not None:
        spec_overrides.setdefault("name", experiment_id)
        return spec_factory(**(config_overrides or {}), **spec_overrides)
    factory = _TEMPLATE_CONFIGS.get(experiment_id)
    if factory is None:
        known = ", ".join(template_ids())
        detail = (
            "a registered experiment, but not config-driven (nothing to evolve)"
            if experiment_id in EXPERIMENTS
            else "not a registered experiment"
        )
        raise ExperimentError(
            f"{experiment_id!r} is {detail}; spec templates exist for: {known}"
        )
    config = factory(**(config_overrides or {}))
    spec_overrides.setdefault("name", experiment_id)
    return RunSpec(config=config, **spec_overrides)
