"""Spatial cooperation phase diagrams across interaction topologies.

The paper's learning phase descends from the spatial PD literature (its
ref [30]); the classic result there is Nowak & May's 1992 phase diagram —
cooperation on a lattice survives temptation payoffs ``1 < b < 2`` in
regimes that a well-mixed population cannot sustain, with sharp transitions
at the points where different neighbourhood counts tip.  This module runs
two workstation-scale phase sweeps over the package's interaction-graph
topologies (:mod:`repro.spatial.graph`):

* :func:`run_spatial_phase` — the Nowak-May *b*-sweep: final cooperator
  share as a function of temptation, on lattice / small-world /
  scale-free graphs of comparable size and degree.  The reproduced
  qualitative finding (see the bench): where cooperation tips depends on
  topology — under imitate-the-best the scale-free graph's hubs flip whole
  neighbourhoods at once and collapse first (by ``b = 1.375``), the
  lattice follows, and the small-world ring's clusters hold out longest —
  and every topology has defected out by ``b = 1.8125``.
* :func:`run_spatial_noise_phase` — the memory-*n* noise sweep: final
  roster shares of WSLS / TFT / ALLD as execution errors rise, the §III-E
  robustness story on structured populations (WSLS domains expand against
  TFT under noise).

Both sweeps are deterministic (exact Markov payoffs, seeded graphs and
initial states) and every cell is one :class:`~repro.spatial.spec.
SpatialRunSpec` driven through :func:`~repro.spatial.parallel.
run_partitioned` — the same object the run service executes, so a sweep
cell can be re-run remotely by submitting the rendered spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.errors import ExperimentError
from repro.spatial.graph import GraphSpec
from repro.spatial.spec import SpatialRunSpec

__all__ = [
    "PHASE_TOPOLOGIES",
    "NOISE_ROSTER",
    "phase_graph_spec",
    "SpatialPhaseResult",
    "run_spatial_phase",
    "SpatialNoiseResult",
    "run_spatial_noise_phase",
]

#: Topologies the sweeps compare, all ~400 nodes at mean degree ~8.
PHASE_TOPOLOGIES = ("lattice", "small_world", "scale_free")

#: Roster of the memory-n noise sweep (the §III-E cast, spatially).
NOISE_ROSTER = ("WSLS", "TFT", "ALLD")


def phase_graph_spec(topology: str, seed: int = 1) -> GraphSpec:
    """The sweep's graph for one topology, size-and-degree matched.

    A 20x20 Moore lattice (400 nodes, degree 8), a Watts-Strogatz ring of
    400 nodes at ``k = 8`` with 10% rewiring, and a Barabasi-Albert graph
    of 400 nodes at ``m = 4`` (mean degree ~8, hub-dominated) — so share
    differences come from *structure*, not from node count or edge budget.
    """
    if topology == "lattice":
        return GraphSpec("lattice", {"rows": 20, "cols": 20})
    if topology == "small_world":
        return GraphSpec("small_world", {"n": 400, "k": 8, "p": 0.1}, seed=seed)
    if topology == "scale_free":
        return GraphSpec("scale_free", {"n": 400, "m": 4}, seed=seed)
    raise ExperimentError(
        f"unknown topology {topology!r}; the sweep knows {PHASE_TOPOLOGIES}"
    )


@dataclass(frozen=True)
class SpatialPhaseResult:
    """Final cooperator share by temptation and topology.

    Attributes
    ----------
    shares:
        topology -> list of final cooperator shares, aligned with ``bs``.
    bs:
        The temptation values swept.
    steps, seed:
        Sweep parameters.
    """

    shares: dict[str, list[float]]
    bs: tuple[float, ...]
    steps: int
    seed: int

    def render(self) -> str:
        """Table: rows are temptation values, columns are topologies."""
        topologies = list(self.shares)
        rows = []
        for i, b in enumerate(self.bs):
            rows.append(
                (f"{b:.4f}",)
                + tuple(f"{self.shares[t][i]:.3f}" for t in topologies)
            )
        return render_table(
            ["temptation b"] + [f"C share ({t})" for t in topologies],
            rows,
            title=(
                "Spatial phase diagram - Nowak-May cooperator share by topology"
                f" (400 nodes, {self.steps} steps, seed {self.seed})"
            ),
        )


def run_spatial_phase(
    bs: tuple[float, ...] = (1.125, 1.375, 1.625, 1.8125, 1.9375),
    topologies: tuple[str, ...] = PHASE_TOPOLOGIES,
    steps: int = 60,
    seed: int = 1,
    n_ranks: int = 1,
    backend: str = "thread",
) -> SpatialPhaseResult:
    """Run the Nowak-May b-sweep over the topology family.

    ``n_ranks``/``backend`` select the substrate per cell; results are
    bit-identical across both by the partitioned runner's contract, so the
    defaults keep the sweep in-process.
    """
    from repro.spatial.parallel import run_partitioned

    if not bs or not topologies:
        raise ExperimentError("need at least one temptation value and one topology")
    shares: dict[str, list[float]] = {t: [] for t in topologies}
    for topology in topologies:
        for b in bs:
            spec = SpatialRunSpec(
                graph=phase_graph_spec(topology, seed=seed),
                game="nowak_may",
                b=b,
                init="random",
                seed=seed,
                steps=steps,
                n_ranks=n_ranks,
                backend=backend,
                name=f"spatial-phase/{topology}/b={b}",
            )
            shares[topology].append(run_partitioned(spec).shares()["C"])
    return SpatialPhaseResult(shares=shares, bs=tuple(bs), steps=steps, seed=seed)


@dataclass(frozen=True)
class SpatialNoiseResult:
    """Final roster shares by noise rate and topology.

    Attributes
    ----------
    shares:
        topology -> list of final ``{name: share}`` dicts, aligned with
        ``noise_rates``.
    noise_rates:
        The execution-error rates swept.
    roster, steps, seed:
        Sweep parameters.
    """

    shares: dict[str, list[dict[str, float]]]
    noise_rates: tuple[float, ...]
    roster: tuple[str, ...]
    steps: int
    seed: int

    def render(self) -> str:
        """Table: one row per (topology, noise rate), roster shares as columns."""
        rows = []
        for topology in self.shares:
            for rate, cell in zip(self.noise_rates, self.shares[topology]):
                rows.append(
                    (topology, f"{rate:.3f}")
                    + tuple(f"{cell[name]:.3f}" for name in self.roster)
                )
        return render_table(
            ["topology", "noise"] + [f"{name} share" for name in self.roster],
            rows,
            title=(
                "Spatial noise sweep - memory-n roster shares by topology"
                f" (400 nodes, {self.steps} steps, seed {self.seed})"
            ),
        )


def run_spatial_noise_phase(
    noise_rates: tuple[float, ...] = (0.0, 0.01, 0.05),
    topologies: tuple[str, ...] = PHASE_TOPOLOGIES,
    steps: int = 40,
    seed: int = 1,
    n_ranks: int = 1,
    backend: str = "thread",
) -> SpatialNoiseResult:
    """Run the memory-n noise sweep over the topology family."""
    from repro.spatial.parallel import run_partitioned

    if not noise_rates or not topologies:
        raise ExperimentError("need at least one noise rate and one topology")
    shares: dict[str, list[dict[str, float]]] = {t: [] for t in topologies}
    for topology in topologies:
        for rate in noise_rates:
            spec = SpatialRunSpec(
                graph=phase_graph_spec(topology, seed=seed),
                game="ipd",
                roster=NOISE_ROSTER,
                noise_rate=rate,
                init="random",
                seed=seed,
                steps=steps,
                n_ranks=n_ranks,
                backend=backend,
                name=f"spatial-noise/{topology}/noise={rate}",
            )
            shares[topology].append(run_partitioned(spec).shares())
    return SpatialNoiseResult(
        shares=shares,
        noise_rates=tuple(noise_rates),
        roster=NOISE_ROSTER,
        steps=steps,
        seed=seed,
    )
