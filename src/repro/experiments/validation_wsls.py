"""The paper's validation study (Fig. 2): emergence of Win-Stay Lose-Shift.

The paper evolves 5,000 SSets of probabilistic memory-one strategies for
10^7 generations (PC rate 0.1, μ = 0.05) on 2,048 Blue Gene/L processors
and finds 85% of SSets adopt [0101] — WSLS in its Table V state order —
reproducing Nowak & Sigmund's classic result [11].

This driver runs the same experiment scaled to a workstation: fewer SSets,
fewer generations, and (following the original WSLS study this validates)
mutants drawn from a corner-concentrated U-shaped distribution with a small
execution-error rate — the two ingredients that make WSLS the robust
attractor.  The defaults finish in about a minute and end WSLS-dominant;
pass bigger numbers to approach the paper's scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import dominant_strategy, wsls_fraction
from repro.analysis.snapshots import ClusteredSnapshot, cluster_sorted, render_population
from repro.config import SimulationConfig
from repro.game.noise import NoiseModel
from repro.population.dynamics import EvolutionDriver

__all__ = ["WSLSValidationResult", "run_wsls_validation", "wsls_validation_config"]


@dataclass(frozen=True)
class WSLSValidationResult:
    """Outcome of the scaled Fig. 2 experiment.

    Attributes
    ----------
    initial_matrix, final_matrix:
        The population at generation 0 and at the end (Fig. 2's two panels).
    clustered:
        Final population grouped by Lloyd k-means cluster (panel b layout).
    wsls_fraction:
        Fraction of SSets within tolerance of WSLS (the paper reports 85%).
    dominant:
        The most common (rounded) strategy and its frequency.
    generations:
        Generations evolved.
    config:
        Full configuration of the run.
    """

    initial_matrix: np.ndarray
    final_matrix: np.ndarray
    clustered: ClusteredSnapshot
    wsls_fraction: float
    dominant: tuple[np.ndarray, float]
    generations: int
    config: SimulationConfig

    def render(self, max_rows: int = 24) -> str:
        """Fig. 2 in text: initial and clustered final population panels."""
        from repro.analysis.traits import population_traits

        traits = population_traits(self.final_matrix)
        lines = [
            "Fig. 2(a) - initial population (random mixed strategies):",
            render_population(self.initial_matrix, max_rows=max_rows),
            "",
            "Fig. 2(b) - final population, k-means-clustered rows:",
            render_population(self.clustered.matrix, max_rows=max_rows),
            "",
            f"WSLS fraction: {self.wsls_fraction:.0%} (paper: 85%)",
            f"dominant strategy (defect probs, states CC,CD,DC,DD):"
            f" {np.round(self.dominant[0], 2).tolist()} at {self.dominant[1]:.0%}",
            "WSLS in this encoding is [0, 1, 1, 0] ([0101] in the paper's Table V order).",
            "population traits: "
            + ", ".join(f"{k} {v:.2f}" for k, v in traits.as_dict().items()),
        ]
        return "\n".join(lines)


def wsls_validation_config(
    n_ssets: int = 24,
    generations: int = 150_000,
    seed: int = 2,
    noise_rate: float = 0.02,
    mutation_rate: float = 0.02,
    engine: str = "auto",
) -> SimulationConfig:
    """The scaled validation configuration.

    Deviations from the paper's §VI-A parameters, and why (details in
    EXPERIMENTS.md):

    * 24 SSets / 1.5e5 generations instead of 5,000 / 1e7 — laptop scale;
      the dynamics are the same, phases are just shorter.
    * mutation rate 0.02 instead of 0.05 — holds the *per-SSet* mutation
      pressure closer to the paper's (its 0.05 is spread over 5,000 SSets).
    * U-shaped mutants and a 2% execution-error rate — the Nowak-Sigmund
      study's conditions [11], which the paper says this experiment mimics.
    """
    return SimulationConfig(
        memory=1,
        n_ssets=n_ssets,
        generations=generations,
        strategy_kind="mixed",
        fitness_mode="expected",
        pc_rate=0.1,
        mutation_rate=mutation_rate,
        mutation_distribution="ushaped",
        beta=0.1,
        noise=NoiseModel(noise_rate),
        seed=seed,
        engine=engine,  # type: ignore[arg-type]
    )


def run_wsls_validation(
    config: SimulationConfig | None = None, k_clusters: int = 6
) -> WSLSValidationResult:
    """Run the scaled Fig. 2 experiment and analyse the final population."""
    cfg = config if config is not None else wsls_validation_config()
    driver = EvolutionDriver(cfg)
    initial = driver.population.matrix()
    driver.run()
    final = driver.population.matrix()
    clustered = cluster_sorted(final, k=min(k_clusters, cfg.n_ssets))
    return WSLSValidationResult(
        initial_matrix=initial,
        final_matrix=final,
        clustered=clustered,
        wsls_fraction=wsls_fraction(final, tolerance=0.2),
        dominant=dominant_strategy(final, decimals=1),
        generations=cfg.generations,
        config=cfg,
    )
