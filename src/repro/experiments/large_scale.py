"""Large-scale Blue Gene/P studies: Figure 6, Figure 7, and the §VI-D
non-power-of-two discussion.

* **Fig. 6 (weak scaling)** — 4,096 SSets per processor from 1,024 up to
  262,144 processors; the paper's runtime "fluctuated by at most 1 second".
* **Fig. 7 (strong scaling)** — a fixed large problem; 99% efficiency
  through 16,384 processors, 82% at 262,144.
* **§VI-D** — the full 294,912-processor machine (72 racks, not a power of
  two) loses ~15% efficiency to rank-mapping quality.

All three run through the analytic model with the Blue Gene/P constants;
the strong-scaling workload's per-rank work is chosen so the modelled
efficiencies land on the published curve (the paper does not state Fig. 7's
problem size — see the workload's docstring and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_series, render_table
from repro.machine.bluegene import MachineSpec, bluegene_p
from repro.perf.analytic import AnalyticModel
from repro.perf.cost_model import CostModel, paper_bgp
from repro.perf.scaling import ScalingPoint, strong_scaling, weak_scaling
from repro.perf.workload import WorkloadSpec

__all__ = [
    "LargeScaleResult",
    "run_fig6_weak_scaling",
    "run_fig7_strong_scaling",
    "run_nonpow2_discussion",
    "PAPER_FIG7_EFFICIENCY",
]

#: Processor counts of the large-scale studies (Fig. 7's published points).
PAPER_LARGE_PROCS = (1024, 2048, 8192, 16384, 262144)

#: Published Fig. 7 anchors: "99% linear scaling ... through 16,384" and
#: "82% scaling efficiency exhibited at 262,144 processors".
PAPER_FIG7_EFFICIENCY = {16384: 0.99, 262144: 0.82}


@dataclass(frozen=True)
class LargeScaleResult:
    """A scaling series at Blue Gene/P scale."""

    kind: str
    points: list[ScalingPoint]

    def efficiencies(self) -> dict[int, float]:
        """ranks -> efficiency."""
        return {pt.n_ranks: pt.efficiency for pt in self.points}

    def render(self) -> str:
        """Series table: ranks, modelled time, efficiency."""
        rows = [
            (pt.n_ranks, f"{pt.seconds:.2f}", f"{pt.efficiency:.3f}") for pt in self.points
        ]
        title = {
            "weak": "Fig. 6 - weak scaling, 4,096 SSets per processor (model)",
            "strong": "Fig. 7 - strong scaling for large systems (model)",
            "nonpow2": "Section VI-D - non-power-of-two partition penalty (model)",
        }[self.kind]
        return render_table(["Processors", "Seconds", "Efficiency"], rows, title=title)


def run_fig6_weak_scaling(
    machine: MachineSpec | None = None,
    costs: CostModel | None = None,
    proc_counts: tuple[int, ...] = (1024, 2048, 8192, 16384, 65536, 262144),
    ssets_per_rank: int = 4096,
) -> LargeScaleResult:
    """Fig. 6: constant work per rank; the model's runtime stays flat."""
    model = AnalyticModel(machine or bluegene_p(), costs or paper_bgp())
    points = weak_scaling(
        model,
        lambda p: WorkloadSpec.paper_weak_scaling(p, ssets_per_rank=ssets_per_rank),
        list(proc_counts),
    )
    return LargeScaleResult(kind="weak", points=points)


def run_fig7_strong_scaling(
    machine: MachineSpec | None = None,
    costs: CostModel | None = None,
    proc_counts: tuple[int, ...] = PAPER_LARGE_PROCS,
) -> LargeScaleResult:
    """Fig. 7: fixed problem; efficiency knee at very large rank counts."""
    model = AnalyticModel(machine or bluegene_p(), costs or paper_bgp())
    workload = WorkloadSpec.paper_strong_scaling_large()
    points = strong_scaling(model, workload, list(proc_counts))
    return LargeScaleResult(kind="strong", points=points)


def run_nonpow2_discussion(
    machine: MachineSpec | None = None,
    costs: CostModel | None = None,
) -> tuple[LargeScaleResult, float]:
    """§VI-D: 262,144 (power of two) vs 294,912 (72 racks) processors.

    Returns the two-point series and the modelled efficiency drop between
    them (the paper observed ~15%).
    """
    model = AnalyticModel(machine or bluegene_p(), costs or paper_bgp())
    workload = WorkloadSpec.paper_strong_scaling_large()
    points = strong_scaling(model, workload, [1024, 262144, 294912])
    eff = {pt.n_ranks: pt.efficiency for pt in points}
    drop = 1.0 - eff[294912] / eff[262144]
    return LargeScaleResult(kind="nonpow2", points=points), drop


def render_fig6_series(result: LargeScaleResult) -> str:
    """Fig. 6 as a flat (processors, seconds) series."""
    return render_series(
        [(pt.n_ranks, f"{pt.seconds:.2f}") for pt in result.points],
        x_label="Processors",
        y_label="Seconds",
        title="Fig. 6 - weak scaling runtime",
    )
