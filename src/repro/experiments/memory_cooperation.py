"""Extension study: does more memory mean more cooperation?

The paper's scientific motivation (§II, citing Brunauer et al. [12]):
"taking into account more memory steps would likely lead to more
cooperative strategies" — and its conclusion promises the framework will
let researchers "assess the role memory plays in game dynamics".  This
study runs that assessment at workstation scale: evolve pure-strategy
populations under identical dynamics at memory one, two and three (with a
small execution-error rate so retaliation is tested, exact Markov fitness
so runs are deterministic), then measure the *played* cooperation rate of
the final population's round robin.

The reproduced finding (see the bench): cooperation rises monotonically
with memory depth — roughly 0.29 → 0.48 → 0.68 across memory one to three
under the default parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import render_table
from repro.config import SimulationConfig
from repro.errors import ExperimentError
from repro.game.batch_engine import make_engine
from repro.game.noise import NoiseModel
from repro.population.dynamics import EvolutionDriver

__all__ = ["MemoryCooperationResult", "run_memory_cooperation"]


@dataclass(frozen=True)
class MemoryCooperationResult:
    """Cooperation rates by memory depth.

    Attributes
    ----------
    rates:
        memory -> per-seed played cooperation rates of the final population.
    generations, n_ssets, seeds:
        Study parameters.
    """

    rates: dict[int, list[float]]
    generations: int
    n_ssets: int
    seeds: tuple[int, ...]

    def mean_rate(self, memory: int) -> float:
        """Seed-averaged cooperation rate at one memory depth."""
        return float(np.mean(self.rates[memory]))

    def render(self) -> str:
        """Table of per-seed and mean cooperation rates."""
        rows = []
        for mem in sorted(self.rates):
            per_seed = " ".join(f"{v:.2f}" for v in self.rates[mem])
            rows.append((f"memory-{mem}", per_seed, f"{self.mean_rate(mem):.3f}"))
        return render_table(
            ["Memory Steps", "cooperation per seed", "mean"],
            rows,
            title=(
                "Extension study - played cooperation vs memory depth"
                f" ({self.n_ssets} SSets, {self.generations} generations,"
                f" seeds {list(self.seeds)})"
            ),
        )


def _played_cooperation(population, config: SimulationConfig, seed: int) -> float:
    """Cooperation rate of the final population's full round robin."""
    matrix = population.matrix()
    engine = make_engine(config.space, payoff=config.payoff,
                         rounds=config.rounds, noise=config.noise,
                         kind=config.resolved_engine, jit=config.engine_jit)
    ia, ib = engine.round_robin_pairs(matrix.shape[0])
    result = engine.play(
        matrix, ia, ib, rng=np.random.default_rng(seed), record_cooperation=True
    )
    return result.cooperation_rate()


def run_memory_cooperation(
    memories: tuple[int, ...] = (1, 2, 3),
    n_ssets: int = 16,
    generations: int = 20_000,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    noise_rate: float = 0.02,
) -> MemoryCooperationResult:
    """Run the study.  Memory > 3 works but the exact-fitness evaluator's
    cost grows with ``4**memory``; expect minutes, not seconds, beyond 3.
    """
    if not memories or not seeds:
        raise ExperimentError("need at least one memory depth and one seed")
    rates: dict[int, list[float]] = {}
    for memory in memories:
        rates[memory] = []
        for seed in seeds:
            config = SimulationConfig(
                memory=memory,
                n_ssets=n_ssets,
                generations=generations,
                seed=seed,
                strategy_kind="pure",
                fitness_mode="expected",
                noise=NoiseModel(noise_rate),
                pc_rate=0.2,
                mutation_rate=0.05,
                beta=0.1,
            )
            driver = EvolutionDriver(config)
            driver.run()
            rates[memory].append(_played_cooperation(driver.population, config, seed))
    return MemoryCooperationResult(
        rates=rates, generations=generations, n_ssets=n_ssets, seeds=tuple(seeds)
    )
