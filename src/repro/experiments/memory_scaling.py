"""Memory-step study: Table VI, Figure 3, Figure 4.

The paper times the full simulation of 1,024 SSets for 1,000 generations
(PC rate 0.01) at memory one through six on 128..2,048 Blue Gene/L
processors.  Table VI lists the runtimes; Fig. 3 the strong-scaling
efficiency per memory depth (nearly unaffected by memory); Fig. 4 the
runtime growth with memory steps — which the paper attributes to per-round
state identification.

Two modes are produced here:

* **modelled** — the analytic model with the paper-fitted Blue Gene/L
  constants regenerates the published table at the published scale;
* **measured** — the same study, physically executed by this package's
  engines at reduced scale, with constants from live calibration.  Both
  lookup and incremental engines run, which is the Fig. 4 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import render_table
from repro.errors import ExperimentError
from repro.machine.bluegene import MachineSpec, bluegene_l
from repro.perf.analytic import AnalyticModel
from repro.perf.cost_model import CostModel, paper_bgl
from repro.perf.scaling import ScalingPoint, strong_scaling
from repro.perf.workload import WorkloadSpec

__all__ = ["MemoryScalingResult", "run_table6", "run_fig3", "run_fig4"]

#: Processor counts of the paper's small-scale studies.
PAPER_PROC_COUNTS = (128, 256, 512, 1024, 2048)

#: The published Table VI, seconds (memory -> per processor count).
PAPER_TABLE6 = {
    1: (26.5, 13.6, 5.9, 4.59, 4.04),
    2: (2207, 1106, 552, 442, 277),
    3: (2401, 1206, 605, 478, 305),
    4: (3079, 1581, 824, 732, 420),
    5: (7903, 4011, 2007, 1829, 1005),
    6: (8690, 4367, 2188, 2054, 1097),
}


@dataclass(frozen=True)
class MemoryScalingResult:
    """Modelled runtimes per memory depth and processor count.

    Attributes
    ----------
    proc_counts:
        The swept processor counts.
    seconds:
        memory -> tuple of modelled runtimes aligned with ``proc_counts``.
    efficiency:
        memory -> strong-scaling efficiency per processor count (Fig. 3).
    paper_seconds:
        The published Table VI for side-by-side printing.
    """

    proc_counts: tuple[int, ...]
    seconds: dict[int, tuple[float, ...]]
    efficiency: dict[int, tuple[float, ...]]
    paper_seconds: dict[int, tuple[float, ...]] = field(default_factory=dict)

    def render_table6(self) -> str:
        """Side-by-side modelled vs published Table VI."""
        rows = []
        for mem in sorted(self.seconds):
            rows.append(
                (f"memory-{mem} (model)", *[f"{t:.1f}" for t in self.seconds[mem]])
            )
            if mem in self.paper_seconds:
                rows.append(
                    (f"memory-{mem} (paper)", *[f"{t:g}" for t in self.paper_seconds[mem]])
                )
        return render_table(
            ["Memory Steps", *[str(p) for p in self.proc_counts]],
            rows,
            title="Table VI - runtime (s), 1,024 SSets, 1,000 generations",
        )

    def render_fig3(self) -> str:
        """Fig. 3: strong-scaling efficiency per memory depth."""
        rows = [
            (f"memory-{mem}", *[f"{e:.2f}" for e in self.efficiency[mem]])
            for mem in sorted(self.efficiency)
        ]
        return render_table(
            ["Memory Steps", *[str(p) for p in self.proc_counts]],
            rows,
            title="Fig. 3 - strong-scaling parallel efficiency",
        )

    def render_fig4(self, procs: int = 128) -> str:
        """Fig. 4: runtime vs memory steps at one processor count."""
        if procs not in self.proc_counts:
            raise ExperimentError(f"procs {procs} not in sweep {self.proc_counts}")
        idx = self.proc_counts.index(procs)
        rows = [(f"memory-{mem}", f"{self.seconds[mem][idx]:.1f}") for mem in sorted(self.seconds)]
        return render_table(
            ["Memory Steps", f"seconds @ {procs} procs"],
            rows,
            title="Fig. 4 - runtime vs memory steps",
        )


def run_table6(
    machine: MachineSpec | None = None,
    costs: CostModel | None = None,
    memories: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    proc_counts: tuple[int, ...] = PAPER_PROC_COUNTS,
    engine: str = "lookup",
) -> MemoryScalingResult:
    """Model the Table VI sweep (defaults: paper-fitted BG/L constants)."""
    machine = machine or bluegene_l()
    costs = costs or paper_bgl()
    model = AnalyticModel(machine, costs, engine=engine)
    seconds: dict[int, tuple[float, ...]] = {}
    efficiency: dict[int, tuple[float, ...]] = {}
    for mem in memories:
        workload = WorkloadSpec.paper_memory_study(mem)
        points: list[ScalingPoint] = strong_scaling(model, workload, list(proc_counts))
        seconds[mem] = tuple(pt.seconds for pt in points)
        efficiency[mem] = tuple(pt.efficiency for pt in points)
    paper = {m: PAPER_TABLE6[m] for m in memories if m in PAPER_TABLE6}
    return MemoryScalingResult(
        proc_counts=tuple(proc_counts),
        seconds=seconds,
        efficiency=efficiency,
        paper_seconds=paper,
    )


def run_fig3(**kwargs) -> MemoryScalingResult:
    """Fig. 3 shares Table VI's sweep."""
    return run_table6(**kwargs)


def run_fig4(**kwargs) -> MemoryScalingResult:
    """Fig. 4 shares Table VI's sweep."""
    return run_table6(**kwargs)
