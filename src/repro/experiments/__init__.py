"""Experiment drivers: one per table/figure of the paper's evaluation.

* :mod:`repro.experiments.tables` — Tables I, II, III, IV, V, VIII.
* :mod:`repro.experiments.validation_wsls` — Fig. 2 (WSLS emergence).
* :mod:`repro.experiments.memory_scaling` — Table VI, Figs. 3-4.
* :mod:`repro.experiments.population_scaling` — Table VII, Fig. 5.
* :mod:`repro.experiments.large_scale` — Figs. 6-7, §VI-D.
* :mod:`repro.experiments.measured` — live-measured variants and ablations.
* :mod:`repro.experiments.registry` — the machine-readable experiment index.
* :mod:`repro.experiments.cli` — the ``repro-experiment`` command.
"""

from repro.experiments.registry import EXPERIMENTS, ExperimentInfo, experiment_ids

__all__ = ["EXPERIMENTS", "ExperimentInfo", "experiment_ids"]
