"""The paper's small tables (I, II, III, IV, V, VIII) as renderable data.

Each function returns the rows plus a text rendering, so the corresponding
bench can print the table exactly as the paper frames it and the tests can
assert the values.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.game.payoff import PAPER_PAYOFFS, PayoffMatrix
from repro.game.states import StateSpace
from repro.game.strategy import named_strategy
from repro.game.strategy_space import StrategySpace
from repro.parallel.decomposition import table8_rows

__all__ = [
    "table1_payoff",
    "table2_states",
    "table3_strategies",
    "table4_space_sizes",
    "table5_wsls",
    "table8_agents",
]


def table1_payoff(payoff: PayoffMatrix = PAPER_PAYOFFS) -> str:
    """Table I: the Prisoner's Dilemma payoff matrix with f[R,S,T,P]."""
    r, s, t, p = payoff.as_fRSTP()
    header = f"Table I - Prisoner's Dilemma payoffs, f[R,S,T,P] = [{r:g},{s:g},{t:g},{p:g}]"
    return header + "\n" + payoff.render()


def table2_states() -> tuple[list[tuple[int, str, str]], str]:
    """Table II: the four memory-one states."""
    rows = StateSpace(1).table2()
    text = render_table(
        ["State", "Agent", "Opponent"], rows, title="Table II - memory-one states"
    )
    return rows, text


def table3_strategies() -> tuple[list[tuple[int, str, str, str, str]], str]:
    """Table III: all sixteen memory-one pure strategies."""
    rows = StrategySpace(1).table3_rows()
    text = render_table(
        ["Strategy", "State1", "State2", "State3", "State4"],
        rows,
        title="Table III - all memory-one pure strategies",
    )
    return rows, text


def table4_space_sizes() -> tuple[list[tuple[int, str]], str]:
    """Table IV: pure-strategy counts for memory one through six."""
    rows = StrategySpace.table4_rows()
    text = render_table(
        ["Memory Steps", "Number of Strategies"],
        rows,
        title="Table IV - strategy-space size",
    )
    return rows, text


def table5_wsls() -> tuple[list[tuple[int, str, int]], str]:
    """Table V: the WSLS strategy in the paper's state order (00, 01, 11, 10)."""
    from repro.game.states import PAPER_TABLE5_STATE_ORDER

    wsls = named_strategy("WSLS")
    rows = []
    for row_idx, state in enumerate(PAPER_TABLE5_STATE_ORDER):
        rows.append((row_idx, f"{state >> 1 & 1}{state & 1}", int(wsls.table[state])))
    text = render_table(
        ["State of Previous Round", "Current State", "Strategy"],
        rows,
        title="Table V - WSLS for memory-one (paper state order)",
    )
    return rows, text


def table8_agents() -> tuple[list[tuple[int, list[int]]], str]:
    """Table VIII (self-consistent): agents per processor.

    The published table is internally inconsistent (values rise between the
    256- and 1,024-processor columns); we print
    ``agents/processor = ceil(SSets^2 / processors)`` per the paper's
    agents-per-SSet = SSets rule.
    """
    rows = table8_rows()
    proc_counts = (256, 512, 1024, 2048)
    flat = [(s, *vals) for s, vals in rows]
    text = render_table(
        ["Nbr of SSets", *[str(p) for p in proc_counts]],
        flat,
        title="Table VIII - agents per processor (= ceil(SSets^2 / processors))",
    )
    return rows, text
