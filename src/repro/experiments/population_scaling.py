"""Population-size study: Table VII and Figure 5.

The paper times full runs while sweeping the SSet count from 1,024 to
32,768 on 256..2,048 Blue Gene/L processors; runtime grows with the square
of the SSet count (every SSet plays every other), and parallel efficiency
*improves* with population size because per-rank computation grows against
a fixed communication/bookkeeping floor.

The model uses constants fitted to Table VII's smallest cell only — the
rest of the published grid is then *predicted* (within a few percent; see
the bench output).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import render_table
from repro.machine.bluegene import MachineSpec, bluegene_l
from repro.perf.analytic import AnalyticModel
from repro.perf.cost_model import CostModel, paper_bgl_population
from repro.perf.scaling import strong_scaling
from repro.perf.workload import WorkloadSpec

__all__ = ["PopulationScalingResult", "run_table7", "run_fig5"]

#: Processor counts of the paper's population study.
PAPER_PROC_COUNTS = (256, 512, 1024, 2048)

#: SSet counts of the paper's population study.
PAPER_SSET_COUNTS = (1024, 2048, 4096, 8192, 16384, 32768)

#: The published Table VII, seconds.
PAPER_TABLE7 = {
    1024: (5.61, 3.18, 1.86, 1.29),
    2048: (22.7, 11.7, 6.7, 4.3),
    4096: (90.5, 47.9, 24.2, 12.2),
    8192: (360, 179.7, 88.9, 48.4),
    16384: (1502, 699, 344, 190),
    32768: (5785, 2861, 1430, 736),
}


@dataclass(frozen=True)
class PopulationScalingResult:
    """Modelled runtimes and efficiencies per SSet count.

    Attributes
    ----------
    proc_counts:
        Swept processor counts.
    seconds:
        n_ssets -> modelled runtimes aligned with ``proc_counts``.
    efficiency:
        n_ssets -> strong-scaling efficiency (Fig. 5).
    paper_seconds:
        The published Table VII for side-by-side printing.
    """

    proc_counts: tuple[int, ...]
    seconds: dict[int, tuple[float, ...]]
    efficiency: dict[int, tuple[float, ...]]
    paper_seconds: dict[int, tuple[float, ...]] = field(default_factory=dict)

    def render_table7(self) -> str:
        """Side-by-side modelled vs published Table VII."""
        rows = []
        for n in sorted(self.seconds):
            rows.append((f"{n} SSets (model)", *[f"{t:.1f}" for t in self.seconds[n]]))
            if n in self.paper_seconds:
                rows.append((f"{n} SSets (paper)", *[f"{t:g}" for t in self.paper_seconds[n]]))
        return render_table(
            ["Nbr of SSets", *[str(p) for p in self.proc_counts]],
            rows,
            title="Table VII - runtime (s) as the number of SSets is increased",
        )

    def render_fig5(self) -> str:
        """Fig. 5: efficiency improves with population size."""
        rows = [
            (f"{n} SSets", *[f"{e:.2f}" for e in self.efficiency[n]])
            for n in sorted(self.efficiency)
        ]
        return render_table(
            ["Nbr of SSets", *[str(p) for p in self.proc_counts]],
            rows,
            title="Fig. 5 - strong scaling vs population size",
        )


def run_table7(
    machine: MachineSpec | None = None,
    costs: CostModel | None = None,
    sset_counts: tuple[int, ...] = PAPER_SSET_COUNTS,
    proc_counts: tuple[int, ...] = PAPER_PROC_COUNTS,
) -> PopulationScalingResult:
    """Model the Table VII sweep (defaults: Table-VII-fitted BG/L constants)."""
    machine = machine or bluegene_l()
    costs = costs or paper_bgl_population()
    model = AnalyticModel(machine, costs)
    seconds: dict[int, tuple[float, ...]] = {}
    efficiency: dict[int, tuple[float, ...]] = {}
    for n in sset_counts:
        workload = WorkloadSpec.paper_population_study(n)
        points = strong_scaling(model, workload, list(proc_counts))
        seconds[n] = tuple(pt.seconds for pt in points)
        efficiency[n] = tuple(pt.efficiency for pt in points)
    paper = {n: PAPER_TABLE7[n] for n in sset_counts if n in PAPER_TABLE7}
    return PopulationScalingResult(
        proc_counts=tuple(proc_counts),
        seconds=seconds,
        efficiency=efficiency,
        paper_seconds=paper,
    )


def run_fig5(**kwargs) -> PopulationScalingResult:
    """Fig. 5 shares Table VII's sweep."""
    return run_table7(**kwargs)
