"""Command-line entry point: ``repro-experiment``.

``repro-experiment list`` shows every registered paper artefact;
``repro-experiment run <id>`` regenerates one and prints it.  The heavier
science run (fig2) takes flags for scale, so the full paper-sized study is
one command away from the scaled default.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import render_table
from repro.experiments.registry import EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate the tables and figures of the SC 2012 paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all registered experiments")

    run = sub.add_parser("run", help="run one experiment and print its output")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run.add_argument("--n-ssets", type=int, default=None, help="population size (fig2)")
    run.add_argument("--generations", type=int, default=None, help="generations (fig2)")
    run.add_argument("--seed", type=int, default=None, help="random seed (fig2)")
    run.add_argument(
        "--engine",
        choices=("auto", "vector", "batch"),
        default=None,
        help="game engine for config-driven runs (fig2); see docs/kernels.md",
    )

    everything = sub.add_parser(
        "all", help="regenerate every fast artefact into a directory"
    )
    everything.add_argument(
        "--output-dir", default="reproduction", help="directory for <id>.txt files"
    )
    everything.add_argument(
        "--include-slow",
        action="store_true",
        help="also run the multi-minute science studies (fig2, memory-cooperation,"
        " ablation-lookup)",
    )
    return parser


def _run_experiment(args: argparse.Namespace) -> str:
    eid = args.experiment
    if eid == "table1":
        from repro.experiments.tables import table1_payoff

        return table1_payoff()
    if eid == "table2":
        from repro.experiments.tables import table2_states

        return table2_states()[1]
    if eid == "table3":
        from repro.experiments.tables import table3_strategies

        return table3_strategies()[1]
    if eid == "table4":
        from repro.experiments.tables import table4_space_sizes

        return table4_space_sizes()[1]
    if eid == "table5":
        from repro.experiments.tables import table5_wsls

        return table5_wsls()[1]
    if eid == "table8":
        from repro.experiments.tables import table8_agents

        return table8_agents()[1]
    if eid == "fig2":
        from repro.experiments.validation_wsls import (
            run_wsls_validation,
            wsls_validation_config,
        )

        overrides = {}
        if args.n_ssets is not None:
            overrides["n_ssets"] = args.n_ssets
        if args.generations is not None:
            overrides["generations"] = args.generations
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.engine is not None:
            overrides["engine"] = args.engine
        return run_wsls_validation(wsls_validation_config(**overrides)).render()
    if eid in ("table6", "fig3", "fig4"):
        from repro.experiments.memory_scaling import run_table6

        result = run_table6()
        if eid == "table6":
            return result.render_table6()
        if eid == "fig3":
            return result.render_fig3()
        return result.render_fig4()
    if eid in ("table7", "fig5"):
        from repro.experiments.population_scaling import run_table7

        result = run_table7()
        return result.render_table7() if eid == "table7" else result.render_fig5()
    if eid == "fig6":
        from repro.experiments.large_scale import run_fig6_weak_scaling

        return run_fig6_weak_scaling().render()
    if eid == "fig7":
        from repro.experiments.large_scale import run_fig7_strong_scaling

        return run_fig7_strong_scaling().render()
    if eid == "nonpow2":
        from repro.experiments.large_scale import run_nonpow2_discussion

        result, drop = run_nonpow2_discussion()
        return result.render() + f"\nmodelled efficiency drop at 294,912: {drop:.1%} (paper: ~15%)"
    if eid == "ablation-lookup":
        from repro.experiments.measured import measure_memory_runtime

        return measure_memory_runtime().render()
    if eid == "heterogeneous":
        from repro.analysis.report import render_table
        from repro.machine.bluegene import bluegene_l
        from repro.perf.cost_model import paper_bgl
        from repro.perf.heterogeneous import GPU_2012, hybrid_speedup_by_memory

        rows = [
            (f"memory-{m}", f"{h:.1f}", f"{y:.1f}", f"{s:.2f}x")
            for m, h, y, s in hybrid_speedup_by_memory(
                bluegene_l(), paper_bgl(), GPU_2012, 128
            )
        ]
        return render_table(
            ["workload @ 128p", "host (s)", "hybrid (s)", "speedup"],
            rows,
            title="Modelled GPU-CPU hybrid (paper future work)",
        )
    if eid == "memory-cooperation":
        from repro.experiments.memory_cooperation import run_memory_cooperation

        return run_memory_cooperation(seeds=(1, 2, 3)).render()
    if eid == "wsls-robustness":
        from repro.experiments.sweeps import wsls_robustness_sweep

        return wsls_robustness_sweep().render()
    if eid == "ablation-mapping":
        from repro.analysis.report import render_table
        from repro.machine.mapping import compare_mappings

        rows = [
            (m.name, f"{m.mean_consecutive_hops:.2f}", m.max_consecutive_hops,
             f"{m.mean_hops_to_nature:.2f}")
            for m in compare_mappings(1152)
        ]
        return render_table(
            ["mapping", "mean hops r->r+1", "max hops r->r+1", "mean hops to Nature"],
            rows,
            title="Rank mappings on a 1,152-node torus (paper future work)",
        )
    raise SystemExit(f"unknown experiment {eid}")  # pragma: no cover - argparse guards


#: Experiments that take minutes; `all` skips them unless --include-slow.
SLOW_EXPERIMENTS = {"fig2", "memory-cooperation", "ablation-lookup", "wsls-robustness"}


def _run_all(args: argparse.Namespace) -> int:
    from pathlib import Path

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    run_parser = build_parser()
    for eid in EXPERIMENTS:
        if eid in SLOW_EXPERIMENTS and not args.include_slow:
            print(f"[skip] {eid} (slow; pass --include-slow)")
            continue
        sub_args = run_parser.parse_args(["run", eid])
        text = _run_experiment(sub_args)
        (out_dir / f"{eid}.txt").write_text(text + "\n")
        print(f"[done] {eid} -> {out_dir / (eid + '.txt')}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        rows = [
            (e.experiment_id, e.paper_ref, e.mode, e.title) for e in EXPERIMENTS.values()
        ]
        print(render_table(["id", "paper", "mode", "title"], rows))
        return 0
    if args.command == "all":
        return _run_all(args)
    print(_run_experiment(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
