"""Command-line entry point: ``repro-experiment``.

``repro-experiment list`` shows every registered paper artefact;
``repro-experiment run <id>`` regenerates one and prints it.  The heavier
science run (fig2) takes flags for scale, so the full paper-sized study is
one command away from the scaled default.

Dispatch is a table keyed by experiment id (:data:`DISPATCH`) kept in
lock-step with the registry — the drift test asserts the two sets are
equal, so registering an experiment without teaching the CLI about it (or
vice versa) fails fast instead of surfacing as a runtime ``KeyError``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis.report import render_table
from repro.experiments.registry import EXPERIMENTS

# DISPATCH and SLOW_EXPERIMENTS stay importable but out of __all__: their
# reprs (function addresses, set ordering) would make docs/api.md unstable.
__all__ = [
    "main",
    "build_parser",
    "CONFIG_FLAG_EXPERIMENTS",
]

#: Experiments that take minutes; ``all`` skips them unless --include-slow.
SLOW_EXPERIMENTS = {"fig2", "memory-cooperation", "ablation-lookup", "wsls-robustness"}

#: Experiments that actually consume the ``run`` scale flags
#: (--n-ssets/--generations/--seed/--engine).  Passing those flags to any
#: other experiment is an error, not a silent no-op.
CONFIG_FLAG_EXPERIMENTS = {"fig2"}

#: The ``run`` scale flags, as (argparse dest, flag spelling).
_SCALE_FLAGS = (
    ("n_ssets", "--n-ssets"),
    ("generations", "--generations"),
    ("seed", "--seed"),
    ("engine", "--engine"),
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate the tables and figures of the SC 2012 paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all registered experiments")

    run = sub.add_parser("run", help="run one experiment and print its output")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run.add_argument("--n-ssets", type=int, default=None, help="population size (fig2)")
    run.add_argument("--generations", type=int, default=None, help="generations (fig2)")
    run.add_argument("--seed", type=int, default=None, help="random seed (fig2)")
    run.add_argument(
        "--engine",
        choices=("auto", "vector", "batch"),
        default=None,
        help="game engine for config-driven runs (fig2); see docs/kernels.md",
    )

    everything = sub.add_parser(
        "all", help="regenerate every fast artefact into a directory"
    )
    everything.add_argument(
        "--output-dir", default="reproduction", help="directory for <id>.txt files"
    )
    everything.add_argument(
        "--include-slow",
        action="store_true",
        help="also run the multi-minute science studies"
        f" ({', '.join(sorted(SLOW_EXPERIMENTS))})",
    )
    return parser


# -- per-experiment runners ----------------------------------------------------
# Each takes the parsed ``run`` namespace and returns the rendered artefact.


def _run_table1(args: argparse.Namespace) -> str:
    from repro.experiments.tables import table1_payoff

    return table1_payoff()


def _run_table2(args: argparse.Namespace) -> str:
    from repro.experiments.tables import table2_states

    return table2_states()[1]


def _run_table3(args: argparse.Namespace) -> str:
    from repro.experiments.tables import table3_strategies

    return table3_strategies()[1]


def _run_table4(args: argparse.Namespace) -> str:
    from repro.experiments.tables import table4_space_sizes

    return table4_space_sizes()[1]


def _run_table5(args: argparse.Namespace) -> str:
    from repro.experiments.tables import table5_wsls

    return table5_wsls()[1]


def _run_table8(args: argparse.Namespace) -> str:
    from repro.experiments.tables import table8_agents

    return table8_agents()[1]


def _run_fig2(args: argparse.Namespace) -> str:
    from repro.experiments.validation_wsls import (
        run_wsls_validation,
        wsls_validation_config,
    )

    overrides = {
        dest: getattr(args, dest)
        for dest, _flag in _SCALE_FLAGS
        if getattr(args, dest, None) is not None
    }
    return run_wsls_validation(wsls_validation_config(**overrides)).render()


def _run_memory_scaling(args: argparse.Namespace) -> str:
    from repro.experiments.memory_scaling import run_table6

    result = run_table6()
    if args.experiment == "table6":
        return result.render_table6()
    if args.experiment == "fig3":
        return result.render_fig3()
    return result.render_fig4()


def _run_population_scaling(args: argparse.Namespace) -> str:
    from repro.experiments.population_scaling import run_table7

    result = run_table7()
    return result.render_table7() if args.experiment == "table7" else result.render_fig5()


def _run_fig6(args: argparse.Namespace) -> str:
    from repro.experiments.large_scale import run_fig6_weak_scaling

    return run_fig6_weak_scaling().render()


def _run_fig7(args: argparse.Namespace) -> str:
    from repro.experiments.large_scale import run_fig7_strong_scaling

    return run_fig7_strong_scaling().render()


def _run_nonpow2(args: argparse.Namespace) -> str:
    from repro.experiments.large_scale import run_nonpow2_discussion

    result, drop = run_nonpow2_discussion()
    return result.render() + (
        f"\nmodelled efficiency drop at 294,912: {drop:.1%} (paper: ~15%)"
    )


def _run_ablation_lookup(args: argparse.Namespace) -> str:
    from repro.experiments.measured import measure_memory_runtime

    return measure_memory_runtime().render()


def _run_heterogeneous(args: argparse.Namespace) -> str:
    from repro.machine.bluegene import bluegene_l
    from repro.perf.cost_model import paper_bgl
    from repro.perf.heterogeneous import GPU_2012, hybrid_speedup_by_memory

    rows = [
        (f"memory-{m}", f"{h:.1f}", f"{y:.1f}", f"{s:.2f}x")
        for m, h, y, s in hybrid_speedup_by_memory(
            bluegene_l(), paper_bgl(), GPU_2012, 128
        )
    ]
    return render_table(
        ["workload @ 128p", "host (s)", "hybrid (s)", "speedup"],
        rows,
        title="Modelled GPU-CPU hybrid (paper future work)",
    )


def _run_memory_cooperation(args: argparse.Namespace) -> str:
    from repro.experiments.memory_cooperation import run_memory_cooperation

    return run_memory_cooperation(seeds=(1, 2, 3)).render()


def _run_wsls_robustness(args: argparse.Namespace) -> str:
    from repro.experiments.sweeps import wsls_robustness_sweep

    return wsls_robustness_sweep().render()


def _run_spatial_phase(args: argparse.Namespace) -> str:
    from repro.experiments.spatial_phase import run_spatial_phase

    return run_spatial_phase().render()


def _run_spatial_noise(args: argparse.Namespace) -> str:
    from repro.experiments.spatial_phase import run_spatial_noise_phase

    return run_spatial_noise_phase().render()


def _run_ablation_mapping(args: argparse.Namespace) -> str:
    from repro.machine.mapping import compare_mappings

    rows = [
        (m.name, f"{m.mean_consecutive_hops:.2f}", m.max_consecutive_hops,
         f"{m.mean_hops_to_nature:.2f}")
        for m in compare_mappings(1152)
    ]
    return render_table(
        ["mapping", "mean hops r->r+1", "max hops r->r+1", "mean hops to Nature"],
        rows,
        title="Rank mappings on a 1,152-node torus (paper future work)",
    )


#: Experiment id -> runner; the drift test asserts this covers exactly the
#: registry, so the CLI can never silently miss (or invent) an experiment.
DISPATCH: dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "table5": _run_table5,
    "table8": _run_table8,
    "fig2": _run_fig2,
    "table6": _run_memory_scaling,
    "fig3": _run_memory_scaling,
    "fig4": _run_memory_scaling,
    "table7": _run_population_scaling,
    "fig5": _run_population_scaling,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "nonpow2": _run_nonpow2,
    "ablation-lookup": _run_ablation_lookup,
    "heterogeneous": _run_heterogeneous,
    "memory-cooperation": _run_memory_cooperation,
    "wsls-robustness": _run_wsls_robustness,
    "ablation-mapping": _run_ablation_mapping,
    "spatial-phase": _run_spatial_phase,
    "spatial-noise": _run_spatial_noise,
}


def _rejected_scale_flags(args: argparse.Namespace) -> list[str]:
    """The scale flags the user passed that this experiment would ignore."""
    if args.experiment in CONFIG_FLAG_EXPERIMENTS:
        return []
    return [
        flag for dest, flag in _SCALE_FLAGS if getattr(args, dest, None) is not None
    ]


def _run_experiment(args: argparse.Namespace) -> str:
    ignored = _rejected_scale_flags(args)
    if ignored:
        consumers = ", ".join(sorted(CONFIG_FLAG_EXPERIMENTS))
        raise SystemExit(
            f"{args.experiment} does not consume {', '.join(ignored)};"
            f" those flags only apply to config-driven experiments ({consumers})"
        )
    runner = DISPATCH.get(args.experiment)
    if runner is None:  # pragma: no cover - argparse choices guard this
        raise SystemExit(f"unknown experiment {args.experiment}")
    return runner(args)


def _run_all(args: argparse.Namespace) -> int:
    from pathlib import Path

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    run_parser = build_parser()
    failed: list[tuple[str, str]] = []
    for eid in EXPERIMENTS:
        if eid in SLOW_EXPERIMENTS and not args.include_slow:
            print(f"[skip] {eid} (slow; pass --include-slow)")
            continue
        sub_args = run_parser.parse_args(["run", eid])
        try:
            text = _run_experiment(sub_args)
        except Exception as exc:  # noqa: BLE001 - one failure must not stop the rest
            failed.append((eid, f"{type(exc).__name__}: {exc}"))
            print(f"[FAIL] {eid}: {type(exc).__name__}: {exc}", file=sys.stderr)
            continue
        (out_dir / f"{eid}.txt").write_text(text + "\n")
        print(f"[done] {eid} -> {out_dir / (eid + '.txt')}")
    if failed:
        ids = ", ".join(eid for eid, _ in failed)
        print(f"{len(failed)} experiment(s) failed: {ids}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        rows = [
            (e.experiment_id, e.paper_ref, e.mode, e.title) for e in EXPERIMENTS.values()
        ]
        print(render_table(["id", "paper", "mode", "title"], rows))
        return 0
    if args.command == "all":
        return _run_all(args)
    print(_run_experiment(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
