"""The collective tree network model.

Blue Gene carries broadcasts and reductions on a dedicated hardware tree
(the "collectives network"): every node is a vertex of a spanning tree, and
a broadcast flows down it paying one level latency per tree level plus
serialisation at the tree link bandwidth.  The paper uses this network for
all Nature-Agent-to-everyone traffic: the initial setup, PC-pair
announcements, mutation announcements, and global strategy updates.

Model::

    bcast(P, n)  = overhead + depth(P) * level_latency + n / bandwidth
    reduce(P, n) = same shape (the tree combines on the way up)

with ``depth(P) = ceil(log2 P)`` — the hardware tree is roughly binary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MachineModelError

__all__ = ["CollectiveTreeNetwork"]


@dataclass(frozen=True)
class CollectiveTreeNetwork:
    """Tree-network costs for broadcast/reduce/barrier over ``P`` nodes.

    Parameters
    ----------
    bandwidth:
        Payload bandwidth through the tree, bytes/second.
    level_latency:
        Per-tree-level forwarding latency, seconds.
    software_overhead:
        Fixed per-operation software cost, seconds.
    """

    bandwidth: float
    level_latency: float
    software_overhead: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise MachineModelError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.level_latency < 0 or self.software_overhead < 0:
            raise MachineModelError("latencies must be non-negative")

    @staticmethod
    def depth(n_nodes: int) -> int:
        """Tree depth reaching ``n_nodes`` nodes (0 for a single node)."""
        if n_nodes < 1:
            raise MachineModelError(f"n_nodes must be >= 1, got {n_nodes}")
        return math.ceil(math.log2(n_nodes)) if n_nodes > 1 else 0

    def bcast_time(self, n_nodes: int, nbytes: int) -> float:
        """Broadcast ``nbytes`` from the root to all ``n_nodes`` nodes."""
        if nbytes < 0:
            raise MachineModelError(f"nbytes must be non-negative, got {nbytes}")
        if n_nodes <= 1:
            return 0.0
        return (
            self.software_overhead
            + self.depth(n_nodes) * self.level_latency
            + nbytes / self.bandwidth
        )

    def reduce_time(self, n_nodes: int, nbytes: int) -> float:
        """Combine ``nbytes`` contributions from all nodes up to the root."""
        return self.bcast_time(n_nodes, nbytes)

    def allreduce_time(self, n_nodes: int, nbytes: int) -> float:
        """Reduce followed by broadcast of the result."""
        return self.reduce_time(n_nodes, nbytes) + self.bcast_time(n_nodes, nbytes)

    def barrier_time(self, n_nodes: int) -> float:
        """Zero-payload allreduce."""
        return self.allreduce_time(n_nodes, 0)
