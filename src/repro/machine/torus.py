"""The 3-D torus interconnect model.

Blue Gene's point-to-point traffic rides a 3-D torus: each node links to six
neighbours; a message to a distant node is cut through along a shortest
route, paying a per-hop latency plus serialisation at the link bandwidth.
The paper returns SSet fitnesses to the Nature Agent over this network with
non-blocking point-to-point messages.

The model prices one message as::

    time = software_overhead + hops * hop_latency + nbytes / link_bandwidth

which is the standard latency/bandwidth ("alpha-beta") model with a
distance term — sufficient to capture the paper's observation that mapping
quality (hops) matters while staying analytic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import MachineModelError
from repro.mpi.topology import CartTopology

__all__ = ["PartitionTraffic", "TorusNetwork"]


@dataclass(frozen=True)
class PartitionTraffic:
    """Modelled per-generation halo traffic of one graph partition.

    Attributes
    ----------
    n_messages:
        Point-to-point messages per exchange (one per directed rank pair
        that shares a cut edge).
    total_bytes:
        Bytes crossing rank boundaries per exchange.
    total_hops:
        Torus hops summed over all messages — the network-load proxy the
        paper's mapping discussion optimises.
    total_time:
        Modelled serial transfer time of all messages, seconds.
    max_rank_time:
        Modelled transfer time of the busiest sender, seconds — the
        per-generation critical path when every rank exchanges its halo
        concurrently.
    """

    n_messages: int
    total_bytes: int
    total_hops: int
    total_time: float
    max_rank_time: float


@dataclass(frozen=True)
class TorusNetwork:
    """A 3-D (or any-D) torus with uniform links.

    Parameters
    ----------
    topology:
        Rank layout (dims and wrap behaviour).
    link_bandwidth:
        Per-link bandwidth, bytes/second.
    hop_latency:
        Router transit time per hop, seconds.
    software_overhead:
        Fixed per-message send+receive software cost, seconds.
    """

    topology: CartTopology
    link_bandwidth: float
    hop_latency: float
    software_overhead: float

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise MachineModelError(f"link_bandwidth must be positive, got {self.link_bandwidth}")
        if self.hop_latency < 0 or self.software_overhead < 0:
            raise MachineModelError("latencies must be non-negative")

    @property
    def size(self) -> int:
        """Number of nodes on the torus."""
        return self.topology.size

    def message_time(self, src: int, dst: int, nbytes: int) -> float:
        """Transfer time of one ``nbytes`` message from ``src`` to ``dst``."""
        if nbytes < 0:
            raise MachineModelError(f"nbytes must be non-negative, got {nbytes}")
        if src == dst:
            return 0.0
        hops = self.topology.hop_distance(src, dst)
        return self.software_overhead + hops * self.hop_latency + nbytes / self.link_bandwidth

    def message_time_hops(self, hops: int, nbytes: int) -> float:
        """Transfer time for a message travelling a known hop count."""
        if hops < 0 or nbytes < 0:
            raise MachineModelError("hops and nbytes must be non-negative")
        if hops == 0:
            return 0.0
        return self.software_overhead + hops * self.hop_latency + nbytes / self.link_bandwidth

    def average_message_time(self, src: int, nbytes: int) -> float:
        """Mean transfer time from ``src`` to a uniformly random other node."""
        avg_hops = self.topology.average_hops_from(src) * self.size / max(1, self.size - 1)
        return self.software_overhead + avg_hops * self.hop_latency + nbytes / self.link_bandwidth

    def worst_case_message_time(self, nbytes: int) -> float:
        """Transfer time across the network diameter."""
        return self.message_time_hops(max(1, self.topology.max_hop_distance()), nbytes)

    def partition_traffic(
        self,
        halo_counts: Mapping[tuple[int, int], int],
        bytes_per_item: int,
        placement: Sequence[int] | None = None,
    ) -> PartitionTraffic:
        """Price one halo exchange of a partitioned interaction graph.

        ``halo_counts`` maps directed rank pairs ``(src, dst)`` to the
        number of boundary items ``src`` ships ``dst`` per exchange — the
        shape :meth:`repro.spatial.graph.InteractionGraph.halo_counts`
        produces for a block partition.  ``bytes_per_item`` sizes one item
        on the wire (e.g. 8 for an int64 strategy).  ``placement`` maps
        each partition rank to its torus node (identity by default), so
        alternative mappings can be compared before running anything live.
        """
        if bytes_per_item <= 0:
            raise MachineModelError(
                f"bytes_per_item must be positive, got {bytes_per_item}"
            )
        n_messages = 0
        total_bytes = 0
        total_hops = 0
        total_time = 0.0
        per_rank: dict[int, float] = {}
        for (src, dst), count in sorted(halo_counts.items()):
            if count < 0:
                raise MachineModelError(f"halo count for {(src, dst)} is negative")
            if src == dst or count == 0:
                continue
            node_src = placement[src] if placement is not None else src
            node_dst = placement[dst] if placement is not None else dst
            for node in (node_src, node_dst):
                if not 0 <= node < self.size:
                    raise MachineModelError(
                        f"placement maps rank to node {node}, outside this"
                        f" {self.size}-node torus"
                    )
            nbytes = count * bytes_per_item
            hops = self.topology.hop_distance(node_src, node_dst)
            t = self.message_time_hops(hops, nbytes) if node_src != node_dst else 0.0
            n_messages += 1
            total_bytes += nbytes
            total_hops += hops
            total_time += t
            per_rank[src] = per_rank.get(src, 0.0) + t
        return PartitionTraffic(
            n_messages=n_messages,
            total_bytes=total_bytes,
            total_hops=total_hops,
            total_time=total_time,
            max_rank_time=max(per_rank.values(), default=0.0),
        )
