"""The 3-D torus interconnect model.

Blue Gene's point-to-point traffic rides a 3-D torus: each node links to six
neighbours; a message to a distant node is cut through along a shortest
route, paying a per-hop latency plus serialisation at the link bandwidth.
The paper returns SSet fitnesses to the Nature Agent over this network with
non-blocking point-to-point messages.

The model prices one message as::

    time = software_overhead + hops * hop_latency + nbytes / link_bandwidth

which is the standard latency/bandwidth ("alpha-beta") model with a
distance term — sufficient to capture the paper's observation that mapping
quality (hops) matters while staying analytic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineModelError
from repro.mpi.topology import CartTopology

__all__ = ["TorusNetwork"]


@dataclass(frozen=True)
class TorusNetwork:
    """A 3-D (or any-D) torus with uniform links.

    Parameters
    ----------
    topology:
        Rank layout (dims and wrap behaviour).
    link_bandwidth:
        Per-link bandwidth, bytes/second.
    hop_latency:
        Router transit time per hop, seconds.
    software_overhead:
        Fixed per-message send+receive software cost, seconds.
    """

    topology: CartTopology
    link_bandwidth: float
    hop_latency: float
    software_overhead: float

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise MachineModelError(f"link_bandwidth must be positive, got {self.link_bandwidth}")
        if self.hop_latency < 0 or self.software_overhead < 0:
            raise MachineModelError("latencies must be non-negative")

    @property
    def size(self) -> int:
        """Number of nodes on the torus."""
        return self.topology.size

    def message_time(self, src: int, dst: int, nbytes: int) -> float:
        """Transfer time of one ``nbytes`` message from ``src`` to ``dst``."""
        if nbytes < 0:
            raise MachineModelError(f"nbytes must be non-negative, got {nbytes}")
        if src == dst:
            return 0.0
        hops = self.topology.hop_distance(src, dst)
        return self.software_overhead + hops * self.hop_latency + nbytes / self.link_bandwidth

    def message_time_hops(self, hops: int, nbytes: int) -> float:
        """Transfer time for a message travelling a known hop count."""
        if hops < 0 or nbytes < 0:
            raise MachineModelError("hops and nbytes must be non-negative")
        if hops == 0:
            return 0.0
        return self.software_overhead + hops * self.hop_latency + nbytes / self.link_bandwidth

    def average_message_time(self, src: int, nbytes: int) -> float:
        """Mean transfer time from ``src`` to a uniformly random other node."""
        avg_hops = self.topology.average_hops_from(src) * self.size / max(1, self.size - 1)
        return self.software_overhead + avg_hops * self.hop_latency + nbytes / self.link_bandwidth

    def worst_case_message_time(self, nbytes: int) -> float:
        """Transfer time across the network diameter."""
        return self.message_time_hops(max(1, self.topology.max_hop_distance()), nbytes)
