"""Complete Blue Gene machine specifications for the performance model.

A :class:`MachineSpec` bundles a node spec, the torus and collective-tree
network models, and partitioning rules, plus the per-rank memory accounting
the paper leans on (§VI-B-1: the state matrix "must be kept in local
memory, and because the Blue Gene/L has only 512 MB of per-node memory, we
had to limit our tests to memory-six").

Network constants follow the published Blue Gene characteristics: BG/L
torus links ~154 MB/s with ~100 ns per hop, tree ~350 MB/s with ~2.5 us
latency; BG/P torus links ~425 MB/s, tree ~0.82 GB/s with ~5 us round
latency (IBM J. Res. Dev. 52, 2008).  The absolute values matter less than
the structure — the paper asks for curve *shapes*, and those are set by the
latency/bandwidth/log-P terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineModelError
from repro.game.states import StateSpace
from repro.machine.collective_tree import CollectiveTreeNetwork
from repro.machine.node import BGL_NODE, BGP_NODE, NodeSpec
from repro.machine.partition import Partition, partition_shape
from repro.machine.torus import TorusNetwork

__all__ = ["MachineSpec", "bluegene_l", "bluegene_p", "MemoryFootprint"]


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-rank memory use of the paper's data structures, in bytes.

    Attributes
    ----------
    states_table:
        The global ``states`` matrix: ``4**n`` rows of ``n`` two-move
        rounds (what the paper's ``find_state`` scans).
    strategy_view:
        The rank's copy of every SSet's current strategy (the "local view
        of the strategy space"), one byte per state per SSet.
    game_state:
        Current views and fitness accumulators for the games in flight.
    """

    states_table: int
    strategy_view: int
    game_state: int

    @property
    def total(self) -> int:
        """Total bytes per rank."""
        return self.states_table + self.strategy_view + self.game_state


@dataclass(frozen=True)
class MachineSpec:
    """One machine: nodes, networks, partition rules.

    Use the factory helpers :func:`bluegene_l` / :func:`bluegene_p` (or
    build custom specs for what-if studies).
    """

    name: str
    node: NodeSpec
    torus_link_bandwidth: float
    torus_hop_latency: float
    torus_software_overhead: float
    tree: CollectiveTreeNetwork
    max_ranks: int

    def __post_init__(self) -> None:
        if self.max_ranks < 1:
            raise MachineModelError(f"max_ranks must be >= 1, got {self.max_ranks}")

    # -- partitions / networks ------------------------------------------------------

    def partition(self, n_ranks: int) -> Partition:
        """Partition hosting ``n_ranks`` MPI ranks (one rank per core)."""
        if not 1 <= n_ranks <= self.max_ranks:
            raise MachineModelError(
                f"{self.name} supports 1..{self.max_ranks} ranks, got {n_ranks}"
            )
        n_nodes = max(1, n_ranks // self.node.cores)
        return partition_shape(n_nodes)

    def torus(self, n_ranks: int) -> TorusNetwork:
        """The torus network of the partition hosting ``n_ranks`` ranks."""
        part = self.partition(n_ranks)
        return TorusNetwork(
            topology=part.topology,
            link_bandwidth=self.torus_link_bandwidth,
            hop_latency=self.torus_hop_latency,
            software_overhead=self.torus_software_overhead,
        )

    # -- memory accounting -------------------------------------------------------------

    def memory_footprint(
        self, memory_steps: int, n_ssets: int, ssets_per_rank: int, bit_packed: bool = False
    ) -> MemoryFootprint:
        """Bytes each rank needs for the paper's data structures.

        ``bit_packed=True`` models our packed strategy storage (1 bit per
        state); the paper's C arrays are modelled as one byte per state.
        """
        space = StateSpace(memory_steps)
        states_table = space.n_states * memory_steps * 2
        per_strategy = (space.n_states + 7) // 8 if bit_packed else space.n_states
        strategy_view = n_ssets * per_strategy
        # Each in-flight game keeps two current views (2n moves each) and a
        # fitness accumulator; one agent per SSet plays at a time per rank.
        game_state = ssets_per_rank * (4 * memory_steps + 8)
        return MemoryFootprint(
            states_table=states_table, strategy_view=strategy_view, game_state=game_state
        )

    def fits_in_memory(
        self, memory_steps: int, n_ssets: int, ssets_per_rank: int, bit_packed: bool = False
    ) -> bool:
        """Whether the per-rank footprint fits the node's per-rank share."""
        fp = self.memory_footprint(memory_steps, n_ssets, ssets_per_rank, bit_packed)
        return fp.total <= self.node.memory_per_rank

    def __repr__(self) -> str:
        return f"MachineSpec({self.name}, node={self.node.name}, max_ranks={self.max_ranks})"


def bluegene_l() -> MachineSpec:
    """The 2,048-processor Blue Gene/L used for validation and small scaling."""
    return MachineSpec(
        name="BlueGene/L",
        node=BGL_NODE,
        torus_link_bandwidth=154e6,
        torus_hop_latency=100e-9,
        torus_software_overhead=3.0e-6,
        tree=CollectiveTreeNetwork(
            bandwidth=350e6, level_latency=2.5e-6, software_overhead=3.0e-6
        ),
        max_ranks=2048,
    )


def bluegene_p() -> MachineSpec:
    """The 294,912-processor Blue Gene/P (Jugene) used for the large studies."""
    return MachineSpec(
        name="BlueGene/P",
        node=BGP_NODE,
        torus_link_bandwidth=425e6,
        torus_hop_latency=100e-9,
        torus_software_overhead=2.0e-6,
        tree=CollectiveTreeNetwork(
            bandwidth=820e6, level_latency=2.5e-6, software_overhead=2.0e-6
        ),
        max_ranks=294912,
    )
