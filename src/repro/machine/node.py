"""Compute-node specifications for the machine model.

The paper's two machines:

* **Blue Gene/L** — 700 MHz PowerPC 440 dual-core nodes, 512 MB per node
  (the memory budget that capped runs at memory-six), used for the
  validation and small-scale studies on 2,048 processors.
* **Blue Gene/P** — 850 MHz PowerPC 450 quad-core nodes, 2 GB per node,
  3-D torus plus collective tree, used for the large-scale studies on up to
  294,912 processors.

A :class:`NodeSpec` carries what the performance model needs: a relative
compute speed (scales the calibrated per-round game cost) and the memory
budget (drives the feasibility checks that mirror the paper's §VI-B-1
memory discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineModelError

__all__ = ["NodeSpec", "BGL_NODE", "BGP_NODE"]

MiB = 1 << 20
GiB = 1 << 30


@dataclass(frozen=True)
class NodeSpec:
    """One compute node.

    Parameters
    ----------
    name:
        Human-readable model name.
    clock_hz:
        Core clock; used only for documentation and speed ratios.
    cores:
        Cores per node (the paper schedules one MPI rank per core in VN
        mode; "processors" in its tables are ranks).
    memory_bytes:
        Usable DRAM per node.
    compute_speed:
        Relative speed factor applied to calibrated per-operation costs
        (1.0 = the calibration platform's speed).
    """

    name: str
    clock_hz: float
    cores: int
    memory_bytes: int
    compute_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.cores < 1 or self.memory_bytes <= 0:
            raise MachineModelError(f"invalid node spec: {self}")
        if self.compute_speed <= 0:
            raise MachineModelError(f"compute_speed must be positive, got {self.compute_speed}")

    @property
    def memory_per_rank(self) -> int:
        """Memory available to each rank when all cores host ranks."""
        return self.memory_bytes // self.cores


#: Blue Gene/L node: 700 MHz PPC440, 2 cores, 512 MiB.
BGL_NODE = NodeSpec(
    name="BlueGene/L", clock_hz=700e6, cores=2, memory_bytes=512 * MiB, compute_speed=1.0
)

#: Blue Gene/P node: 850 MHz PPC450, 4 cores, 2 GiB.
BGP_NODE = NodeSpec(
    name="BlueGene/P", clock_hz=850e6, cores=4, memory_bytes=2 * GiB, compute_speed=1.2
)
