"""Blue Gene partition shapes.

Jobs run on *partitions*: electrically isolated torus blocks whose shapes
are fixed by the wiring (a midplane is 8x8x8 = 512 nodes; racks combine
midplanes along Z then Y then X).  Power-of-two partitions map the torus
cleanly; the paper's §VI-D observes a 15% efficiency loss at the full
294,912-processor (72-rack) machine precisely because 72 racks is *not* a
power of two and the rank mapping folds unevenly onto the hardware.

:func:`partition_shape` reproduces the standard shapes for power-of-two
node counts and flags non-power-of-two counts with a mapping penalty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PartitionError
from repro.mpi.topology import CartTopology

__all__ = ["Partition", "partition_shape", "is_power_of_two"]

#: Canonical small-partition shapes (nodes -> torus dims), per Blue Gene
#: wiring: sub-midplane blocks are meshes, full midplanes are tori.
_CANONICAL = {
    1: (1, 1, 1),
    2: (1, 1, 2),
    4: (1, 1, 4),
    8: (1, 2, 4),
    16: (2, 2, 4),
    32: (2, 4, 4),
    64: (4, 4, 4),
    128: (4, 4, 8),
    256: (4, 8, 8),
    512: (8, 8, 8),
}


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class Partition:
    """A job partition: node count, torus shape, and mapping quality.

    Attributes
    ----------
    n_nodes:
        Nodes in the partition.
    dims:
        Torus extents (x, y, z).
    mapping_efficiency:
        1.0 for clean power-of-two mappings; < 1.0 when the rank layout
        folds unevenly (the paper's 72-rack case).
    """

    n_nodes: int
    dims: tuple[int, int, int]
    mapping_efficiency: float

    @property
    def topology(self) -> CartTopology:
        """The torus layout of this partition."""
        return CartTopology(self.dims, periodic=True)

    @property
    def is_power_of_two(self) -> bool:
        """Whether the node count is a power of two."""
        return is_power_of_two(self.n_nodes)


def partition_shape(n_nodes: int, mapping_penalty: float = 0.20) -> Partition:
    """Build the partition for ``n_nodes`` nodes.

    Power-of-two counts get the canonical (near-cubic) shape and mapping
    efficiency 1.0.  Other counts are padded up to the next power of two
    for the shape and charged ``mapping_penalty`` of per-rank throughput.
    The default 0.20 makes the modelled parallel *efficiency* at the
    paper's 294,912-processor point land 15% below the 262,144-processor
    point (the paper's §VI-D observation — the extra ranks' smaller work
    shares partially offset the throughput penalty, so the throughput
    penalty must exceed the observed efficiency drop).
    """
    if n_nodes < 1:
        raise PartitionError(f"n_nodes must be >= 1, got {n_nodes}")
    if not 0 <= mapping_penalty < 1:
        raise PartitionError(f"mapping_penalty must lie in [0, 1), got {mapping_penalty}")

    pow2 = is_power_of_two(n_nodes)
    shaped = n_nodes if pow2 else 1 << math.ceil(math.log2(n_nodes))

    if shaped in _CANONICAL:
        dims = _CANONICAL[shaped]
    else:
        # Larger partitions: grow from the 8x8x8 midplane by doubling the
        # smallest dimension, matching rack-row wiring closely enough.
        dims = list(_CANONICAL[512])
        remaining = shaped // 512
        while remaining > 1:
            dims[dims.index(min(dims))] *= 2
            remaining //= 2
        dims = tuple(sorted(dims))  # type: ignore[assignment]

    efficiency = 1.0 if pow2 else 1.0 - mapping_penalty
    return Partition(n_nodes=n_nodes, dims=tuple(dims), mapping_efficiency=efficiency)
