"""Rank-to-node mappings on torus partitions (the paper's future work).

§VI-E: "In future work we plan to investigate custom mappings to help the
performance for non-powers-of-2 partition sizes."  This module does that
investigation: it builds torus shapes for *any* node count (balanced prime
factorisation, not power-of-two padding), defines mapping strategies that
permute MPI ranks onto torus coordinates, and scores them on the two
locality metrics the algorithm cares about:

* **consecutive-rank hop distance** — block decomposition puts neighbouring
  SSets on neighbouring ranks, so rank *r* talks most to *r ± 1* (and the
  strategy-update pipeline flows in rank order);
* **hops to the Nature rank** — fitness returns all travel to rank 0.

Strategies:

* ``xyzt`` — the default row-major order (what the paper ran);
* ``snake`` — boustrophedon order: every pair of consecutive ranks is a
  torus neighbour, eliminating the row-wrap jumps of ``xyzt``.

The ablation bench ``benchmarks/test_ablation_rank_mapping.py`` quantifies
the improvement on the paper's 73,728-node (72-rack) case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.mpi.topology import CartTopology

__all__ = [
    "factor_dims",
    "xyzt_mapping",
    "snake_mapping",
    "MappingMetrics",
    "evaluate_mapping",
    "compare_mappings",
]


def factor_dims(n_nodes: int, n_dims: int = 3) -> tuple[int, ...]:
    """Factor ``n_nodes`` into ``n_dims`` near-balanced extents.

    Greedy: repeatedly assign the largest remaining prime factor to the
    currently smallest dimension.  Exact (product equals ``n_nodes``) for
    any count — 73,728 nodes factor to (32, 48, 48), no padding.
    """
    if n_nodes < 1:
        raise PartitionError(f"n_nodes must be >= 1, got {n_nodes}")
    if n_dims < 1:
        raise PartitionError(f"n_dims must be >= 1, got {n_dims}")
    factors = []
    rem = n_nodes
    p = 2
    while p * p <= rem:
        while rem % p == 0:
            factors.append(p)
            rem //= p
        p += 1
    if rem > 1:
        factors.append(rem)
    dims = [1] * n_dims
    for f in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= f
    return tuple(sorted(dims))


def xyzt_mapping(topology: CartTopology) -> np.ndarray:
    """Default mapping: rank r sits on node r (row-major coordinate order)."""
    return np.arange(topology.size, dtype=np.intp)


def snake_mapping(topology: CartTopology) -> np.ndarray:
    """Boustrophedon mapping: consecutive ranks are always torus neighbours.

    The fastest-varying dimension sweeps forward then backward, flipping
    direction whenever a slower dimension advances (generalised Gray-like
    walk).  Returns ``perm`` with ``perm[rank] = node``.
    """
    dims = topology.dims
    size = topology.size
    perm = np.empty(size, dtype=np.intp)
    coords = [0] * len(dims)
    direction = [1] * len(dims)
    for rank in range(size):
        perm[rank] = topology.rank(tuple(coords))
        # Advance like an odometer whose wheels reverse instead of wrapping.
        for d in range(len(dims) - 1, -1, -1):
            nxt = coords[d] + direction[d]
            if 0 <= nxt < dims[d]:
                coords[d] = nxt
                break
            direction[d] = -direction[d]
        # (last rank: odometer stays put, loop ends)
    return perm


@dataclass(frozen=True)
class MappingMetrics:
    """Locality scores of one rank mapping.

    Attributes
    ----------
    name:
        Mapping label.
    mean_consecutive_hops:
        Average torus hop distance between ranks r and r+1.
    max_consecutive_hops:
        Worst consecutive-rank distance (the row-wrap jump of ``xyzt``).
    mean_hops_to_nature:
        Average hop distance from every rank to rank 0.
    """

    name: str
    mean_consecutive_hops: float
    max_consecutive_hops: int
    mean_hops_to_nature: float


def evaluate_mapping(topology: CartTopology, perm: np.ndarray, name: str) -> MappingMetrics:
    """Score a mapping permutation on the locality metrics."""
    perm = np.asarray(perm, dtype=np.intp)
    if perm.shape != (topology.size,) or sorted(perm.tolist()) != list(range(topology.size)):
        raise PartitionError("perm must be a permutation of all nodes")
    consecutive = [
        topology.hop_distance(int(perm[r]), int(perm[r + 1]))
        for r in range(topology.size - 1)
    ]
    to_nature = [
        topology.hop_distance(int(perm[0]), int(perm[r])) for r in range(topology.size)
    ]
    return MappingMetrics(
        name=name,
        mean_consecutive_hops=float(np.mean(consecutive)) if consecutive else 0.0,
        max_consecutive_hops=int(np.max(consecutive)) if consecutive else 0,
        mean_hops_to_nature=float(np.mean(to_nature)),
    )


def compare_mappings(n_nodes: int, n_dims: int = 3) -> list[MappingMetrics]:
    """Build the balanced torus for ``n_nodes`` and score both mappings."""
    topo = CartTopology(factor_dims(n_nodes, n_dims))
    return [
        evaluate_mapping(topo, xyzt_mapping(topo), "xyzt"),
        evaluate_mapping(topo, snake_mapping(topo), "snake"),
    ]
