"""Blue Gene machine models: nodes, torus, collective tree, partitions.

These stand in for the hardware the paper ran on; the performance model
(:mod:`repro.perf`) prices the algorithm's computation and communication
against them to regenerate the paper's scaling tables and figures.
"""

from repro.machine.bluegene import MachineSpec, MemoryFootprint, bluegene_l, bluegene_p
from repro.machine.collective_tree import CollectiveTreeNetwork
from repro.machine.mapping import (
    MappingMetrics,
    compare_mappings,
    evaluate_mapping,
    factor_dims,
    snake_mapping,
    xyzt_mapping,
)
from repro.machine.node import BGL_NODE, BGP_NODE, NodeSpec
from repro.machine.partition import Partition, is_power_of_two, partition_shape
from repro.machine.torus import TorusNetwork

__all__ = [
    "MappingMetrics",
    "compare_mappings",
    "evaluate_mapping",
    "factor_dims",
    "snake_mapping",
    "xyzt_mapping",
    "MachineSpec",
    "MemoryFootprint",
    "bluegene_l",
    "bluegene_p",
    "CollectiveTreeNetwork",
    "NodeSpec",
    "BGL_NODE",
    "BGP_NODE",
    "Partition",
    "partition_shape",
    "is_power_of_two",
    "TorusNetwork",
]
