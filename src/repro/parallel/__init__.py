"""The paper's parallel algorithm on the virtual MPI runtime.

* :mod:`repro.parallel.decomposition` — SSets/agents onto ranks (Table VIII).
* :mod:`repro.parallel.protocol` — the per-generation wire protocol.
* :mod:`repro.parallel.runner` — Nature rank + workers, bit-identical to the
  serial driver.
"""

from repro.parallel.decomposition import (
    SSetDecomposition,
    agents_per_processor,
    owner_map_with_failures,
    table8_rows,
)
from repro.parallel.protocol import (
    TAG_FITNESS,
    DegradationEvent,
    GenerationHeader,
    MutationUpdate,
    PCOutcome,
)
from repro.parallel.runner import ParallelRunResult, ParallelSimulation

__all__ = [
    "SSetDecomposition",
    "agents_per_processor",
    "owner_map_with_failures",
    "table8_rows",
    "GenerationHeader",
    "MutationUpdate",
    "PCOutcome",
    "DegradationEvent",
    "TAG_FITNESS",
    "ParallelRunResult",
    "ParallelSimulation",
]
