"""The paper's parallel algorithm on the virtual MPI runtime.

* :mod:`repro.parallel.decomposition` — SSets/agents onto ranks (Table VIII).
* :mod:`repro.parallel.protocol` — the per-generation wire protocol.
* :mod:`repro.parallel.runner` — Nature rank + workers, bit-identical to the
  serial driver.
* :mod:`repro.parallel.supervisor` — self-healing runs: bounded restarts
  from crash-consistent checkpoints.
* :mod:`repro.parallel.spec` — declarative :class:`RunSpec`/:class:`FaultPolicy`
  consumed by ``ParallelSimulation.from_spec`` / ``SupervisedRun.from_spec``.
"""

from repro.parallel.decomposition import (
    SSetDecomposition,
    agents_per_processor,
    owner_map_with_failures,
    table8_rows,
)
from repro.parallel.protocol import (
    TAG_FITNESS,
    DegradationEvent,
    GenerationHeader,
    MutationUpdate,
    PCOutcome,
    RecoveryEvent,
)
from repro.parallel.runner import ParallelRunResult, ParallelSimulation
from repro.parallel.spec import FaultPolicy, RunSpec
from repro.parallel.supervisor import RestartEvent, SupervisedResult, SupervisedRun

__all__ = [
    "SSetDecomposition",
    "agents_per_processor",
    "owner_map_with_failures",
    "table8_rows",
    "GenerationHeader",
    "MutationUpdate",
    "PCOutcome",
    "DegradationEvent",
    "RecoveryEvent",
    "TAG_FITNESS",
    "ParallelRunResult",
    "ParallelSimulation",
    "FaultPolicy",
    "RunSpec",
    "SupervisedRun",
    "SupervisedResult",
    "RestartEvent",
]
