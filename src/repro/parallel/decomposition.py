"""Work decomposition: SSets and agents onto ranks (paper §V, Table VIII).

The paper maps one rank to the Nature Agent and block-distributes the SSets
(and their agents) over the remaining ranks; every rank computes its own
assignment from its rank id alone.  :class:`SSetDecomposition` reproduces
that arithmetic, plus the agents-per-processor accounting behind Table VIII
(with the paper's agents-per-SSet = SSets rule, the population is SSets²
agents, so agents/processor = SSets²/workers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError

__all__ = [
    "SSetDecomposition",
    "agents_per_processor",
    "owner_map_with_failures",
    "table8_rows",
]


@dataclass(frozen=True)
class SSetDecomposition:
    """Block distribution of ``n_ssets`` SSets over ``n_ranks - 1`` workers.

    Rank 0 is the Nature Agent and owns no SSets; worker ``r`` (1-based
    rank) owns a contiguous block, with the first ``n_ssets % workers``
    workers taking one extra.  All methods are pure arithmetic — any rank
    answers ownership questions without communication, as the paper's
    implementation does.

    More workers than SSets is legal: the surplus workers own empty blocks
    (``ssets_of_rank`` returns an empty array) and :meth:`owner_of` never
    names them, so they simply idle through the fitness steps while still
    participating in the collectives.
    """

    n_ssets: int
    n_ranks: int

    def __post_init__(self) -> None:
        if self.n_ranks < 2:
            raise ScheduleError(
                f"need >= 2 ranks (Nature Agent + 1 worker), got {self.n_ranks}"
            )
        if self.n_ssets < 1:
            raise ScheduleError(f"n_ssets must be >= 1, got {self.n_ssets}")

    @property
    def nature_rank(self) -> int:
        """The Nature Agent's rank (always 0, as in the paper's mapping)."""
        return 0

    @property
    def n_workers(self) -> int:
        """Ranks that host SSets."""
        return self.n_ranks - 1

    def _bounds(self, worker: int) -> tuple[int, int]:
        """Half-open SSet range of worker index ``worker`` (0-based)."""
        base, extra = divmod(self.n_ssets, self.n_workers)
        if worker < extra:
            lo = worker * (base + 1)
            return lo, lo + base + 1
        lo = extra * (base + 1) + (worker - extra) * base
        return lo, lo + base

    def ssets_of_rank(self, rank: int) -> np.ndarray:
        """SSet ids owned by ``rank`` (empty for the Nature rank)."""
        if not 0 <= rank < self.n_ranks:
            raise ScheduleError(f"rank {rank} out of range [0, {self.n_ranks})")
        if rank == self.nature_rank:
            return np.empty(0, dtype=np.intp)
        lo, hi = self._bounds(rank - 1)
        return np.arange(lo, hi, dtype=np.intp)

    def owner_of(self, sset: int) -> int:
        """The rank owning ``sset``."""
        if not 0 <= sset < self.n_ssets:
            raise ScheduleError(f"SSet {sset} out of range [0, {self.n_ssets})")
        base, extra = divmod(self.n_ssets, self.n_workers)
        head = extra * (base + 1)
        if sset < head:
            worker = sset // (base + 1)
        elif base == 0:
            raise ScheduleError("internal: SSet beyond all blocks")
        else:
            worker = extra + (sset - head) // base
        return worker + 1

    @property
    def max_ssets_per_rank(self) -> int:
        """SSets on the busiest worker."""
        return -(-self.n_ssets // self.n_workers)

    def validate(self) -> None:
        """Assert the blocks tile the SSet range and agree with :meth:`owner_of`.

        Used by tests; also the guard behind the zero-SSet-worker contract —
        a decomposition whose ``owner_of`` named a rank outside that rank's
        own block would strand a fitness request on a worker that will never
        answer it.
        """
        seen: list[int] = []
        for rank in range(1, self.n_ranks):
            block = self.ssets_of_rank(rank)
            seen.extend(block.tolist())
            for sset in block:
                owner = self.owner_of(int(sset))
                if owner != rank:
                    raise ScheduleError(
                        f"owner_of({int(sset)}) = {owner} disagrees with"
                        f" ssets_of_rank({rank})"
                    )
        if seen != list(range(self.n_ssets)):
            raise ScheduleError("worker blocks do not tile the SSet range")


def owner_map_with_failures(
    n_ssets: int, n_ranks: int, failed_ranks: tuple[int, ...] = ()
) -> np.ndarray:
    """Owner rank of every SSet after redistributing failed workers' blocks.

    Starts from the block decomposition and, for each failed worker in
    ascending rank order, deals its SSets round-robin over the surviving
    workers.  Pure arithmetic: every rank computes the same map from the
    same failure set without communication, which is what lets the
    fault-tolerant runner degrade without a recovery collective.
    """
    decomp = SSetDecomposition(n_ssets, n_ranks)
    owners = np.empty(n_ssets, dtype=np.intp)
    for rank in range(1, n_ranks):
        owners[decomp.ssets_of_rank(rank)] = rank
    failed = sorted({int(r) for r in failed_ranks})
    for rank in failed:
        if not 1 <= rank < n_ranks:
            raise ScheduleError(
                f"failed rank {rank} out of worker range [1, {n_ranks})"
                " (the Nature rank cannot be redistributed)"
            )
    live = [r for r in range(1, n_ranks) if r not in failed]
    if not live:
        raise ScheduleError("no surviving workers to own SSets")
    for dead in failed:
        for i, sset in enumerate(np.flatnonzero(owners == dead)):
            owners[sset] = live[i % len(live)]
    return owners


def agents_per_processor(n_ssets: int, n_procs: int, agents_per_sset: int | None = None) -> int:
    """Agents handled per processor (the quantity behind the paper's Table VIII).

    With the paper's §V-C rule the population is ``n_ssets`` agents per SSet
    (so ``n_ssets**2`` total); they spread over the processors evenly
    (busiest-processor count returned).  The published Table VIII is
    internally inconsistent (its 1,024-processor column exceeds its
    256-processor column); this function computes the self-consistent
    ``ceil(n_ssets * agents_per_sset / n_procs)``.
    """
    if n_procs < 1:
        raise ScheduleError(f"n_procs must be >= 1, got {n_procs}")
    if n_ssets < 1:
        raise ScheduleError(f"n_ssets must be >= 1, got {n_ssets}")
    a = n_ssets if agents_per_sset is None else agents_per_sset
    if a < 1:
        raise ScheduleError(f"agents_per_sset must be >= 1, got {a}")
    return -(-n_ssets * a // n_procs)


def table8_rows(
    sset_counts: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384, 32768),
    proc_counts: tuple[int, ...] = (256, 512, 1024, 2048),
) -> list[tuple[int, list[int]]]:
    """Rows of (our, self-consistent) Table VIII: agents per processor."""
    return [
        (s, [agents_per_processor(s, p) for p in proc_counts]) for s in sset_counts
    ]
