"""Declarative run specifications: one value object describes a whole run.

A :class:`RunSpec` bundles everything needed to launch, supervise, resume
and *re-create* a run — the science (a
:class:`~repro.config.SimulationConfig`: game, memory depth, population
dynamics, engine), the substrate (rank count, backend), the chaos
(an optional :class:`~repro.mpi.faults.FaultPlan`), and the fault *policy*
(a :class:`FaultPolicy`: restart budget, backoff shape, wall-clock budget,
degradation mode).  Where :class:`~repro.parallel.runner.ParallelSimulation`
and :class:`~repro.parallel.supervisor.SupervisedRun` take a dozen keyword
arguments, a spec is one JSON-serialisable value — which is what lets the
run service (:mod:`repro.service`) queue, persist, ship and resume runs by
key: the spec *is* the run's identity, minus its checkpoints.

Construction flows one way: ``ParallelSimulation.from_spec(spec)`` and
``SupervisedRun.from_spec(spec, checkpoint_dir=...)`` consume a spec and
translate it into their constructor arguments, so a spec-launched run
behaves exactly like a hand-assembled one (the tests assert bit-identical
matrices).  ``to_dict``/``from_dict`` round-trip through plain JSON types —
no pickle, safe to share across trust boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import ClassVar, Mapping

from repro.config import SimulationConfig
from repro.errors import ConfigError, ReproError
from repro.io.records import config_from_dict, config_to_dict
from repro.mpi.faults import FaultPlan

__all__ = ["FaultPolicy", "RunSpec", "spec_from_dict"]

_BACKENDS = ("thread", "process", "tcp")
_FAILURE_MODES = ("continue", "respawn")


@dataclass(frozen=True)
class FaultPolicy:
    """How a run is defended against failure, as policy rather than wiring.

    Parameters
    ----------
    max_restarts:
        Supervisor-level relaunch budget
        (:class:`~repro.parallel.supervisor.SupervisedRun` ``max_restarts``).
    backoff, backoff_factor, max_backoff, backoff_jitter:
        The supervisor's exponential restart pause, as for
        :func:`repro.mpi.comm.backoff_wait`.
    wall_budget:
        Overall wall-clock budget in seconds across *all* supervisor
        attempts, or ``None`` for unbounded.  The per-attempt ``timeout``
        stays separate (:attr:`RunSpec.attempt_timeout`); this is the
        quotable total a scheduler can bill.
    heartbeat_timeout:
        Seconds Nature waits on a worker's per-generation report before
        degrading around it.
    on_rank_failure:
        ``"continue"`` (redistribute a dead worker's SSets) or
        ``"respawn"`` (additionally replace the process; needs the process
        or tcp backend).
    max_requeues:
        Service-level budget: how many times the job queue may relaunch a
        run whose *worker process* died unexpectedly (the run resumes from
        its latest valid checkpoint).  Explicit preemption never consumes
        this budget.
    stall_timeout:
        Service-level progress watchdog: if a *running* worker reports no
        new generation for this many seconds, the queue kills it and
        relaunches from the latest valid checkpoint (spending the requeue
        budget — a run that wedges forever eventually fails loudly instead
        of holding a pool slot).  ``None`` (default) disables the watchdog.
    """

    max_restarts: int = 3
    backoff: float = 0.5
    backoff_factor: float = 2.0
    max_backoff: float = 30.0
    backoff_jitter: float = 0.5
    wall_budget: float | None = None
    heartbeat_timeout: float = 5.0
    on_rank_failure: str = "continue"
    max_requeues: int = 1
    stall_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.backoff < 0 or self.backoff_factor < 1 or self.max_backoff < 0:
            raise ConfigError(
                "backoff must be >= 0, backoff_factor >= 1, max_backoff >= 0;"
                f" got {self.backoff}, {self.backoff_factor}, {self.max_backoff}"
            )
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ConfigError(
                f"backoff_jitter must lie in [0, 1), got {self.backoff_jitter}"
            )
        if self.wall_budget is not None and self.wall_budget <= 0:
            raise ConfigError(f"wall_budget must be > 0 or None, got {self.wall_budget}")
        if self.heartbeat_timeout <= 0:
            raise ConfigError(
                f"heartbeat_timeout must be > 0, got {self.heartbeat_timeout}"
            )
        if self.on_rank_failure not in _FAILURE_MODES:
            raise ConfigError(
                f"on_rank_failure must be one of {_FAILURE_MODES},"
                f" got {self.on_rank_failure!r}"
            )
        if self.max_requeues < 0:
            raise ConfigError(f"max_requeues must be >= 0, got {self.max_requeues}")
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ConfigError(
                f"stall_timeout must be > 0 or None, got {self.stall_timeout}"
            )

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "max_restarts": self.max_restarts,
            "backoff": self.backoff,
            "backoff_factor": self.backoff_factor,
            "max_backoff": self.max_backoff,
            "backoff_jitter": self.backoff_jitter,
            "wall_budget": self.wall_budget,
            "heartbeat_timeout": self.heartbeat_timeout,
            "on_rank_failure": self.on_rank_failure,
            "max_requeues": self.max_requeues,
            "stall_timeout": self.stall_timeout,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPolicy":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown FaultPolicy fields: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class RunSpec:
    """A complete, declarative description of one supervised run.

    Parameters
    ----------
    config:
        The simulation itself: game, memory depth, dynamics, engine, seed.
    n_ranks:
        World size, >= 2 (rank 0 is the Nature Agent).
    backend:
        Execution substrate: ``"thread"``, ``"process"`` or ``"tcp"``.
    eager_games:
        Whether workers replay the full opponent slate each generation
        (the paper's faithful §IV-D workload).
    checkpoint_every:
        Checkpoint cadence in generations (>= 1; a supervised run without
        checkpoints could only ever restart from scratch).
    attempt_timeout:
        Per-attempt deadline in seconds handed to
        :meth:`~repro.parallel.runner.ParallelSimulation.run`; ``None``
        waits forever.  The overall budget lives in
        :attr:`FaultPolicy.wall_budget`.
    fault_plan:
        Chaos injected into the first supervised attempt (restarts run
        clean, as for :class:`~repro.parallel.supervisor.SupervisedRun`).
    fault:
        The :class:`FaultPolicy` defending the run.
    name:
        Free-form label (shown by the service; no semantics).
    """

    #: Discriminator for :func:`spec_from_dict`.
    kind: ClassVar[str] = "evolution"

    config: SimulationConfig
    n_ranks: int = 4
    backend: str = "thread"
    eager_games: bool = False
    checkpoint_every: int = 10
    attempt_timeout: float | None = 600.0
    fault_plan: FaultPlan | None = None
    fault: FaultPolicy = field(default_factory=FaultPolicy)
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.config, SimulationConfig):
            raise ConfigError(
                f"config must be a SimulationConfig, got {type(self.config).__name__}"
            )
        if self.n_ranks < 2:
            raise ConfigError(f"need >= 2 ranks (Nature + worker), got {self.n_ranks}")
        if self.backend not in _BACKENDS:
            raise ConfigError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ConfigError(
                f"attempt_timeout must be > 0 or None, got {self.attempt_timeout}"
            )
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ConfigError(
                f"fault_plan must be a FaultPlan or None, got {type(self.fault_plan).__name__}"
            )
        if not isinstance(self.fault, FaultPolicy):
            raise ConfigError(
                f"fault must be a FaultPolicy, got {type(self.fault).__name__}"
            )
        if self.fault.on_rank_failure == "respawn" and self.backend == "thread":
            raise ConfigError(
                "on_rank_failure='respawn' needs real processes to replace —"
                " use backend='process' or backend='tcp'"
            )

    def with_updates(self, **changes: object) -> "RunSpec":
        """Return a copy with the given fields replaced (validated anew)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> dict:
        """Flatten the spec into JSON-safe primitives (no pickle).

        The ``kind`` key discriminates spec families for
        :func:`spec_from_dict`; a RunSpec is an ``"evolution"`` run.
        """
        return {
            "kind": "evolution",
            "config": config_to_dict(self.config),
            "n_ranks": self.n_ranks,
            "backend": self.backend,
            "eager_games": self.eager_games,
            "checkpoint_every": self.checkpoint_every,
            "attempt_timeout": self.attempt_timeout,
            "fault_plan": None if self.fault_plan is None else self.fault_plan.to_dict(),
            "fault": self.fault.to_dict(),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected, values validated)."""
        kwargs = dict(data)
        kind = kwargs.pop("kind", "evolution")
        if kind != "evolution":
            raise ConfigError(
                f"RunSpec.from_dict only reads kind='evolution' specs, got {kind!r};"
                " use spec_from_dict to dispatch on kind"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(kwargs) - known
        if unknown:
            raise ConfigError(f"unknown RunSpec fields: {sorted(unknown)}")
        if "config" not in kwargs:
            raise ConfigError("a RunSpec dict needs a 'config' section")
        try:
            kwargs["config"] = config_from_dict(kwargs["config"])
        except ReproError as exc:
            # config_from_dict speaks checkpoint vocabulary; a bad config
            # inside a spec is a spec problem.
            raise ConfigError(f"bad RunSpec config section: {exc}") from exc
        if kwargs.get("fault_plan") is not None:
            kwargs["fault_plan"] = FaultPlan.from_dict(kwargs["fault_plan"])
        if kwargs.get("fault") is not None:
            kwargs["fault"] = FaultPolicy.from_dict(kwargs["fault"])
        else:
            kwargs.pop("fault", None)
        return cls(**kwargs)

    # -- translation into the runner/supervisor vocabularies -----------------

    def simulation_kwargs(self) -> dict:
        """Constructor arguments for :class:`~repro.parallel.runner.ParallelSimulation`.

        Everything except ``config``/``n_ranks`` (positional there) and the
        checkpoint directory, which is placement the caller owns.
        """
        return {
            "eager_games": self.eager_games,
            "backend": self.backend,
            "fault_plan": self.fault_plan,
            "heartbeat_timeout": self.fault.heartbeat_timeout,
            "on_rank_failure": self.fault.on_rank_failure,
        }

    def supervisor_kwargs(self) -> dict:
        """Constructor arguments for :class:`~repro.parallel.supervisor.SupervisedRun`.

        Everything except ``config``/``n_ranks`` and ``checkpoint_dir``
        (the caller decides where the run's state lives).
        """
        return {
            "checkpoint_every": self.checkpoint_every,
            "max_restarts": self.fault.max_restarts,
            "backoff": self.fault.backoff,
            "backoff_factor": self.fault.backoff_factor,
            "max_backoff": self.fault.max_backoff,
            "backoff_jitter": self.fault.backoff_jitter,
            "wall_budget": self.fault.wall_budget,
            "fault_plan": self.fault_plan,
            "eager_games": self.eager_games,
            "backend": self.backend,
            "heartbeat_timeout": self.fault.heartbeat_timeout,
            "on_rank_failure": self.fault.on_rank_failure,
        }


def spec_from_dict(data: Mapping):
    """Revive any spec family from its dict form, dispatching on ``kind``.

    ``"evolution"`` (the default, so pre-discriminator dicts still load)
    revives a :class:`RunSpec`; ``"spatial"`` a
    :class:`~repro.spatial.spec.SpatialRunSpec`.  The spatial import is
    deferred so the spec layer never drags the spatial package in for
    ordinary evolution runs.
    """
    kind = data.get("kind", "evolution")
    if kind == "evolution":
        return RunSpec.from_dict(data)
    if kind == "spatial":
        from repro.spatial.spec import SpatialRunSpec

        return SpatialRunSpec.from_dict(data)
    raise ConfigError(f"unknown spec kind {kind!r} (expected 'evolution' or 'spatial')")
