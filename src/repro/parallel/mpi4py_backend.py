"""Run the parallel algorithm on *real* MPI via mpi4py.

The rank program (:func:`repro.parallel.runner._rank_program`) only touches
a small communicator surface — ``rank``, ``size``, ``send``, ``recv``,
``bcast``, ``allgather`` — chosen to match mpi4py's lower-case object API
exactly.  On a cluster with mpi4py installed, the same code that runs on
the virtual runtime runs on the real network:

.. code:: bash

    mpiexec -n 64 python -m repro.parallel.mpi4py_backend \\
        --n-ssets 1024 --generations 10000 --memory 1 --seed 7

This module has no hard mpi4py dependency; importing it without mpi4py is
fine, and :func:`main` raises a clear error.  The offline test suite checks
interface compatibility (the virtual ``Comm`` satisfies the same protocol
the rank program needs) rather than launching real MPI.
"""

from __future__ import annotations

import argparse
from typing import Any, Protocol, runtime_checkable

from repro.config import SimulationConfig
from repro.errors import MPIError

__all__ = ["CommLike", "main", "run_on_comm"]


@runtime_checkable
class CommLike(Protocol):
    """The communicator surface the rank program needs.

    Both :class:`repro.mpi.comm.Comm` and ``mpi4py.MPI.Comm`` satisfy it
    (mpi4py exposes ``rank``/``size`` properties and the lower-case
    pickle-based methods with these signatures).
    """

    rank: int
    size: int

    def send(self, payload: Any, dest: int, tag: int = 0) -> None: ...  # pragma: no cover

    def recv(self, source: int = ..., tag: int = ...) -> Any: ...  # pragma: no cover

    def bcast(self, payload: Any, root: int = 0) -> Any: ...  # pragma: no cover

    def allgather(self, payload: Any) -> list: ...  # pragma: no cover


def run_on_comm(comm: CommLike, config: SimulationConfig, eager_games: bool = False) -> dict:
    """Run the rank program on any conforming communicator.

    Returns the rank's output dict; rank 0's contains the final matrix and
    Nature Agent counters (see :mod:`repro.parallel.runner`).
    """
    from repro.parallel.runner import _rank_program

    if comm.size < 2:
        raise MPIError("need >= 2 ranks (Nature Agent + 1 worker)")
    return _rank_program(comm, config, eager_games)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.mpi4py_backend",
        description="Run the evolutionary-game simulation under mpiexec.",
    )
    parser.add_argument("--memory", type=int, default=1)
    parser.add_argument("--n-ssets", type=int, default=64)
    parser.add_argument("--generations", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pc-rate", type=float, default=0.1)
    parser.add_argument("--mutation-rate", type=float, default=0.05)
    parser.add_argument("--eager-games", action="store_true",
                        help="play the full per-generation game load (paper-faithful)")
    parser.add_argument("--output", default=None,
                        help="rank 0 writes the final strategy matrix here (.npy)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """mpiexec entry point (requires mpi4py)."""
    try:
        from mpi4py import MPI
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise MPIError(
            "mpi4py is not installed; run on the virtual runtime via"
            " repro.parallel.ParallelSimulation instead"
        ) from exc

    args = _build_parser().parse_args(argv)
    config = SimulationConfig(
        memory=args.memory,
        n_ssets=args.n_ssets,
        generations=args.generations,
        seed=args.seed,
        pc_rate=args.pc_rate,
        mutation_rate=args.mutation_rate,
    )
    comm = MPI.COMM_WORLD
    out = run_on_comm(comm, config, eager_games=args.eager_games)
    if comm.rank == 0:  # pragma: no cover - needs real MPI
        print(
            f"done: {config.generations} generations on {comm.size} ranks;"
            f" pc={out['n_pc_events']} adoptions={out['n_adoptions']}"
            f" mutations={out['n_mutations']}"
        )
        if args.output:
            import numpy as np

            np.save(args.output, out["matrix"])
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
