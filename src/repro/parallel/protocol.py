"""Wire protocol of the parallel runner.

One generation of the paper's algorithm exchanges, in order:

1. **Generation header** (Nature -> all, collective tree / ``bcast``): does
   a pairwise comparison fire this generation, and between which SSets.
2. **Fitness returns** (owners -> Nature, torus point-to-point): the
   teacher's and learner's relative fitness, when a PC fired.
3. **PC outcome** (Nature -> all, ``bcast``): whether the learner adopts.
4. **Mutation** (Nature -> all, ``bcast``): the new strategy table and its
   target SSet, when a mutation fired.

Ranks apply steps 3 and 4 to their local population replica, so every rank
ends the generation with an identical global strategy view — the paper's
"all nodes need to maintain an up to date view of the strategies assigned
to all other SSets".

Payloads are small dataclasses; strategy tables travel as ndarrays (the
virtual network counts their true byte size).  The table-carrying message
types are registered as *shareable* with :mod:`repro.mpi.shm`, so under the
process backend a large table broadcast travels as one shared-memory
segment instead of a per-destination pickle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi import shm as _shm

__all__ = [
    "TAG_FITNESS",
    "TAG_CONTROL",
    "TAG_REPORT",
    "GenerationHeader",
    "PCOutcome",
    "MutationUpdate",
    "FTHeader",
    "FTFitnessRequest",
    "FTUpdate",
    "FTShutdown",
    "FTFinal",
    "FTHello",
    "FTRejoin",
    "FTRetire",
    "WorkerReport",
    "DegradationEvent",
    "RecoveryEvent",
    "MembershipEvent",
    "MembershipChange",
]

#: Point-to-point tag for fitness returns to the Nature Agent.
TAG_FITNESS = 7

#: Reliable-channel tag for Nature -> worker control messages (FT runner).
TAG_CONTROL = 11

#: Reliable-channel tag for worker -> Nature reports (FT runner).
TAG_REPORT = 12

#: Plain-channel tag for a respawned worker announcing itself to Nature.
#: Deliberately *not* reliable: the replacement keeps resending the hello
#: until Nature answers, which is the whole retry scheme — and Nature must
#: not ack a hello for a rank it has not yet declared dead.
TAG_HELLO = 13

#: Reliable-channel tag for Nature -> replacement rejoin state transfer.
TAG_RECOVERY = 14


@dataclass(frozen=True)
class GenerationHeader:
    """Step 1: what this generation's population dynamics will do.

    ``pc_teacher``/``pc_learner`` are -1 when no pairwise comparison fires.
    """

    generation: int
    pc_teacher: int = -1
    pc_learner: int = -1

    @property
    def has_pc(self) -> bool:
        """Whether a pairwise comparison fires this generation."""
        return self.pc_teacher >= 0


@dataclass(frozen=True)
class PCOutcome:
    """Step 3: the Nature Agent's adoption decision."""

    teacher: int
    learner: int
    adopted: bool
    pi_teacher: float
    pi_learner: float
    probability: float


@dataclass(frozen=True)
class MutationUpdate:
    """Step 4: a mutation event (``sset`` receives ``table``); None when idle."""

    sset: int
    table: np.ndarray


# -- fault-tolerant protocol ----------------------------------------------------------
#
# The fault-tolerant runner replaces the collective tree with a reliable
# point-to-point star: every generation, Nature sends each live worker an
# FTHeader, collects one WorkerReport per worker (the heartbeat), and closes
# the generation with an FTUpdate.  When a worker that owed fitness died
# mid-generation, Nature re-requests from the new owner with FTFitnessRequest.
# All of these travel over Comm.send_reliable / recv_reliable, so injected
# drops, duplicates and corruptions cannot desynchronise the protocol.


@dataclass(frozen=True)
class FTHeader:
    """FT step 1 (Nature -> each live worker): this generation's work order.

    ``failed_ranks`` is the cumulative failure set; workers derive their
    (possibly reassigned) SSet ownership from it with
    :func:`~repro.parallel.decomposition.owner_map_with_failures`.
    ``teacher_owner``/``learner_owner`` name the ranks that must return
    fitness (-1 when no pairwise comparison fires).
    """

    generation: int
    pc_teacher: int = -1
    pc_learner: int = -1
    teacher_owner: int = -1
    learner_owner: int = -1
    failed_ranks: tuple[int, ...] = ()
    #: Authoritative world size as of this generation.  Under elastic
    #: membership (``World.grow``/``World.shrink``) a worker must derive
    #: ownership from Nature's view of the size, not its possibly stale
    #: local one; -1 (the pre-elastic default) means "use ``comm.size``".
    n_ranks: int = -1

    @property
    def has_pc(self) -> bool:
        """Whether a pairwise comparison fires this generation."""
        return self.pc_teacher >= 0


@dataclass(frozen=True)
class WorkerReport:
    """FT step 2 (worker -> Nature): the per-generation heartbeat.

    Doubles as the fitness return: ``pi_teacher``/``pi_learner`` are filled
    by the worker that owns the corresponding SSet, None otherwise.
    """

    rank: int
    generation: int
    pi_teacher: float | None = None
    pi_learner: float | None = None


@dataclass(frozen=True)
class FTFitnessRequest:
    """Nature -> worker: recompute fitness after the original owner died."""

    generation: int
    pc_teacher: int
    pc_learner: int
    want_teacher: bool
    want_learner: bool


@dataclass(frozen=True)
class FTUpdate:
    """FT step 3 (Nature -> each live worker): close the generation.

    Carries the adoption outcome and mutation (either may be None) plus the
    failure set as of the end of the generation, so workers fold newly
    detected deaths into the next generation's ownership map.
    """

    generation: int
    outcome: PCOutcome | None
    mutation: MutationUpdate | None
    failed_ranks: tuple[int, ...] = ()


@dataclass(frozen=True)
class FTShutdown:
    """Nature -> worker: the run is over; send an FTFinal and exit."""

    generation: int


@dataclass(frozen=True)
class FTFinal:
    """Worker -> Nature at shutdown: replica digest and work accounting."""

    rank: int
    digest: bytes
    games_played: int


@dataclass(frozen=True)
class FTHello:
    """Respawned worker -> Nature (plain send, retried): "I exist again".

    ``incarnation`` is the replacement's process incarnation (1 for the
    first respawn of a rank), carried into the matching
    :class:`RecoveryEvent` for the log.
    """

    rank: int
    incarnation: int = 0


@dataclass(frozen=True)
class FTRejoin:
    """Nature -> replacement (reliable): everything needed to rejoin.

    ``generation`` is the last generation already folded into ``matrix``;
    the replacement starts participating at ``generation + 1`` and ignores
    any stale control traffic at or before ``generation``.  The matrix is
    Nature's authoritative full strategy view (every rank keeps a full
    replica), so the replacement's SSet block is re-seeded implicitly; its
    RNG needs no state transfer at all because worker randomness is keyed
    by ``(generation, sset)`` — pure functions of the seed.
    """

    generation: int
    matrix: np.ndarray
    failed_ranks: tuple[int, ...] = ()


@dataclass(frozen=True)
class FTRetire:
    """Nature -> worker (reliable): leave the world at this generation boundary.

    The planned half of elastic membership (``World.shrink``): unlike a
    failure, the retiree gets to finish cleanly — it answers with an
    :class:`FTFinal` whose digest Nature validates against its own matrix
    before excluding the rank from future ownership maps.
    """

    generation: int


@dataclass(frozen=True)
class MembershipEvent:
    """One planned elastic-membership change, scheduled by generation.

    ``action`` is ``"grow"`` (add ``count`` fresh ranks via ``World.grow``)
    or ``"shrink"`` (retire the named ``ranks`` via ``World.shrink``).  The
    change executes at the *boundary* of ``generation`` — after generation
    ``generation - 1``'s updates are applied everywhere, before generation
    ``generation``'s events are drawn — which is what keeps it
    RNG-neutral: the trajectory is bit-identical with or without the plan.
    """

    generation: int
    action: str
    count: int = 0
    ranks: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.action not in ("grow", "shrink"):
            raise ValueError(f"membership action must be 'grow' or 'shrink', got {self.action!r}")
        if self.action == "grow" and self.count < 1:
            raise ValueError(f"grow events need count >= 1, got {self.count}")
        if self.action == "shrink" and not self.ranks:
            raise ValueError("shrink events need a non-empty ranks tuple")
        if self.action == "shrink" and 0 in self.ranks:
            raise ValueError("rank 0 (the Nature Agent) cannot be retired")


@dataclass(frozen=True)
class MembershipChange:
    """One executed membership change, recorded by the Nature Agent.

    ``n_ranks`` is the world size *after* the change took effect.
    """

    generation: int
    action: str
    ranks: tuple[int, ...]
    n_ranks: int


@dataclass(frozen=True)
class DegradationEvent:
    """One graceful-degradation step recorded by the fault-tolerant runner."""

    generation: int
    rank: int
    reason: str
    reassigned_ssets: tuple[int, ...]


@dataclass(frozen=True)
class RecoveryEvent:
    """One successful heal: a respawned rank rejoined the computation.

    The mirror image of :class:`DegradationEvent`: ``generation`` is the
    generation whose state the replacement was seeded with (it participates
    from ``generation + 1``), and ``restored_ssets`` are the SSets that
    return to the rank's ownership.
    """

    generation: int
    rank: int
    incarnation: int
    restored_ssets: tuple[int, ...]


# Bulk-carrying protocol fields opt in to the zero-copy shared-memory path
# (no-ops under the thread backend or with shared_memory=False).  The
# GenerationHeader is all-scalar — nothing to register — and FTUpdate
# reaches its mutation table by recursing into the nested MutationUpdate.
_shm.register_shareable(MutationUpdate, ("table",))
_shm.register_shareable(FTUpdate, ("mutation",))
_shm.register_shareable(FTRejoin, ("matrix",))
