"""Wire protocol of the parallel runner.

One generation of the paper's algorithm exchanges, in order:

1. **Generation header** (Nature -> all, collective tree / ``bcast``): does
   a pairwise comparison fire this generation, and between which SSets.
2. **Fitness returns** (owners -> Nature, torus point-to-point): the
   teacher's and learner's relative fitness, when a PC fired.
3. **PC outcome** (Nature -> all, ``bcast``): whether the learner adopts.
4. **Mutation** (Nature -> all, ``bcast``): the new strategy table and its
   target SSet, when a mutation fired.

Ranks apply steps 3 and 4 to their local population replica, so every rank
ends the generation with an identical global strategy view — the paper's
"all nodes need to maintain an up to date view of the strategies assigned
to all other SSets".

Payloads are small dataclasses; strategy tables travel as ndarrays (the
virtual network counts their true byte size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TAG_FITNESS",
    "GenerationHeader",
    "PCOutcome",
    "MutationUpdate",
]

#: Point-to-point tag for fitness returns to the Nature Agent.
TAG_FITNESS = 7


@dataclass(frozen=True)
class GenerationHeader:
    """Step 1: what this generation's population dynamics will do.

    ``pc_teacher``/``pc_learner`` are -1 when no pairwise comparison fires.
    """

    generation: int
    pc_teacher: int = -1
    pc_learner: int = -1

    @property
    def has_pc(self) -> bool:
        """Whether a pairwise comparison fires this generation."""
        return self.pc_teacher >= 0


@dataclass(frozen=True)
class PCOutcome:
    """Step 3: the Nature Agent's adoption decision."""

    teacher: int
    learner: int
    adopted: bool
    pi_teacher: float
    pi_learner: float
    probability: float


@dataclass(frozen=True)
class MutationUpdate:
    """Step 4: a mutation event (``sset`` receives ``table``); None when idle."""

    sset: int
    table: np.ndarray
